//===-- driver/Main.cpp - The deadmember command-line tool ----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `deadmember`: parse MiniC++ sources, run the dead-data-member
/// analysis, and report. Mirrors the paper's tool: static detection plus
/// the dynamic measurement pipeline (instrumented execution over the
/// interpreter), with an observability layer (phase timers, counters,
/// liveness provenance) on top.
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "profiler/ShadowProfiler.h"
#include "vm/VM.h"
#include "support/ThreadPool.h"
#include "telemetry/CrashHandler.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/HtmlReport.h"
#include "telemetry/Log.h"
#include "telemetry/Stats.h"
#include "telemetry/Telemetry.h"
#include "trace/DynamicMetrics.h"
#include "transform/DeadMemberEliminator.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <set>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace dmm;

namespace {

const std::string VersionString =
    std::string("deadmember ") + kToolVersion +
    " — dead data member analysis for MiniC++\n"
    "(reproduction of Sweeney & Tip, \"A Study of Dead Data Members in\n"
    "C++ Applications\", PLDI 1998)\n";

struct DriverOptions {
  std::vector<SourceFile> Files;
  AnalysisOptions Analysis;
  ReportOptions Report;
  bool ShowStats = false;
  bool RunProgram = false;
  bool Measure = false;
  bool Profile = false; ///< --profile / DMM_PROFILE env.
  bool DumpCallGraph = false;
  bool Eliminate = false;
  bool Json = false;
  bool DumpLayout = false;
  bool Check = false;
  bool DeadFunctions = false;
  bool Version = false;
  bool Metrics = false;
  /// --engine=<vm|tree>: which execution engine --run/--check/
  /// --measure/--profile use. Empty until resolved (flag beats the
  /// DMM_ENGINE env var beats the "vm" default).
  std::string Engine;
  bool Summary = false;      ///< --summary: in-memory summary pipeline.
  std::string CacheDir;      ///< --cache-dir=<dir> / DMM_CACHE_DIR.
  std::string MetricsFile;   ///< --metrics=<file>; empty = stdout.
  std::string TraceJsonFile; ///< --trace-json=<file>; empty = off.
  std::string StatsJsonFile; ///< --stats-json=<file>; empty = off.
  std::string ReportFile;    ///< --report=<file.html>; empty = off.
  std::string FromStatsFile; ///< --from-stats=<file>: render --report
                             ///< from an existing stats file, no run.
  std::vector<std::string> Explain; ///< --explain=<Class::member>.
  std::optional<LogLevel> LogLevelFlag; ///< --log-level=<level>.
  std::string LogJsonFile;  ///< --log-json=<file>; empty = off.
  uint64_t SpanLimit = 0;   ///< --span-limit=<N> / DMM_SPAN_LIMIT; 0 = default.
  std::string InjectFault;  ///< --inject-fault=<crash|terminate>.
};

int usage() {
  std::cerr
      << "usage: deadmember [options] <file.mcc>...\n"
         "\n"
         "Detects dead data members in MiniC++ programs (Sweeney & Tip,\n"
         "PLDI 1998).\n"
         "\n"
         "options:\n"
         "  --library <file>        parse <file> as a library (its classes\n"
         "                           are not classified; paper sec. 3.3)\n"
         "  --callgraph=<pta|rta|cha|trivial>  call-graph algorithm "
         "(default rta)\n"
         "  --baseline               'accessed = live' linter baseline\n"
         "  --no-dealloc-exempt      delete/free arguments create liveness\n"
         "  --no-union-closure       disable the union soundness closure\n"
         "  --sizeof=<ignore|conservative>  sizeof policy (default "
         "ignore)\n"
         "  --downcasts=<safe|conservative> down-cast policy (default "
         "safe)\n"
         "  --show-live              list live members with their reasons\n"
         "  --explain=<Class::member>  print the liveness provenance\n"
         "                           chain for one member\n"
         "  --stats                  print Table 1-style characteristics\n"
         "  --run                    interpret the program; the program's\n"
         "                           exit code becomes the exit status\n"
         "  --measure                interpret and print the dynamic\n"
         "                           measurements (Table 2 columns) plus\n"
         "                           per-class member access heat\n"
         "  --profile                interpret under the shadow-memory\n"
         "                           profiler: per-byte dead-data\n"
         "                           attribution per allocation site and\n"
         "                           high-water-mark snapshots (also:\n"
         "                           DMM_PROFILE=1 env var). With\n"
         "                           --measure, cross-checks the profiler\n"
         "                           against the allocation-trace replay\n"
         "  --engine=<vm|tree>       execution engine for --run/--check/\n"
         "                           --measure/--profile: the bytecode VM\n"
         "                           (default) or the tree-walking\n"
         "                           interpreter (also: DMM_ENGINE env\n"
         "                           var; see docs/VM.md). Both produce\n"
         "                           identical output, traces, and\n"
         "                           measurements\n"
         "  --dump-callgraph         list reachable functions\n"
         "  --eliminate              print the transformed program with\n"
         "                           dead members and unreachable code\n"
         "                           removed (to stdout)\n"
         "  --inert=<name>           assert that function <name> does not\n"
         "                           observe its arguments (paper fn. 3)\n"
         "  --json                   emit the classification as JSON\n"
         "  --dump-layout            print object layouts with offsets\n"
         "  --check                  execute the program and verify the\n"
         "                           soundness invariant (every member\n"
         "                           read at run time is classified "
         "live)\n"
         "  --dead-functions         also list unreachable functions\n"
         "  --summary                analyze through per-file summaries\n"
         "                           and the global link phase (reports\n"
         "                           are identical to the default path)\n"
         "  --cache-dir=<dir>        persist per-file summaries in <dir>\n"
         "                           and reuse them across runs (implies\n"
         "                           --summary; also: DMM_CACHE_DIR env\n"
         "                           var; see docs/CACHING.md)\n"
         "  --jobs=<N>               worker threads for the parallel\n"
         "                           pipeline stages (default: all cores;\n"
         "                           also: DMM_THREADS env var). Reports\n"
         "                           are identical at every value\n"
         "  --metrics[=<file>]       print the pipeline phase/counter\n"
         "                           table (also: DMM_METRICS=1 env var,\n"
         "                           which prints to stderr)\n"
         "  --trace-json=<file>      write a Chrome trace-event JSON\n"
         "                           timeline (chrome://tracing, "
         "Perfetto)\n"
         "  --stats-json=<file>      write the versioned dmm-stats JSON\n"
         "                           document (per-span wall/cpu time,\n"
         "                           memory peaks, counters; see\n"
         "                           docs/OBSERVABILITY.md)\n"
         "  --report=<file.html>     render a self-contained HTML run\n"
         "                           report (span waterfall, hot spans,\n"
         "                           cache table)\n"
         "  --from-stats=<file>      with --report: render from an\n"
         "                           existing stats file instead of\n"
         "                           running the pipeline\n"
         "  --log-level=<level>      stderr log verbosity: error, warn\n"
         "                           (default), info, debug, trace\n"
         "                           (also: DMM_LOG_LEVEL env var)\n"
         "  --log-json=<file>        also write every log event as one\n"
         "                           JSON object per line to <file>\n"
         "  --span-limit=<N>         cap retained telemetry spans at N;\n"
         "                           spans beyond the cap count into the\n"
         "                           telemetry.spans_dropped counter\n"
         "                           (also: DMM_SPAN_LIMIT env var)\n"
         "  --inject-fault=<kind>    harness self-validation: die with\n"
         "                           kind 'crash' (SIGSEGV) or\n"
         "                           'terminate' (std::terminate) after\n"
         "                           the analysis, exercising the crash\n"
         "                           handler (docs/OBSERVABILITY.md)\n"
         "  --version                print version information\n";
  return 2;
}

bool readFile(const char *Path, bool IsLibrary, DriverOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    logError("cannot open input file", {kv("path", Path)});
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Opts.Files.push_back({Path, SS.str(), IsLibrary});
  return true;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--library") {
      if (++I >= Argc) {
        std::cerr << "error: --library requires a file\n";
        return false;
      }
      if (!readFile(Argv[I], /*IsLibrary=*/true, Opts))
        return false;
    } else if (Arg.rfind("--callgraph=", 0) == 0) {
      std::string Kind = Arg.substr(12);
      if (Kind == "rta")
        Opts.Analysis.CallGraph = CallGraphKind::RTA;
      else if (Kind == "pta")
        Opts.Analysis.CallGraph = CallGraphKind::PTA;
      else if (Kind == "cha")
        Opts.Analysis.CallGraph = CallGraphKind::CHA;
      else if (Kind == "trivial")
        Opts.Analysis.CallGraph = CallGraphKind::Trivial;
      else {
        std::cerr << "error: invalid --callgraph value '" << Kind
                  << "' (valid choices: pta, rta, cha, trivial)\n";
        return false;
      }
    } else if (Arg == "--baseline") {
      Opts.Analysis.TreatWritesAsLive = true;
    } else if (Arg == "--no-dealloc-exempt") {
      Opts.Analysis.ExemptDeallocationArgs = false;
    } else if (Arg == "--no-union-closure") {
      Opts.Analysis.UnionClosure = false;
    } else if (Arg.rfind("--sizeof=", 0) == 0) {
      std::string Policy = Arg.substr(9);
      if (Policy == "ignore")
        Opts.Analysis.Sizeof = SizeofPolicy::IgnoreAll;
      else if (Policy == "conservative")
        Opts.Analysis.Sizeof = SizeofPolicy::Conservative;
      else {
        std::cerr << "error: invalid --sizeof value '" << Policy
                  << "' (valid choices: ignore, conservative)\n";
        return false;
      }
    } else if (Arg.rfind("--downcasts=", 0) == 0) {
      std::string Policy = Arg.substr(12);
      if (Policy == "safe")
        Opts.Analysis.AssumeDowncastsSafe = true;
      else if (Policy == "conservative")
        Opts.Analysis.AssumeDowncastsSafe = false;
      else {
        std::cerr << "error: invalid --downcasts value '" << Policy
                  << "' (valid choices: safe, conservative)\n";
        return false;
      }
    } else if (Arg == "--show-live") {
      Opts.Report.ShowLiveMembers = true;
    } else if (Arg == "--stats") {
      Opts.ShowStats = true;
    } else if (Arg == "--run") {
      Opts.RunProgram = true;
    } else if (Arg == "--measure") {
      Opts.Measure = true;
    } else if (Arg == "--profile") {
      Opts.Profile = true;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string Kind = Arg.substr(9);
      if (Kind != "vm" && Kind != "tree") {
        std::cerr << "error: invalid --engine value '" << Kind
                  << "' (valid choices: vm, tree)\n";
        return false;
      }
      Opts.Engine = Kind;
    } else if (Arg == "--dump-callgraph") {
      Opts.DumpCallGraph = true;
    } else if (Arg == "--eliminate") {
      Opts.Eliminate = true;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--dump-layout") {
      Opts.DumpLayout = true;
    } else if (Arg == "--check") {
      Opts.Check = true;
    } else if (Arg == "--dead-functions") {
      Opts.DeadFunctions = true;
    } else if (Arg == "--version") {
      Opts.Version = true;
    } else if (Arg == "--summary") {
      Opts.Summary = true;
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = Arg.substr(12);
      if (Opts.CacheDir.empty()) {
        std::cerr << "error: --cache-dir requires a directory\n";
        return false;
      }
    } else if (Arg == "--metrics") {
      Opts.Metrics = true;
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Opts.Metrics = true;
      Opts.MetricsFile = Arg.substr(10);
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      Opts.TraceJsonFile = Arg.substr(13);
      if (Opts.TraceJsonFile.empty()) {
        std::cerr << "error: --trace-json requires a file name\n";
        return false;
      }
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      Opts.StatsJsonFile = Arg.substr(13);
      if (Opts.StatsJsonFile.empty()) {
        std::cerr << "error: --stats-json requires a file name\n";
        return false;
      }
    } else if (Arg.rfind("--report=", 0) == 0) {
      Opts.ReportFile = Arg.substr(9);
      if (Opts.ReportFile.empty()) {
        std::cerr << "error: --report requires a file name\n";
        return false;
      }
    } else if (Arg.rfind("--from-stats=", 0) == 0) {
      Opts.FromStatsFile = Arg.substr(13);
      if (Opts.FromStatsFile.empty()) {
        std::cerr << "error: --from-stats requires a file name\n";
        return false;
      }
    } else if (Arg.rfind("--explain=", 0) == 0) {
      std::string Query = Arg.substr(10);
      if (Query.find("::") == std::string::npos) {
        std::cerr << "error: --explain expects a qualified member name "
                     "(Class::member), got '"
                  << Query << "'\n";
        return false;
      }
      Opts.Explain.push_back(std::move(Query));
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string Value = Arg.substr(7);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || *End || Jobs == 0) {
        std::cerr << "error: --jobs expects a positive integer, got '"
                  << Value << "'\n";
        return false;
      }
      setGlobalJobs(static_cast<unsigned>(Jobs));
    } else if (Arg.rfind("--log-level=", 0) == 0) {
      std::string Value = Arg.substr(12);
      LogLevel Level;
      if (!parseLogLevel(Value, Level)) {
        std::cerr << "error: invalid --log-level value '" << Value
                  << "' (valid choices: error, warn, info, debug, "
                     "trace)\n";
        return false;
      }
      Opts.LogLevelFlag = Level;
    } else if (Arg.rfind("--log-json=", 0) == 0) {
      Opts.LogJsonFile = Arg.substr(11);
      if (Opts.LogJsonFile.empty()) {
        std::cerr << "error: --log-json requires a file name\n";
        return false;
      }
    } else if (Arg.rfind("--span-limit=", 0) == 0) {
      std::string Value = Arg.substr(13);
      char *End = nullptr;
      unsigned long long Limit = std::strtoull(Value.c_str(), &End, 10);
      if (Value.empty() || *End || Limit == 0) {
        std::cerr << "error: --span-limit expects a positive integer, "
                     "got '"
                  << Value << "'\n";
        return false;
      }
      Opts.SpanLimit = Limit;
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      std::string Kind = Arg.substr(15);
      if (Kind != "crash" && Kind != "terminate") {
        std::cerr << "error: invalid --inject-fault value '" << Kind
                  << "' (valid choices: crash, terminate)\n";
        return false;
      }
      Opts.InjectFault = Kind;
    } else if (Arg.rfind("--inert=", 0) == 0) {
      Opts.Analysis.InertFunctions.insert(Arg.substr(8));
    } else if (Arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      return false;
    } else if (!readFile(Argv[I], /*IsLibrary=*/false, Opts)) {
      return false;
    }
  }
  if (!Opts.FromStatsFile.empty() && Opts.ReportFile.empty()) {
    std::cerr << "error: --from-stats requires --report=<file.html>\n";
    return false;
  }
  return Opts.Version || !Opts.FromStatsFile.empty() || !Opts.Files.empty();
}

/// Emits the collected telemetry at scope exit (so early-error paths
/// still report whatever phases completed).
struct TelemetryEmitter {
  const Telemetry &Tel;
  const DriverOptions &Opts;
  bool ToStderr; ///< DMM_METRICS env mode.
  /// Filled by the --profile run (Present stays false otherwise);
  /// spliced into the stats document so --stats-json/--report carry
  /// the profiler section.
  const stats::ProfilerSection *Profiler = nullptr;

  ~TelemetryEmitter() {
    if (Opts.Metrics) {
      if (Opts.MetricsFile.empty()) {
        std::cout << "\n";
        Tel.printMetrics(std::cout);
      } else {
        std::ofstream Out(Opts.MetricsFile);
        if (!Out)
          logError("cannot write output file",
                   {kv("path", Opts.MetricsFile)});
        else
          Tel.printMetrics(Out);
      }
    }
    if (ToStderr)
      Tel.printMetrics(std::cerr);
    if (!Opts.TraceJsonFile.empty()) {
      std::ofstream Out(Opts.TraceJsonFile);
      if (!Out)
        logError("cannot write output file",
                 {kv("path", Opts.TraceJsonFile)});
      else
        Tel.printChromeTrace(Out);
    }
    if (Opts.StatsJsonFile.empty() && Opts.ReportFile.empty())
      return;
    stats::StatsDocument Doc = stats::buildStats(
        Tel, std::string("deadmember ") + kToolVersion,
        globalThreadPool().jobs());
    if (Profiler && Profiler->Present)
      Doc.Profiler = *Profiler;
    if (!Opts.StatsJsonFile.empty()) {
      std::ofstream Out(Opts.StatsJsonFile);
      if (!Out)
        logError("cannot write output file",
                 {kv("path", Opts.StatsJsonFile)});
      else
        stats::printStats(Doc, Out);
    }
    if (!Opts.ReportFile.empty()) {
      std::ofstream Out(Opts.ReportFile);
      if (!Out)
        logError("cannot write output file", {kv("path", Opts.ReportFile)});
      else
        stats::renderHtmlReport(Doc, Out);
    }
  }
};

/// --report --from-stats=FILE: render the HTML report from a stats
/// file written by an earlier run, without running the pipeline.
int renderReportFromStats(const DriverOptions &Opts) {
  std::ifstream In(Opts.FromStatsFile);
  if (!In) {
    logError("cannot open input file", {kv("path", Opts.FromStatsFile)});
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  stats::StatsDocument Doc;
  std::string Error;
  if (!stats::parseStats(SS.str(), Doc, Error)) {
    logError("invalid stats file",
             {kv("path", Opts.FromStatsFile), kv("detail", Error)});
    return 1;
  }
  std::ofstream Out(Opts.ReportFile);
  if (!Out) {
    logError("cannot write output file", {kv("path", Opts.ReportFile)});
    return 1;
  }
  stats::renderHtmlReport(Doc, Out);
  return 0;
}

/// Prints the per-class member access heat table for --measure.
void printHeatReport(std::ostream &OS, const FieldHeat &Heat) {
  struct ClassHeat {
    uint64_t Reads = 0;
    uint64_t Writes = 0;
  };
  std::map<std::string, ClassHeat> PerClass;
  for (const auto &[F, N] : Heat.Reads)
    PerClass[F->parent()->name()].Reads += N;
  for (const auto &[F, N] : Heat.Writes)
    PerClass[F->parent()->name()].Writes += N;
  if (PerClass.empty())
    return;
  std::vector<std::pair<std::string, ClassHeat>> Sorted(PerClass.begin(),
                                                        PerClass.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) {
              return A.second.Reads + A.second.Writes >
                     B.second.Reads + B.second.Writes;
            });
  OS << "\nmember access heat (per class):\n";
  for (const auto &[Name, H] : Sorted)
    OS << "  " << Name << ": " << H.Reads << " reads, " << H.Writes
       << " writes\n";
}

/// Prints the shadow-profiler summary and the dead-byte heat table
/// (allocation sites ranked by never-read member bytes).
void printProfileReport(std::ostream &OS, const ProfileSummary &P) {
  const DynamicMetrics &M = P.Metrics;
  OS << "\nshadow profiler:\n"
     << "  object space:           " << M.ObjectSpace << " bytes ("
     << M.NumObjects << " objects, " << P.AllocEvents
     << " allocation events)\n"
     << "  dead data member space: " << M.DeadMemberSpace << " bytes ("
     << M.deadSpacePercent() << "%)\n"
     << "  high water mark:        " << M.HighWaterMark
     << " bytes (first hit at allocation event " << P.PeakAllocEvent
     << ")\n"
     << "  high water mark w/o dead members: " << M.HighWaterMarkNoDead
     << " bytes (" << M.highWaterMarkReductionPercent()
     << "% reduction)\n"
     << "  frees: " << P.FreeEvents << " events, leaked objects: "
     << P.LeakedObjects << "\n"
     << "  member bytes: " << P.WrittenBytes << " written, "
     << P.ReadBytes << " read, " << P.AddrTakenBytes
     << " address-taken, " << P.NeverReadBytes << " never read\n"
     << "  snapshots: " << P.Snapshots.size() << " (stride "
     << P.SnapshotStride << ")\n";

  std::vector<const ProfileSiteRow *> Hot;
  for (const ProfileSiteRow &Row : P.Sites)
    if (Row.NeverReadBytes)
      Hot.push_back(&Row);
  if (Hot.empty())
    return;
  std::stable_sort(Hot.begin(), Hot.end(),
                   [](const ProfileSiteRow *A, const ProfileSiteRow *B) {
                     return A->NeverReadBytes > B->NeverReadBytes;
                   });
  constexpr size_t kMaxRows = 12;
  OS << "\ndead-byte heat (allocation sites by never-read member "
        "bytes):\n";
  for (size_t I = 0; I != Hot.size() && I != kMaxRows; ++I) {
    const ProfileSiteRow &Row = *Hot[I];
    OS << "  " << Row.File << ":" << Row.Line << " " << Row.Class
       << " " << Row.Member << ": " << Row.NeverReadBytes << "/"
       << Row.AllocBytes << " bytes never read";
    if (Row.StaticDead)
      OS << " [dead]";
    OS << "\n";
  }
  if (Hot.size() > kMaxRows)
    OS << "  ... (" << (Hot.size() - kMaxRows) << " more sites)\n";
}

} // namespace

int main(int Argc, char **Argv) {
  // Crash diagnostics come first so even option handling is covered:
  // the flight recorder captures log events and span markers, and the
  // signal/terminate handlers dump dmm-crash-<pid>.json from them.
  installCrashHandler(Argc, Argv, "deadmember", kToolVersion);
  FlightRecorder::install();
  DriverOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();
  // Logging config: flag beats DMM_LOG_LEVEL (read at first use).
  if (Opts.LogLevelFlag)
    Logger::instance().setLevel(*Opts.LogLevelFlag);
  if (!Opts.LogJsonFile.empty()) {
    std::string Error;
    if (!Logger::instance().openJsonSink(Opts.LogJsonFile, Error)) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
  }
  if (Opts.Version) {
    std::cout << VersionString;
    return 0;
  }
  if (!Opts.FromStatsFile.empty())
    return renderReportFromStats(Opts);

  // Telemetry: --metrics/--trace-json/--stats-json/--report, or the
  // DMM_METRICS env hook (metrics to stderr; lets benches and scripts
  // observe phase costs without flag plumbing).
  const char *MetricsEnv = std::getenv("DMM_METRICS");
  bool MetricsToStderr = MetricsEnv && *MetricsEnv &&
                         std::strcmp(MetricsEnv, "0") != 0 && !Opts.Metrics;
  // --profile also answers to the DMM_PROFILE env hook (same contract
  // as DMM_METRICS: set and not "0" enables it), so scripts and benches
  // can profile without flag plumbing.
  const char *ProfileEnv = std::getenv("DMM_PROFILE");
  if (ProfileEnv && *ProfileEnv && std::strcmp(ProfileEnv, "0") != 0)
    Opts.Profile = true;
  // Engine selection: --engine flag, then DMM_ENGINE, then the VM.
  if (Opts.Engine.empty())
    if (const char *EngineEnv = std::getenv("DMM_ENGINE");
        EngineEnv && *EngineEnv) {
      if (std::strcmp(EngineEnv, "vm") != 0 &&
          std::strcmp(EngineEnv, "tree") != 0) {
        std::cerr << "error: invalid DMM_ENGINE value '" << EngineEnv
                  << "' (valid choices: vm, tree)\n";
        return 2;
      }
      Opts.Engine = EngineEnv;
    }
  if (Opts.Engine.empty())
    Opts.Engine = "vm";
  Telemetry Tel;
  // --span-limit flag beats the DMM_SPAN_LIMIT env hook; unparsable
  // env values are reported and ignored.
  if (Opts.SpanLimit == 0)
    if (const char *Env = std::getenv("DMM_SPAN_LIMIT"); Env && *Env) {
      char *End = nullptr;
      unsigned long long Limit = std::strtoull(Env, &End, 10);
      if (*End || Limit == 0)
        logWarn("ignoring invalid DMM_SPAN_LIMIT", {kv("value", Env)});
      else
        Opts.SpanLimit = Limit;
    }
  if (Opts.SpanLimit)
    Tel.setSpanLimit(Opts.SpanLimit);
  std::optional<TelemetryScope> TelScope;
  if (Opts.Metrics || MetricsToStderr || !Opts.TraceJsonFile.empty() ||
      !Opts.StatsJsonFile.empty() || !Opts.ReportFile.empty())
    TelScope.emplace(Tel);
  // Outlives the emitter: filled after the profiled run finalizes.
  stats::ProfilerSection ProfSection;
  TelemetryEmitter Emitter{Tel, Opts, MetricsToStderr, &ProfSection};
  // The whole run is one root span; every phase nests under it. Closed
  // by destruction just before the emitter writes the outputs. Opened
  // even with telemetry off: the flight recorder tracks the span stack
  // for crash reports on every run.
  std::optional<Span> RootSpan;
  RootSpan.emplace("pipeline");

  // Provenance powers --explain and enriches --json.
  if (Opts.Json || !Opts.Explain.empty())
    Opts.Analysis.RecordProvenance = true;

  // --cache-dir flag wins over the DMM_CACHE_DIR env hook.
  if (Opts.CacheDir.empty())
    if (const char *CacheEnv = std::getenv("DMM_CACHE_DIR"); CacheEnv && *CacheEnv)
      Opts.CacheDir = CacheEnv;

  auto C = compileProgram(std::move(Opts.Files), &std::cerr);
  if (!C->Success)
    return 1;

  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(), Opts.Analysis);
  DeadMemberResult Result;
  if (Opts.Summary || !Opts.CacheDir.empty()) {
    std::optional<SummaryCache> Cache;
    if (!Opts.CacheDir.empty())
      Cache.emplace(SummaryCache::Config{Opts.CacheDir});
    std::string LinkError;
    std::optional<DeadMemberResult> Linked = runSummaryAnalysis(
        C->context(), C->SM, Analysis, C->mainFunction(), Opts.Analysis,
        Cache ? &*Cache : nullptr, &LinkError);
    if (Cache)
      Cache->flushTelemetry();
    if (Linked) {
      Result = std::move(*Linked);
    } else {
      logWarn("summary link failed; falling back to whole-program "
              "analysis",
              {kv("detail", LinkError)});
      Result = Analysis.run(C->mainFunction());
    }
  } else {
    Result = Analysis.run(C->mainFunction());
  }
  logInfo("analysis complete",
          {kv("dead_members", Result.deadSet().size()),
           kv("callgraph", callGraphKindName(Opts.Analysis.CallGraph))});

  // PR-3-style harness self-validation: deliberately die mid-pipeline
  // so CI can assert the crash handler writes a schema-valid report
  // with the active span stack and flight-recorder tail.
  if (!Opts.InjectFault.empty()) {
    Span FaultSpan("inject.fault");
    logError("injected fault firing", {kv("kind", Opts.InjectFault)});
    if (Opts.InjectFault == "crash")
      std::raise(SIGSEGV);
    else
      std::terminate();
  }

  if (Opts.Eliminate) {
    EliminationResult Elim = eliminateDeadMembers(C->context(), Result,
                                                  Analysis.callGraph());
    std::cerr << "removed " << Elim.Removed.size() << " dead members ("
              << Elim.Kept.size() << " kept), stripped "
              << Elim.RemovedFunctions.size()
              << " unreachable function bodies\n";
    std::cout << Elim.Source;
    return 0;
  }

  if (!Opts.Explain.empty()) {
    // --explain replaces the default classification listing.
    bool AllFound = true;
    for (const std::string &Query : Opts.Explain) {
      if (!printExplainReport(std::cout, C->context(), Result, Query,
                              &C->SM)) {
        std::cerr << "error: no classifiable data member named '" << Query
                  << "'\n";
        AllFound = false;
      }
    }
    if (!AllFound)
      return 1;
  } else if (Opts.Json) {
    printJsonReport(std::cout, C->context(), Result, &C->SM);
  } else {
    printMemberReport(std::cout, C->context(), Result, &C->SM, Opts.Report);
  }

  if (Opts.DumpLayout) {
    std::cout << "\n";
    printLayoutReport(std::cout, C->context(), C->hierarchy(), Result);
  }

  if (Opts.ShowStats) {
    ProgramStats Stats = computeProgramStats(C->context(), Result, &C->SM,
                                             C->UserFileIDs);
    std::cout << "\n";
    printStatsReport(std::cout, Stats);
  }

  if (Opts.DeadFunctions) {
    std::cout << "\n";
    printDeadFunctionReport(std::cout, C->context(), Analysis.callGraph(),
                            &C->SM);
  }

  if (Opts.DumpCallGraph) {
    std::cout << "\nreachable functions ("
              << callGraphKindName(Opts.Analysis.CallGraph) << "):\n";
    for (const FunctionDecl *FD : Analysis.callGraph().reachableFunctions())
      std::cout << "  " << FD->qualifiedName() << "\n";
  }

  // All execution modes share one interpreter run: --check collects the
  // dynamic read set, --measure the allocation trace and access heat,
  // --run the program output — from the same execution.
  if (Opts.Check || Opts.RunProgram || Opts.Measure || Opts.Profile) {
    std::set<const FieldDecl *> Reads;
    AllocationTrace Trace;
    FieldHeat Heat;
    std::optional<ShadowProfiler> Prof;
    InterpOptions IO;
    if (Opts.Check)
      IO.ReadSet = &Reads;
    if (Opts.Measure) {
      IO.Trace = &Trace;
      IO.Heat = &Heat;
    }
    if (Opts.Profile) {
      Prof.emplace(C->hierarchy(), Result.deadSet());
      IO.Profiler = &*Prof;
    }
    ExecResult Exec;
    if (Opts.Engine == "vm") {
      vm::VM Machine(C->context(), C->hierarchy(), IO);
      Exec = Machine.run(C->mainFunction());
    } else {
      Interpreter Interp(C->context(), C->hierarchy(), IO);
      Exec = Interp.run(C->mainFunction());
    }
    if (!Exec.Completed) {
      logError("runtime error",
               {kv("what", Exec.Error), kv("engine", Opts.Engine)});
      return 1;
    }

    if (Opts.Check) {
      unsigned Violations = 0;
      for (const FieldDecl *F : Reads)
        if (Result.isDead(F)) {
          ++Violations;
          std::cout << "UNSOUND: " << F->qualifiedName()
                    << " was read at run time but classified dead\n";
        }
      std::cout << "soundness check: " << Reads.size()
                << " members dynamically read, " << Violations
                << " violations"
                << (Violations == 0 ? " (OK)" : " (FAILED)") << "\n";
      if (Violations)
        return 1;
    }

    if (Opts.RunProgram) {
      std::cout << "\n--- program output ---\n"
                << Exec.Output << "--- exit code " << Exec.ExitCode
                << " ---\n";
    }

    std::optional<DynamicMetrics> TraceMetrics;
    if (Opts.Measure) {
      LayoutEngine Layout(C->hierarchy());
      TraceMetrics = computeDynamicMetrics(Trace, Layout, Result.deadSet());
      const DynamicMetrics &M = *TraceMetrics;
      std::cout << "\ndynamic measurements:\n"
                << "  object space:           " << M.ObjectSpace
                << " bytes (" << M.NumObjects << " objects)\n"
                << "  dead data member space: " << M.DeadMemberSpace
                << " bytes (" << M.deadSpacePercent() << "%)\n"
                << "  high water mark:        " << M.HighWaterMark
                << " bytes\n"
                << "  high water mark w/o dead members: "
                << M.HighWaterMarkNoDead << " bytes ("
                << M.highWaterMarkReductionPercent() << "% reduction)\n";
      printHeatReport(std::cout, Heat);
    }

    if (Opts.Profile) {
      const ProfileSummary &P = Prof->finalize(&C->SM);
      Prof->emitCounters();
      printProfileReport(std::cout, P);
      ProfSection = toProfilerSection(P);
      // Differential check: the online shadow accounting must equal the
      // trace replay exactly on every execution (they implement the
      // same event arithmetic over the same layout).
      if (TraceMetrics) {
        if (P.Metrics != *TraceMetrics) {
          const DynamicMetrics &T = *TraceMetrics;
          const DynamicMetrics &S = P.Metrics;
          logError("shadow profiler diverges from the allocation-trace "
                   "replay");
          std::cerr << "  trace:    object_space=" << T.ObjectSpace
                    << " dead=" << T.DeadMemberSpace
                    << " hwm=" << T.HighWaterMark
                    << " hwm_no_dead=" << T.HighWaterMarkNoDead
                    << " objects=" << T.NumObjects << "\n"
                    << "  profiler: object_space=" << S.ObjectSpace
                    << " dead=" << S.DeadMemberSpace
                    << " hwm=" << S.HighWaterMark
                    << " hwm_no_dead=" << S.HighWaterMarkNoDead
                    << " objects=" << S.NumObjects << "\n";
          return 1;
        }
        std::cout << "\nprofiler agreement with trace metrics: OK\n";
      }
    }

    // --run mirrors a real execution: the interpreted program's exit
    // code becomes the process exit status (truncated to 8 bits, as
    // the OS would).
    if (Opts.RunProgram)
      return static_cast<int>(Exec.ExitCode & 0xff);
  }
  return 0;
}
