//===-- driver/Frontend.h - Compilation pipeline facade ---------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call compilation of MiniC++ sources: lex, parse, resolve, check.
/// Used by the driver, the examples, the tests, and the benchmark
/// harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_DRIVER_FRONTEND_H
#define DMM_DRIVER_FRONTEND_H

#include "ast/ASTContext.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceFile.h"
#include "support/SourceManager.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dmm {

/// The result of compiling a program; owns everything.
class Compilation {
public:
  explicit Compilation(std::ostream *DiagOS = nullptr)
      : Diags(SM, DiagOS), Ctx(std::make_unique<ASTContext>()) {}

  SourceManager SM;
  DiagnosticsEngine Diags;
  std::unique_ptr<ASTContext> Ctx;
  std::unique_ptr<Sema> TheSema;
  std::vector<uint32_t> FileIDs;
  /// FileIDs of non-library buffers (count toward lines-of-code stats).
  std::vector<uint32_t> UserFileIDs;
  bool Success = false;

  ASTContext &context() { return *Ctx; }
  const ClassHierarchy &hierarchy() const { return TheSema->hierarchy(); }
  FunctionDecl *mainFunction() const { return TheSema->mainFunction(); }
};

/// Compiles \p Files as one program. Diagnostics are echoed to \p DiagOS
/// when non-null; check `Result->Success`.
std::unique_ptr<Compilation> compileProgram(std::vector<SourceFile> Files,
                                            std::ostream *DiagOS = nullptr);

/// Convenience wrapper for a single in-memory source.
std::unique_ptr<Compilation> compileString(std::string Source,
                                           std::ostream *DiagOS = nullptr);

} // namespace dmm

#endif // DMM_DRIVER_FRONTEND_H
