//===-- driver/Frontend.cpp -----------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Frontend.h"

#include "parser/Parser.h"
#include "telemetry/Telemetry.h"

using namespace dmm;

std::unique_ptr<Compilation> dmm::compileProgram(std::vector<SourceFile> Files,
                                                 std::ostream *DiagOS) {
  auto C = std::make_unique<Compilation>(DiagOS);

  Parser P(*C->Ctx, C->SM, C->Diags);
  std::vector<std::pair<uint32_t, bool>> Buffers;
  for (SourceFile &F : Files) {
    uint32_t ID = C->SM.addBuffer(std::move(F.Name), std::move(F.Text));
    C->FileIDs.push_back(ID);
    if (!F.IsLibrary)
      C->UserFileIDs.push_back(ID);
    Buffers.emplace_back(ID, F.IsLibrary);
  }

  bool ParseOK = true;
  for (auto [ID, IsLibrary] : Buffers) {
    size_t ClassesBefore = C->Ctx->classes().size();
    if (!P.parseBuffer(ID))
      ParseOK = false;
    if (IsLibrary)
      for (size_t I = ClassesBefore; I != C->Ctx->classes().size(); ++I)
        C->Ctx->classes()[I]->setLibrary();
  }

  C->TheSema = std::make_unique<Sema>(*C->Ctx, C->Diags);
  bool SemaOK;
  {
    PhaseTimer Timer("sema");
    SemaOK = C->TheSema->run();
  }
  Telemetry::count("sema.classes", C->Ctx->classes().size());
  Telemetry::count("sema.functions", C->Ctx->functions().size());
  C->Success = ParseOK && SemaOK;
  return C;
}

std::unique_ptr<Compilation> dmm::compileString(std::string Source,
                                                std::ostream *DiagOS) {
  std::vector<SourceFile> Files;
  Files.push_back({"<input>", std::move(Source), /*IsLibrary=*/false});
  return compileProgram(std::move(Files), DiagOS);
}
