//===-- driver/Frontend.cpp -----------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Frontend.h"

#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "support/ThreadPool.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

using namespace dmm;

namespace {

/// Per-file result of the parallel lex stage.
struct LexedBuffer {
  std::vector<Token> Tokens;
  /// Diagnostics collected by the worker's private engine; replayed
  /// into the compilation's engine in file order so multi-threaded runs
  /// report identically to sequential ones.
  std::vector<Diagnostic> Diags;
};

} // namespace

std::unique_ptr<Compilation> dmm::compileProgram(std::vector<SourceFile> Files,
                                                 std::ostream *DiagOS) {
  auto C = std::make_unique<Compilation>(DiagOS);

  Parser P(*C->Ctx, C->SM, C->Diags);
  std::vector<std::pair<uint32_t, bool>> Buffers;
  for (SourceFile &F : Files) {
    uint32_t ID = C->SM.addBuffer(std::move(F.Name), std::move(F.Text));
    C->FileIDs.push_back(ID);
    if (!F.IsLibrary)
      C->UserFileIDs.push_back(ID);
    Buffers.emplace_back(ID, F.IsLibrary);
  }

  // Lexing is per-file independent (the SourceManager is read-only once
  // all buffers are registered), so it fans out across the pool. Each
  // worker lexes into a private diagnostics engine and a private token
  // vector; results merge in file order below.
  std::vector<LexedBuffer> Lexed;
  {
    Span Timer("lex");
    Lexed = globalThreadPool().parallelMap<LexedBuffer>(
        Buffers.size(), [&](size_t I) {
          Span FileSpan("lex.file");
          FileSpan.arg("file",
                       std::string(C->SM.bufferName(Buffers[I].first)));
          LexedBuffer Out;
          DiagnosticsEngine WorkerDiags(C->SM, nullptr);
          Lexer Lex(C->SM, Buffers[I].first, WorkerDiags);
          Out.Tokens = Lex.lexAll();
          Out.Diags = WorkerDiags.diagnostics();
          FileSpan.arg("tokens", Out.Tokens.size());
          return Out;
        });
  }
  uint64_t TotalTokens = 0;
  for (const LexedBuffer &L : Lexed) {
    TotalTokens += L.Tokens.size();
    for (const Diagnostic &D : L.Diags) {
      switch (D.Kind) {
      case DiagKind::Error: C->Diags.error(D.Loc, D.Message); break;
      case DiagKind::Warning: C->Diags.warning(D.Loc, D.Message); break;
      case DiagKind::Note: C->Diags.note(D.Loc, D.Message); break;
      }
    }
  }
  Telemetry::count("lex.tokens", TotalTokens);
  Telemetry::count("lex.buffers", Buffers.size());
  logDebug("lexed sources",
           {kv("files", Buffers.size()), kv("tokens", TotalTokens)});

  // Parsing appends to the shared ASTContext and accumulates the
  // class/function name tables across files, so it stays sequential and
  // deterministic.
  bool ParseOK = !C->Diags.hasErrors();
  for (size_t I = 0; I != Buffers.size(); ++I) {
    size_t ClassesBefore = C->Ctx->classes().size();
    if (!P.parseTokens(std::move(Lexed[I].Tokens)))
      ParseOK = false;
    if (Buffers[I].second)
      for (size_t J = ClassesBefore; J != C->Ctx->classes().size(); ++J)
        C->Ctx->classes()[J]->setLibrary();
  }

  C->TheSema = std::make_unique<Sema>(*C->Ctx, C->Diags);
  bool SemaOK;
  {
    Span Timer("sema");
    SemaOK = C->TheSema->run();
  }
  Telemetry::count("sema.classes", C->Ctx->classes().size());
  Telemetry::count("sema.functions", C->Ctx->functions().size());
  C->Success = ParseOK && SemaOK;
  // A null DiagOS means a deliberately quiet compile (fuzz shrink
  // candidates, library-level tests) — don't log those either.
  if (DiagOS) {
    if (C->Success)
      logInfo("frontend complete",
              {kv("classes", C->Ctx->classes().size()),
               kv("functions", C->Ctx->functions().size())});
    else
      logError("frontend failed",
               {kv("parse_ok", ParseOK), kv("sema_ok", SemaOK)});
  }
  return C;
}

std::unique_ptr<Compilation> dmm::compileString(std::string Source,
                                                std::ostream *DiagOS) {
  std::vector<SourceFile> Files;
  Files.push_back({"<input>", std::move(Source), /*IsLibrary=*/false});
  return compileProgram(std::move(Files), DiagOS);
}
