//===-- vm/VM.h - Bytecode virtual machine ----------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine: compiles the program once (vm/
/// BytecodeCompiler.h) and runs it with a direct-threaded dispatch loop
/// (computed goto under GCC/Clang, a switch otherwise). The VM is a
/// drop-in replacement for the tree-walking Interpreter: it takes the
/// same InterpOptions, fires the same allocation-trace / read-write /
/// profiler hooks at the same points in the same order, produces the
/// same output, exit code, and runtime-error messages, and emits the
/// same "interp" span and telemetry counters. Only ExecResult::Steps
/// differs (bytecode instructions, not AST visits) — the differential
/// `engine` fuzz oracle compares everything else byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_VM_VM_H
#define DMM_VM_VM_H

#include "interp/Interpreter.h"
#include "interp/Memory.h"
#include "vm/BytecodeCompiler.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace dmm {
namespace vm {

class VM {
public:
  /// Compiles the program; compilation cost is charged to a
  /// "vm.compile" span, execution to "interp" (as the tree-walker).
  VM(const ASTContext &Ctx, const ClassHierarchy &CH,
     InterpOptions Options = {}, CompilerConfig Config = {});
  ~VM();

  /// Executes the program starting at \p Main. Single-shot, like
  /// Interpreter::run.
  ExecResult run(const FunctionDecl *Main);

  /// The compiled module (tests inspect constant interning, jump
  /// targets, and member-slot resolution).
  const Module &module() const { return Mod; }

private:
  struct VMError;

  /// How to create the storage of one field slot at allocation time
  /// (Interpreter::allocateFieldStorage, precompiled per class).
  struct SlotAlloc {
    const FieldDecl *Field = nullptr;
    uint32_t Color = 0;
    enum class K : uint8_t { Scalar, Class, ClassArray, ScalarArray } Kind =
        K::Scalar;
    uint32_t ClassI = 0;          ///< Class/ClassArray: Classes[] index.
    const Type *ElemType = nullptr; ///< Arrays: element type.
    uint64_t Count = 0;           ///< Arrays: static extent.
    Value Zero;                   ///< Scalar(+array) zero value.
  };
  /// Per-VSites inline cache: last receiver class -> function index.
  struct VCache {
    const ClassDecl *Class = nullptr;
    uint32_t Fn = 0;
  };

  [[noreturn]] void fail(const std::string &Message);
  void step();

  Storage *allocObject(uint32_t ClassI, const FieldDecl *Owner, uint64_t ID);
  Storage *allocSlot(const SlotAlloc &SA, uint64_t ID);
  uint64_t traceAlloc(uint32_t ClassI, uint64_t Count);
  void traceFree(Storage *Obj);
  void markDead(Storage *S);
  void destroyCompleteObject(Storage *Obj);
  void destroyObj(Storage *Obj, uint32_t ClassI, bool MostDerived);
  void constructVia(Storage *Obj, uint32_t ClassI, uint32_t CtorIdx,
                    size_t ArgAbs, uint16_t Argc, bool MostDerived);
  void defaultConstructMembers(Storage *Obj, uint32_t ClassI,
                               bool MostDerived);

  Value loadScalar(Storage *S);
  void storeScalar(Storage *S, const Value &V, Conv C);
  Value loadOrDecay(Storage *S);
  static Value convert(const Value &V, Conv C);

  /// Materializes Storage::Fields from Slots in SlotFields order so
  /// memberwise copies iterate the hash map in the same order as the
  /// tree-walker's eagerly built map.
  void ensureFields(Storage *S);
  void copyTree(Storage *Dst, Storage *Src, bool InitForm);

  Value doCall(uint32_t FnIdx, Storage *This, size_t ArgAbs, uint16_t Argc);
  Value callBuiltin(const FuncEntry &FE, size_t ArgAbs);
  Value execFunction(const FuncEntry &FE, Storage *This,
                     const ClassDecl *DispatchClass, bool MostDerived,
                     size_t ArgAbs, uint16_t Argc);
  Value execCode(const FuncEntry &FE, size_t RBase, size_t LBase,
                 Storage *This, const ClassDecl *DispatchClass,
                 bool MostDerived);

  Value binaryOp(const Value &L, unsigned OpK, const Value &R);
  Value compoundCompute(const Value &Old, unsigned OpK, const Value &R);
  Storage *stringStorage(uint32_t SiteIdx);

  const ClassHierarchy &CH;
  InterpOptions Options;
  Module Mod;
  MemoryArena Arena;
  std::vector<std::vector<SlotAlloc>> AllocPlans; ///< Parallel to Classes.

  /// Shared register/local stacks (frames take [base, base+N) windows).
  std::vector<Value> Regs;
  std::vector<Storage *> Locals;

  std::vector<Storage *> GS; ///< Globals bound mid-declaration.
  std::vector<Storage *> GP; ///< Globals published after declaration.
  std::vector<Storage *> GlobalObjects; ///< Teardown list.
  std::vector<Storage *> Strings;       ///< Parallel to StringSites.
  std::vector<VCache> VCaches;          ///< Parallel to VSites.

  std::string Output;
  uint64_t Steps = 0;
  uint64_t NumCalls = 0;
  uint64_t NumCompleteObjects = 0;
  uint64_t NextObjectID = 1;
  size_t Depth = 0; ///< Guest frame count (the tree-walker's Stack.size()).

  std::unordered_map<Storage *, uint64_t> TraceIDs;
  std::set<const FieldDecl *> TracedReads; ///< ReadTrace first-read dedup.
};

} // namespace vm
} // namespace dmm

#endif // DMM_VM_VM_H
