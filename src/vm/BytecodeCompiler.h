//===-- vm/BytecodeCompiler.h - AST to bytecode lowering --------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a resolved MiniC++ AST to the register bytecode of
/// vm/Bytecode.h. The compiler mirrors the tree-walking interpreter's
/// evaluation order exactly — every observable event (member
/// read/write attribution, allocation-trace records, profiler events,
/// ObjectID assignment, runtime-error messages) happens at the same
/// point in the same order, which is what lets the `engine` fuzz
/// oracle demand byte-identical behaviour from both executors.
///
/// Key lowering decisions (docs/VM.md):
///  - a module-wide field coloring turns member accesses into dense
///    Storage::Slots indices valid for any receiver class;
///  - scalar locals whose address is never taken (no AddrOf, never
///    bound to a reference) live in registers; everything else is
///    storage-backed so use-after-free and attribution semantics match
///    the interpreter;
///  - constructors compile to bytecode functions carrying the
///    initializer prologue (virtual bases behind a most-derived guard,
///    then non-virtual bases, then members); destructor bodies compile
///    to plain functions invoked by the runtime destruction walk;
///  - global initialization compiles to one synthetic function using
///    a two-stage binding (bound vs. published) that reproduces the
///    interpreter's global-frame visibility rules.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_VM_BYTECODECOMPILER_H
#define DMM_VM_BYTECODECOMPILER_H

#include "vm/Bytecode.h"

namespace dmm {

class ASTContext;
class ClassHierarchy;

namespace vm {

struct CompilerConfig {
  /// Mirror of InterpOptions::CountDeallocationReads: when set,
  /// delete/free arguments are loaded with normal read attribution.
  bool CountDeallocationReads = false;
  /// Deliberate miscompile for harness self-validation: integer `+`
  /// lowers to an off-by-one add (docs/TESTING.md fault injection).
  bool FaultAddOffByOne = false;
};

/// Compiles the whole program into a Module. Total: any construct the
/// interpreter would reject at run time lowers to code failing with
/// the identical message at the identical point.
Module compileModule(const ASTContext &Ctx, const ClassHierarchy &CH,
                     const CompilerConfig &Config = {});

} // namespace vm
} // namespace dmm

#endif // DMM_VM_BYTECODECOMPILER_H
