//===-- vm/Bytecode.h - Register bytecode for MiniC++ -----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat register-based bytecode the VM executes (docs/VM.md). A
/// Module is the unit of compilation: one dense function table (every
/// FunctionDecl in the program, constructors and destructor bodies
/// included, plus one synthetic global-initializer), an interned
/// constant pool, per-class object plans with member storage resolved
/// to dense slot indices, and side tables for allocation sites, string
/// literals, virtual-call sites, and failure messages.
///
/// Member offsets: every FieldDecl in the program gets one module-wide
/// *slot color* such that any two fields that co-occur in some class's
/// complete-object layout (LayoutEngine::layout().AllFields) have
/// distinct colors. An object's Storage::Slots vector is sized to its
/// class's color count, so a compiled member access is a bounds check
/// plus one indexed load — valid for any dynamic receiver class, since
/// a field keeps its color in every class that embeds it.
///
/// Instructions are fixed width: a 16-bit opcode, five 16-bit operands
/// (registers, local slots, small indices) and one 32-bit operand for
/// pool indices and jump targets.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_VM_BYTECODE_H
#define DMM_VM_BYTECODE_H

#include "ast/Decl.h"
#include "interp/Value.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmm {

class StringLiteralExpr;
class MethodDecl;

namespace vm {

/// Sentinel for "no function" operands (missing arity-0 constructor,
/// destructor without a body, ...).
constexpr uint32_t NoFunc = 0xFFFFFFFFu;
/// Sentinel for an unpatched jump target; never survives compilation.
constexpr uint32_t NoTarget = 0xFFFFFFFFu;

/// Scalar store conversion, precompiled from the declared type
/// (Interpreter::convertForStore lowered to a dense enum).
enum class Conv : uint8_t { None, Int, Double, Bool, Char };

enum class Op : uint16_t {
  // Constants and moves.
  LoadK,   ///< R[A] = Consts[X]
  Move,    ///< R[A] = R[B]
  ConvOp,  ///< R[A] = convert(R[B], Conv(C))
  Str,     ///< R[A] = pointer to (lazily created) string literal X
  BoolOp,  ///< R[A] = ofBool(R[B].asBool())

  // Control flow.
  Jmp,    ///< PC = X
  JmpF,   ///< if (!R[A].asBool()) PC = X
  JmpT,   ///< if (R[A].asBool()) PC = X
  JmpNMD, ///< if (!frame.MostDerived) PC = X   (ctor vbase guard)
  Fail,   ///< throw runtime error Msgs[X]

  // Locals. Storage-backed locals live in LS[slot]; register-resident
  // scalars are plain registers (no ops needed beyond Move/ConvOp).
  LocPtr,      ///< R[A] = ofPtr({LS[B]})
  LdLoc,       ///< R[A] = loadOrDecay(LS[B])
  LSet,        ///< LS[A] = R[B].Ptr.Pointee
  DeclScalar,  ///< LS[A] = fresh scalar; V = convert(R[B], Conv(C))
  DeclRefVar,  ///< LS[A] = R[B].Ptr.Pointee (reference variable bind)
  DestroyLoc,  ///< destroyCompleteObject(LS[A])

  // Globals. GS = storage bound mid-declaration (the interpreter's
  // global-init frame locals); GP = published after the declaration
  // completes (the interpreter's Globals map).
  GlobPtr,    ///< R[A] = ofPtr({GS[B]}); fail Msgs[X] if unbound
  GlobPtrPub, ///< R[A] = ofPtr({GP[B]}); fail Msgs[X] if unpublished
  GDeclScalar, ///< GS[A] = fresh scalar; V = convert(R[B], Conv(C))
  GDeclRef,   ///< GS[A] = R[B].Ptr.Pointee
  GBind,      ///< GS[A] = R[B].Ptr.Pointee
  GPublish,   ///< GP[A] = GS[A]
  GMarkObj,   ///< append R[A].Ptr.Pointee to the global teardown list

  // this / member access bases.
  ThisOp,  ///< R[A] = ofPtr({frame.This}); fail Msgs[X] if null
  ArrowChk, ///< validate R[A] as `->` base (non-null pointer to object)
  DotChk,  ///< validate R[A] as rvalue `.` base (non-null pointer)

  // Fields. Places are Ptr values whose Pointee is the storage node.
  FieldPlace, ///< R[A] = slot C of object R[B], which must realize
              ///< FieldTable[D] (colors are reused across unrelated
              ///< classes); fail Msgs[X] on miss
  MemPtrPlace, ///< R[A] = member R[C] (a MemberPtr) of object R[B]

  // Subscripts (index register, then base, per evalLValue order).
  IdxArr,  ///< R[A] = element R[C] of array place R[B]
  IdxPtr,  ///< R[A] = element R[C] relative to pointer R[B]
  DerefP,  ///< R[A] = place of *R[B]; fails "dereference of null pointer"

  // Loads and stores through places.
  Decay,     ///< R[A] = loadOrDecay(place R[B])
  LoadSc,    ///< R[A] = loadScalar(place R[B])  (strict)
  LoadNA,    ///< R[A] = raw value of place R[B], alive/kind checked,
             ///< no read attribution (deallocation-argument loads)
  RawV,      ///< R[A] = raw V of place R[B] (plain-assign result)
  StoreAt,   ///< storeScalar(place R[A], R[B], Conv(C))

  // Unary / binary operators.
  Neg,      ///< R[A] = -R[B] (double or int, by value kind)
  NotOp,    ///< R[A] = ofBool(!R[B].asBool())
  BitNot,   ///< R[A] = ofInt(~R[B].asInt())
  AddrTake, ///< recordAddrTaken on place R[A]'s owner field
  AddrIdxA, ///< R[A] = &array-place R[B][R[C]] (keeps provenance)
  AddrIdxP, ///< R[A] = &pointer R[B][R[C]]
  ChkSub,   ///< validate R[A] is a pointer ("subscript of non-pointer");
            ///< runs between base and index of `&p[i]`, as the tree does
  IncDec,   ///< R[A] = old/new of place R[B]; C bit0=inc, bit1=pre;
            ///< Conv(D)
  Bin,      ///< R[A] = R[B] op(C) R[D] (full evalBinary semantics)
  AddII,    ///< R[A] = ofInt(R[B].IntVal + rhs); rhs is R[D].IntVal, or
            ///< Consts[X].IntVal when C bit0 is set (folded literal).
            ///< E=1 adds one more (the deliberate fault-injection
            ///< miscompile)
  SubII,    ///< R[A] = ofInt(R[B].IntVal - rhs); C bit0/X as AddII
  MulII,    ///< R[A] = ofInt(R[B].IntVal * rhs); C bit0/X as AddII
  CmpII,    ///< R[A] = ofBool(R[B].IntVal <op C> rhs); rhs is
            ///< R[D].IntVal, or Consts[X].IntVal when E bit0 is set
  Compound, ///< New = R[C] op(E) R[D]; storeScalar(place R[B], New,
            ///< Conv(X)); R[A] = New (C holds the pre-loaded old value)
  CompoundR, ///< register form: New = R[C] op(E) R[D];
             ///< R[B] = convert(New, Conv(X)); R[A] = New
  IncDecR,  ///< register form of IncDec on R[B]; C bit0=inc, bit1=pre;
            ///< Conv(D); R[A] = result
  CastPtr,  ///< R[A] = pointer cast of R[B]

  // Calls. Arguments occupy consecutive registers [B, B+C).
  Call,     ///< R[A] = call Functions[X] (no receiver)
  CallM,    ///< R[A] = call Functions[X] with This = object R[D]
  CallV,    ///< R[A] = call Functions[R[E].IntVal] with This = R[D]
  CallI,    ///< R[A] = indirect call through fn-pointer R[D]
  ChkFn,    ///< validate R[A] as a non-null function pointer
  VDisp,    ///< R[A] = ofInt(resolved function index) for virtual site
            ///< X with receiver object R[B] (inline-cached)
  Ret,      ///< return R[A]
  RetUnit,  ///< return unit

  // Objects and arrays.
  AllocObj, ///< R[A] = new object of Classes[X] at site B;
            ///< C=1: gate trace/profiler on TraceStackObjects
  CtorCall, ///< construct object R[A] as Classes[X], ctor E (NoFunc16 =
            ///< implicit default), args [B,B+C), D = most-derived
  CtorElems, ///< construct each element of array place R[A] as
             ///< Classes[X] via its arity-0 ctor (member arrays)
  ArrLocal, ///< R[A] = new local/global array per ArrayDescs[X]
  ArrNew,   ///< R[A] = heap array-new per ArrayDescs[X], count R[B]
  NewScal0, ///< R[A] = pointer to fresh scalar with V = Consts[X]
  NewScalI, ///< R[A] = pointer to fresh scalar, V = convert(R[B], C)
  DeleteOp, ///< delete R[A]; B = array form
  CopyInit, ///< memberwise copy-initialize object R[A] from R[B]
  CopyAsgn, ///< class assignment: object place R[B] = R[C]; R[A]=R[C]

  // Fused forms (appended so the dispatch table order above is stable).
  JmpCmpII, ///< fused integer compare-and-branch for statement
            ///< conditions: lhs R[A].IntVal, rhs R[D].IntVal (or
            ///< Consts[D].IntVal when E bit1 is set), comparison kind C
            ///< as CmpII; PC = X when the result equals E bit0
  LdFld,    ///< R[A] = loadOrDecay(member D at slot-color C of object
            ///< R[B]); fuses FieldPlace+Decay, X = failure message
  StFld,    ///< storeScalar(member D at slot-color C of object R[B],
            ///< R[A], Conv(E)); fuses FieldPlace+StoreAt, X = message
  DivII,    ///< R[A] = ofInt(R[B].IntVal / rhs), "integer division by
            ///< zero" when rhs is 0; C bit0/X as AddII
  RemII,    ///< R[A] = ofInt(R[B].IntVal % rhs), "integer remainder by
            ///< zero" when rhs is 0; C bit0/X as AddII
};

/// 16-bit sentinel used in CtorCall's E operand.
constexpr uint16_t NoFunc16 = 0xFFFFu;

/// One fixed-width instruction.
struct Insn {
  Op Opcode = Op::RetUnit;
  uint16_t A = 0, B = 0, C = 0, D = 0, E = 0;
  uint32_t X = 0;
};

/// How one parameter is bound at call entry (resolved at compile time
/// from the declared type and the escape analysis).
struct ParamPlan {
  enum class PK : uint8_t {
    RefBind,       ///< reference: LS[Slot] = arg.Ptr.Pointee
    ClassShare,    ///< by-value class: LS[Slot] = arg object (shared)
    ScalarStorage, ///< fresh scalar storage holding convert(arg)
    ScalarReg,     ///< register-resident: R[Slot] = convert(arg)
  };
  PK Kind = PK::ScalarReg;
  uint16_t Slot = 0;
  Conv ConvKind = Conv::None;
};

/// One function-table entry. Indexed densely; includes every
/// FunctionDecl (methods, constructors, destructors, builtins) plus a
/// synthetic global initializer at Module::GlobalInitIdx.
struct FuncEntry {
  const FunctionDecl *Decl = nullptr;
  bool Defined = false;
  bool IsBuiltin = false;
  BuiltinKind Builtin = BuiltinKind::None;
  /// Constructors bind parameters without the by-value-class share rule
  /// and are invoked through the construction protocol.
  bool IsCtor = false;
  std::vector<ParamPlan> Params;
  uint16_t NumRegs = 0;
  uint16_t NumLocals = 0;
  std::vector<Insn> Code;
  /// Precomputed failure messages (empty when never needed).
  std::string UndefinedMsg; ///< "call to undefined function '...'"
  std::string ArgCountMsg;  ///< argument/constructor count mismatch
};

/// What a direct data member of a class is, for the construction and
/// destruction walks (CD->fields() order).
struct MemberPlan {
  const FieldDecl *Field = nullptr;
  uint32_t SlotColor = 0;
  enum class MK : uint8_t { Scalar, Class, ClassArray, Other } Kind =
      MK::Scalar;
  uint32_t ElemClassIdx = 0; ///< For Class/ClassArray: Classes[] index.
};

/// Per-class object plan: slot layout, construction/destruction walk
/// data, and the allocation-failure message.
struct ClassPlan {
  const ClassDecl *Decl = nullptr;
  bool Complete = false;
  /// Unique fields of the complete object in first-occurrence
  /// AllFields order (the interpreter's Fields-map insertion order).
  std::vector<const FieldDecl *> SlotFields;
  /// Parallel to SlotFields: each field's module-wide color.
  std::vector<uint32_t> SlotColors;
  /// Storage::Slots size for instances (1 + max color, 0 if none).
  uint32_t NumSlots = 0;
  uint64_t CompleteSize = 0; ///< Layout bytes, for the allocation trace.
  /// Direct members in declaration order.
  std::vector<MemberPlan> Members;
  /// Transitive virtual bases (ClassHierarchy order) and direct
  /// non-virtual bases, as Classes[] indices.
  std::vector<uint32_t> VBases;
  std::vector<uint32_t> NVBases;
  uint32_t Arity0Ctor = NoFunc;  ///< Functions[] index, or NoFunc.
  uint32_t DtorBody = NoFunc;    ///< Functions[] index of a destructor
                                 ///< with a body, or NoFunc.
  std::string IncompleteMsg; ///< "cannot create object of incomplete..."
};

/// Allocation-site descriptor for array creation ops.
struct ArrayDesc {
  const Type *ElemType = nullptr;
  int32_t ElemClassIdx = -1;  ///< -1 for non-class elements.
  uint32_t ZeroConstIdx = 0;  ///< Element zero value (non-class).
  uint64_t Count = 0;         ///< Static extent (ArrLocal only).
  uint32_t SiteIdx = 0;       ///< Sites[] index for registerObjects.
  bool Gate = false;          ///< Apply the TraceStackObjects gate.
};

/// Virtual-call site: the static method plus its failure message; the
/// VM keeps a parallel per-site inline cache.
struct VCallSite {
  const MethodDecl *Method = nullptr;
  std::string FailMsg;
};

/// A compiled program.
struct Module {
  std::vector<Value> Consts;
  std::vector<FuncEntry> Functions;
  std::vector<ClassPlan> Classes;
  std::vector<ArrayDesc> ArrayDescs;
  std::vector<SourceLocation> Sites;
  std::vector<const StringLiteralExpr *> StringSites;
  std::vector<VCallSite> VSites;
  std::vector<std::string> Msgs;
  /// Fields referenced by FieldPlace's D operand: the runtime checks
  /// that the slot it indexes actually realizes this field, since slot
  /// colors are shared between fields of unrelated classes.
  std::vector<const FieldDecl *> FieldTable;
  /// Globals, in ASTContext::globals() order.
  std::vector<const VarDecl *> Globals;
  uint32_t GlobalInitIdx = NoFunc;

  /// Lookup tables keyed by declaration.
  std::unordered_map<const FunctionDecl *, uint32_t> FuncIdx;
  std::unordered_map<const ClassDecl *, uint32_t> ClassIdx;
  std::unordered_map<const FieldDecl *, uint32_t> FieldColor;
};

} // namespace vm
} // namespace dmm

#endif // DMM_VM_BYTECODE_H
