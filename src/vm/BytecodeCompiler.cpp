//===-- vm/BytecodeCompiler.cpp -------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Lowering notes. The golden rule is interp/Interpreter.cpp: every
// compiled sequence performs the same observable actions (instrumented
// loads/stores, allocations, failure messages) in the same order as the
// corresponding eval* function. Comments of the form "evalX:" cite the
// mirrored interpreter path.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeCompiler.h"

#include "ast/ASTContext.h"
#include "ast/Expr.h"
#include "ast/Stmt.h"
#include "hierarchy/ClassHierarchy.h"
#include "hierarchy/ObjectLayout.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

using namespace dmm;
using namespace dmm::vm;

namespace {

/// The zero value of a declared type (Interpreter.cpp zeroValue).
Value zeroValue(const Type *Ty) {
  if (Ty->isPointer()) {
    if (isa<FunctionType>(cast<PointerType>(Ty)->pointee()))
      return Value::ofFn(nullptr);
    return Value::nullPtr();
  }
  if (Ty->isMemberPointer())
    return Value::ofMemberPtr(nullptr);
  if (const auto *BT = dyn_cast<BuiltinType>(Ty)) {
    switch (BT->builtinKind()) {
    case BuiltinType::BK::Double:
      return Value::ofDouble(0.0);
    case BuiltinType::BK::Bool:
      return Value::ofBool(false);
    case BuiltinType::BK::Char:
      return Value::ofChar(0);
    case BuiltinType::BK::NullPtr:
      return Value::nullPtr();
    default:
      return Value::ofInt(0);
    }
  }
  return Value::ofInt(0);
}

/// Store conversion of a declared type (convertForStore, precompiled).
Conv convFor(const Type *Ty) {
  if (!Ty)
    return Conv::None;
  if (const auto *BT = dyn_cast<BuiltinType>(Ty)) {
    switch (BT->builtinKind()) {
    case BuiltinType::BK::Int:
      return Conv::Int;
    case BuiltinType::BK::Double:
      return Conv::Double;
    case BuiltinType::BK::Bool:
      return Conv::Bool;
    case BuiltinType::BK::Char:
      return Conv::Char;
    default:
      return Conv::None;
    }
  }
  return Conv::None;
}

bool isIntType(const Type *Ty) {
  const auto *BT = dyn_cast_or_null<BuiltinType>(Ty);
  return BT && BT->builtinKind() == BuiltinType::BK::Int;
}

/// CmpII/JmpCmpII comparison-kind operand for a binary operator, or -1
/// when the operator is not a comparison.
int cmpCode(BinaryOpKind K) {
  switch (K) {
  case BinaryOpKind::LT: return 0;
  case BinaryOpKind::GT: return 1;
  case BinaryOpKind::LE: return 2;
  case BinaryOpKind::GE: return 3;
  case BinaryOpKind::EQ: return 4;
  case BinaryOpKind::NE: return 5;
  default: return -1;
  }
}

/// Strips explicit casts (evalLValue's Cast case / stripCastsForDealloc).
const Expr *stripCasts(const Expr *E) {
  while (const auto *CE = dyn_cast<CastExpr>(E))
    E = CE->sub();
  return E;
}

/// Constant-pool interning key.
struct ConstKey {
  uint8_t Kind;
  uint64_t Bits;
  bool operator<(const ConstKey &O) const {
    return Kind != O.Kind ? Kind < O.Kind : Bits < O.Bits;
  }
};

class Compiler {
public:
  Compiler(const ASTContext &Ctx, const ClassHierarchy &CH,
           const CompilerConfig &Config)
      : Ctx(Ctx), CH(CH), Layout(CH), Config(Config) {}

  Module compile();

private:
  const ASTContext &Ctx;
  const ClassHierarchy &CH;
  LayoutEngine Layout;
  CompilerConfig Config;
  Module M;

  std::map<ConstKey, uint32_t> ConstMap;
  std::unordered_map<std::string, uint32_t> MsgMap;
  std::unordered_map<const VarDecl *, uint32_t> GlobalIdx;

  //===--- Per-function state ---------------------------------------------===//

  struct Binding {
    bool InReg = false;
    uint16_t Idx = 0;
  };
  struct Loop {
    size_t ScopeDepth;
    std::vector<size_t> BreakPatches;
    std::vector<size_t> ContinuePatches;
  };

  FuncEntry *F = nullptr;
  std::unordered_map<const VarDecl *, Binding> Bind;
  std::set<const VarDecl *> Escaped;
  std::vector<std::vector<uint16_t>> Scopes;
  std::vector<Loop> Loops;
  uint16_t FirstTmp = 0, Tmp = 0, HighWater = 0, NextSlot = 0;
  bool InGlobalInit = false;
  static constexpr uint16_t Any = 0xFFFF;

  //===--- Small helpers --------------------------------------------------===//

  size_t emit(Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
              uint16_t D = 0, uint16_t E = 0, uint32_t X = 0) {
    F->Code.push_back({O, A, B, C, D, E, X});
    return F->Code.size() - 1;
  }
  size_t here() const { return F->Code.size(); }
  void patch(size_t At) {
    F->Code[At].X = static_cast<uint32_t>(F->Code.size());
  }
  void patchTo(size_t At, size_t Target) {
    F->Code[At].X = static_cast<uint32_t>(Target);
  }

  uint16_t allocTmp(unsigned N = 1) {
    if (Tmp + N > 0xFFF0)
      throw std::runtime_error("vm: function needs too many registers");
    uint16_t R = Tmp;
    Tmp = static_cast<uint16_t>(Tmp + N);
    HighWater = std::max(HighWater, Tmp);
    return R;
  }
  uint16_t target(uint16_t Dst) { return Dst == Any ? allocTmp() : Dst; }

  uint32_t internConst(const Value &V) {
    ConstKey K{};
    K.Kind = static_cast<uint8_t>(V.Kind);
    switch (V.Kind) {
    case Value::VK::Double:
      std::memcpy(&K.Bits, &V.DoubleVal, sizeof(double));
      break;
    case Value::VK::Ptr: // Only the null pointer is ever a constant.
      K.Bits = 0;
      break;
    case Value::VK::FnPtr:
      K.Bits = reinterpret_cast<uint64_t>(V.Fn);
      break;
    case Value::VK::MemberPtr:
      K.Bits = reinterpret_cast<uint64_t>(V.Member);
      break;
    default:
      K.Bits = static_cast<uint64_t>(V.IntVal);
      break;
    }
    auto It = ConstMap.find(K);
    if (It != ConstMap.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(M.Consts.size());
    M.Consts.push_back(V);
    ConstMap.emplace(K, Idx);
    return Idx;
  }

  uint32_t msg(const std::string &S) {
    auto It = MsgMap.find(S);
    if (It != MsgMap.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(M.Msgs.size());
    M.Msgs.push_back(S);
    MsgMap.emplace(S, Idx);
    return Idx;
  }

  uint32_t site(SourceLocation Loc) {
    M.Sites.push_back(Loc);
    return static_cast<uint32_t>(M.Sites.size() - 1);
  }

  /// FieldTable index for FieldPlace's identity check (16-bit operand).
  uint16_t fieldIdx(const FieldDecl *FD) {
    auto It = FieldIdxMap.find(FD);
    if (It != FieldIdxMap.end())
      return It->second;
    if (M.FieldTable.size() >= 0xFFFF)
      throw std::runtime_error("vm: too many fields");
    uint16_t Idx = static_cast<uint16_t>(M.FieldTable.size());
    M.FieldTable.push_back(FD);
    FieldIdxMap.emplace(FD, Idx);
    return Idx;
  }
  std::unordered_map<const FieldDecl *, uint16_t> FieldIdxMap;

  uint16_t loadConst(const Value &V, uint16_t Dst) {
    uint16_t R = target(Dst);
    emit(Op::LoadK, R, 0, 0, 0, 0, internConst(V));
    return R;
  }

  uint32_t classIdx(const ClassDecl *CD) { return M.ClassIdx.at(CD); }
  uint32_t funcIdx(const FunctionDecl *FD) { return M.FuncIdx.at(FD); }

  //===--- Module construction --------------------------------------------===//

  void indexFunctions();
  void colorFields();
  void buildClassPlans();
  void compileFunctions();
  void compileGlobalInit();

  ParamPlan planParam(const ParamDecl *P, bool IsCtor);
  void beginFunction(FuncEntry &Entry, const FunctionDecl *FD, bool IsCtor);
  void finishFunction();

  //===--- Pre-pass: escape analysis + local binding ----------------------===//

  void analyzeStmt(const Stmt *S);
  void analyzeExpr(const Expr *E);
  void analyzeVarDecl(const VarDecl *V);
  void noteEscape(const Expr *E);
  void assignLocal(const VarDecl *V);
  std::vector<const VarDecl *> PendingLocals;

  //===--- Statement compilation ------------------------------------------===//

  void compileStmt(const Stmt *S);
  void compileCompound(const CompoundStmt *CS);
  void compileVarDecl(const VarDecl *V);
  void compileGlobalVarDecl(const VarDecl *V);
  void emitScopeDestroys(size_t DownToDepth);

  //===--- Expression compilation -----------------------------------------===//

  uint16_t rval(const Expr *E, uint16_t Dst = Any);
  void rvalInto(const Expr *E, uint16_t Dst) {
    uint16_t R = rval(E, Dst);
    if (R != Dst)
      emit(Op::Move, Dst, R);
  }
  uint16_t place(const Expr *E, uint16_t Dst = Any);
  void placeInto(const Expr *E, uint16_t Dst) {
    uint16_t R = place(E, Dst);
    if (R != Dst)
      emit(Op::Move, Dst, R);
  }
  uint16_t objectBase(const Expr *Base, bool IsArrow);
  uint16_t compileAssign(const AssignExpr *E, uint16_t Dst, bool NeedResult);
  uint16_t compileUnary(const UnaryExpr *E, uint16_t Dst);
  uint16_t compileIncDec(const UnaryExpr *E, uint16_t Dst);
  uint16_t compileBinary(const BinaryExpr *E, uint16_t Dst);
  uint16_t compileCall(const CallExpr *E, uint16_t Dst);
  uint16_t compileNew(const NewExpr *E, uint16_t Dst);
  uint16_t deallocArg(const Expr *E);
  uint16_t emitFail(const std::string &Message, uint16_t Dst);

  /// Rvalue whose result register may alias a local's home register.
  /// Only legal when the value is consumed before any other side effect
  /// can run (jump conditions, store sources, the rhs of a binary op).
  uint16_t rvalA(const Expr *E);
  /// Rvalue in statement position: effects only, result discarded.
  void rvalVoid(const Expr *E);
  /// True when evaluating E might write a register-resident local
  /// (conservative: any assignment or ++/-- anywhere inside). Calls
  /// cannot: register residency implies the variable never escapes.
  static bool containsWrite(const Expr *E);
  /// Operand eligible for the int fast path: an int-typed expression
  /// form whose compiled result is guaranteed to be exactly
  /// Value::VK::Int at run time (so its IntVal can be consumed raw and
  /// the Conv::Int it would otherwise pass through is the identity).
  bool fastIntOperand(const Expr *E);
  /// True when evaluating E cannot produce any observable effect — no
  /// storage reads/writes, no allocation, no failure, no output. Such
  /// an rhs may be reordered across the member-storage check that the
  /// fused StFld performs after its source evaluates.
  bool isPureOperand(const Expr *E);
  /// Emit the conditional branch for a condition expression. Integer
  /// comparisons with fast operands fuse into one JmpCmpII; everything
  /// else materializes the boolean and branches JmpF/JmpT. Returns the
  /// emit site, to be patched to the branch target.
  size_t emitCondBranch(const Expr *Cond, bool JumpOnTrue);
  /// Slot color for a field access, 0xFFFF when the field was never
  /// assigned one (the access then fails the slot check at run time).
  uint16_t fieldColor(const FieldDecl *Field) {
    auto It = M.FieldColor.find(Field);
    return It == M.FieldColor.end() ? 0xFFFF
                                    : static_cast<uint16_t>(It->second);
  }

  /// Locals mid-declaration: the tree-walker binds a scalar/reference
  /// local only after its initializer evaluates, so `int x = x;` fails
  /// "not in scope" there; the VM pre-binds registers and must compile
  /// such references to the same failure.
  std::set<const VarDecl *> DeadLocals;
  std::unordered_map<const StringLiteralExpr *, uint32_t> StrSiteIdx;

  /// 16-bit operand guards: these never trip on realistic programs, but
  /// overflowing silently would miscompile.
  uint16_t site16(SourceLocation Loc) {
    uint32_t S = site(Loc);
    if (S > 0xFFFF)
      throw std::runtime_error("vm: too many allocation sites");
    return static_cast<uint16_t>(S);
  }
  uint16_t fn16(uint32_t FuncIdx) {
    if (FuncIdx >= NoFunc16)
      throw std::runtime_error("vm: too many functions for ctor index");
    return static_cast<uint16_t>(FuncIdx);
  }

  /// Evaluates call/ctor arguments into a fresh consecutive register
  /// block; ByRef(i) selects lvalue (place) evaluation.
  template <typename ByRefFn>
  uint16_t compileArgs(const std::vector<Expr *> &Args, ByRefFn ByRef,
                       bool IsFree = false) {
    uint16_t Base = allocTmp(static_cast<unsigned>(Args.size()));
    for (size_t I = 0; I != Args.size(); ++I) {
      if (ByRef(I))
        placeInto(Args[I], static_cast<uint16_t>(Base + I));
      else if (IsFree) {
        uint16_t R = deallocArg(Args[I]);
        if (R != Base + I)
          emit(Op::Move, static_cast<uint16_t>(Base + I), R);
      } else
        rvalInto(Args[I], static_cast<uint16_t>(Base + I));
    }
    return Base;
  }

  static bool ctorParamIsRef(const ConstructorDecl *Ctor, size_t I) {
    return Ctor && I < Ctor->params().size() &&
           Ctor->params()[I]->type()->isReference();
  }
  /// ByRef flags for a call's arguments (evalCall: resolved callee's
  /// params; for indirect calls the callee's static function type).
  static bool callParamIsRef(const FunctionDecl *Callee,
                             const FunctionType *FT, size_t I) {
    if (Callee)
      return I < Callee->params().size() &&
             Callee->params()[I]->type()->isReference();
    if (FT)
      return I < FT->params().size() && FT->params()[I]->isReference();
    return false;
  }
  static const FunctionType *calleeFnType(const CallExpr *Call) {
    const Type *T = Call->callee()->type();
    if (!T)
      return nullptr;
    if (T->isPointer())
      T = cast<PointerType>(T)->pointee();
    return dyn_cast<FunctionType>(T);
  }

  uint32_t arrayDesc(const Type *ElemTy, uint64_t Count, SourceLocation Loc,
                     bool Gate) {
    ArrayDesc D;
    D.ElemType = ElemTy;
    if (const ClassDecl *CD = ElemTy->asClassDecl())
      D.ElemClassIdx = static_cast<int32_t>(classIdx(CD));
    else
      D.ZeroConstIdx = internConst(zeroValue(ElemTy));
    D.Count = Count;
    D.SiteIdx = site(Loc);
    D.Gate = Gate;
    M.ArrayDescs.push_back(D);
    return static_cast<uint32_t>(M.ArrayDescs.size() - 1);
  }
};

//===----------------------------------------------------------------------===//
// Module construction
//===----------------------------------------------------------------------===//

void Compiler::indexFunctions() {
  for (const FunctionDecl *FD : Ctx.functions()) {
    uint32_t Idx = static_cast<uint32_t>(M.Functions.size());
    M.FuncIdx.emplace(FD, Idx);
    FuncEntry E;
    E.Decl = FD;
    E.IsBuiltin = FD->isBuiltin();
    E.Builtin = FD->builtinKind();
    E.IsCtor = isa<ConstructorDecl>(FD);
    // Constructors run their initializer prologue even without a body
    // (Interpreter::construct); everything else follows isDefined().
    E.Defined = E.IsCtor || FD->isDefined();
    if (E.IsBuiltin)
      E.UndefinedMsg = "call to undefined function '" + FD->name() + "'";
    else
      E.UndefinedMsg =
          "call to undefined function '" + FD->qualifiedName() + "'";
    if (E.IsCtor)
      E.ArgCountMsg = "constructor argument count mismatch for '" +
                      cast<ConstructorDecl>(FD)->parent()->name() + "'";
    else
      E.ArgCountMsg =
          "argument count mismatch calling '" + FD->qualifiedName() + "'";
    M.Functions.push_back(std::move(E));
  }
}

void Compiler::colorFields() {
  // Interference: two fields conflict when they co-occur in some
  // complete class's unique field list. Greedy coloring in global
  // first-appearance order.
  std::vector<std::vector<const FieldDecl *>> ClassFields;
  std::unordered_map<const FieldDecl *, std::vector<uint32_t>> FieldClasses;
  std::vector<const FieldDecl *> Order;
  for (const ClassDecl *CD : Ctx.classes()) {
    std::vector<const FieldDecl *> Unique;
    if (CD->isComplete()) {
      std::set<const FieldDecl *> Seen;
      for (const FieldSlot &Slot : Layout.layout(CD).AllFields)
        if (Seen.insert(Slot.Field).second)
          Unique.push_back(Slot.Field);
    }
    uint32_t CI = static_cast<uint32_t>(ClassFields.size());
    for (const FieldDecl *FD : Unique) {
      auto [It, Fresh] = FieldClasses.try_emplace(FD);
      It->second.push_back(CI);
      if (Fresh)
        Order.push_back(FD);
    }
    ClassFields.push_back(std::move(Unique));
  }
  for (const FieldDecl *FD : Order) {
    std::set<uint32_t> Used;
    for (uint32_t CI : FieldClasses[FD])
      for (const FieldDecl *Other : ClassFields[CI]) {
        auto It = M.FieldColor.find(Other);
        if (It != M.FieldColor.end())
          Used.insert(It->second);
      }
    uint32_t Color = 0;
    while (Used.count(Color))
      ++Color;
    M.FieldColor.emplace(FD, Color);
  }
}

void Compiler::buildClassPlans() {
  for (const ClassDecl *CD : Ctx.classes())
    M.ClassIdx.emplace(CD, static_cast<uint32_t>(M.Classes.size())),
        M.Classes.push_back(ClassPlan{});
  for (const ClassDecl *CD : Ctx.classes()) {
    ClassPlan &P = M.Classes[classIdx(CD)];
    P.Decl = CD;
    P.Complete = CD->isComplete();
    P.IncompleteMsg =
        "cannot create object of incomplete class '" + CD->name() + "'";
    if (!P.Complete)
      continue;
    std::set<const FieldDecl *> Seen;
    for (const FieldSlot &Slot : Layout.layout(CD).AllFields) {
      if (!Seen.insert(Slot.Field).second)
        continue; // Repeated non-virtual base: share the first subobject.
      P.SlotFields.push_back(Slot.Field);
      uint32_t Color = M.FieldColor.at(Slot.Field);
      P.SlotColors.push_back(Color);
      P.NumSlots = std::max(P.NumSlots, Color + 1);
    }
    P.CompleteSize = Layout.layout(CD).CompleteSize;
    for (const ClassDecl *VB : CH.virtualBases(CD))
      P.VBases.push_back(classIdx(VB));
    for (const BaseSpecifier &BS : CD->bases())
      if (!BS.IsVirtual)
        P.NVBases.push_back(classIdx(BS.Base));
    for (const FieldDecl *Field : CD->fields()) {
      MemberPlan MP;
      MP.Field = Field;
      MP.SlotColor = M.FieldColor.at(Field);
      if (const ClassDecl *Member = Field->type()->asClassDecl()) {
        MP.Kind = MemberPlan::MK::Class;
        MP.ElemClassIdx = classIdx(Member);
      } else if (const auto *AT = dyn_cast<ArrayType>(Field->type())) {
        if (const ClassDecl *Elem = AT->element()->asClassDecl()) {
          MP.Kind = MemberPlan::MK::ClassArray;
          MP.ElemClassIdx = classIdx(Elem);
        } else
          MP.Kind = MemberPlan::MK::Other;
      } else
        MP.Kind = MemberPlan::MK::Scalar;
      P.Members.push_back(MP);
    }
    for (ConstructorDecl *C : CD->constructors())
      if (C->params().empty() && P.Arity0Ctor == NoFunc)
        P.Arity0Ctor = funcIdx(C);
    if (DestructorDecl *Dtor = CD->destructor())
      if (Dtor->body())
        P.DtorBody = funcIdx(Dtor);
  }
}

ParamPlan Compiler::planParam(const ParamDecl *P, bool IsCtor) {
  ParamPlan Plan;
  if (P->type()->isReference()) {
    Plan.Kind = ParamPlan::PK::RefBind;
    Plan.Slot = NextSlot++;
  } else if (!IsCtor && P->type()->asClassDecl()) {
    // callFunction: by-value class parameters share the argument object;
    // constructors bind them as plain scalar storage (construct()).
    Plan.Kind = ParamPlan::PK::ClassShare;
    Plan.Slot = NextSlot++;
  } else if (Escaped.count(P)) {
    Plan.Kind = ParamPlan::PK::ScalarStorage;
    Plan.Slot = NextSlot++;
    Plan.ConvKind = convFor(P->type());
  } else {
    Plan.Kind = ParamPlan::PK::ScalarReg;
    Plan.Slot = allocTmp(); // Parameter registers precede temporaries.
    Plan.ConvKind = convFor(P->type());
  }
  if (Plan.Kind != ParamPlan::PK::ScalarReg)
    Bind[P] = {false, Plan.Slot};
  else
    Bind[P] = {true, Plan.Slot};
  return Plan;
}

void Compiler::beginFunction(FuncEntry &Entry, const FunctionDecl *FD,
                             bool IsCtor) {
  F = &Entry;
  Bind.clear();
  Escaped.clear();
  Scopes.clear();
  Loops.clear();
  DeadLocals.clear();
  PendingLocals.clear();
  Tmp = HighWater = NextSlot = 0;
  InGlobalInit = false;

  // Pre-pass: escapes and the full local-variable list.
  if (FD) {
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD))
      for (const CtorInitializer &Init : Ctor->initializers())
        for (size_t I = 0; I != Init.Args.size(); ++I) {
          // Reference parameters of the target ctor bind argument
          // lvalues (construct()'s EvalArgs).
          if (ctorParamIsRef(Init.TargetCtor, I))
            noteEscape(Init.Args[I]);
          analyzeExpr(Init.Args[I]);
        }
    if (FD->body())
      analyzeStmt(FD->body());
    for (const ParamDecl *P : FD->params())
      F->Params.push_back(planParam(P, IsCtor));
  }
  for (const VarDecl *V : PendingLocals)
    assignLocal(V);
  FirstTmp = Tmp;
}

void Compiler::finishFunction() {
  emit(Op::RetUnit);
  F->NumRegs = std::max<uint16_t>(HighWater, 1);
  F->NumLocals = NextSlot;
  // Every jump must have been patched.
  for (const Insn &I : F->Code)
    if ((I.Opcode == Op::Jmp || I.Opcode == Op::JmpF ||
         I.Opcode == Op::JmpT || I.Opcode == Op::JmpNMD) &&
        I.X == NoTarget)
      throw std::runtime_error("vm: unpatched jump");
  F = nullptr;
}

void Compiler::compileFunctions() {
  for (size_t I = 0; I != M.Functions.size(); ++I) {
    FuncEntry &E = M.Functions[I];
    const FunctionDecl *FD = E.Decl;
    if (!FD || E.IsBuiltin || !E.Defined)
      continue;
    beginFunction(E, FD, E.IsCtor);
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
      // construct(): virtual bases (most-derived only), non-virtual
      // bases, members in declaration order, then the body.
      const ClassDecl *CD = Ctor->parent();
      const ClassPlan &P = M.Classes[classIdx(CD)];
      uint16_t This = allocTmp();
      emit(Op::ThisOp, This, 0, 0, 0, 0,
           msg("'this' used outside a method")); // Never fails in a ctor.
      auto FindInit = [&](auto Pred) -> const CtorInitializer * {
        for (const CtorInitializer &Init : Ctor->initializers())
          if (Pred(Init))
            return &Init;
        return nullptr;
      };
      auto EmitCtorCall = [&](uint16_t ObjReg, uint32_t CI,
                              const CtorInitializer *Init, uint32_t Arity0,
                              bool MostDerived) {
        uint16_t SavedTmp = Tmp;
        uint16_t ArgBase = 0, Argc = 0;
        uint16_t CtorIdx16 = NoFunc16;
        if (Init) {
          const ConstructorDecl *Target = Init->TargetCtor;
          Argc = static_cast<uint16_t>(Init->Args.size());
          ArgBase = compileArgs(Init->Args, [&](size_t I) {
            return ctorParamIsRef(Target, I);
          });
          if (Target)
            CtorIdx16 = fn16(funcIdx(Target));
        } else if (Arity0 != NoFunc)
          CtorIdx16 = fn16(Arity0);
        emit(Op::CtorCall, ObjReg, ArgBase, Argc, MostDerived, CtorIdx16,
             CI);
        Tmp = SavedTmp;
      };
      if (!P.VBases.empty()) {
        size_t Skip = emit(Op::JmpNMD, 0, 0, 0, 0, 0, NoTarget);
        for (uint32_t VBI : P.VBases) {
          const ClassDecl *VB = M.Classes[VBI].Decl;
          const CtorInitializer *Init = FindInit(
              [&](const CtorInitializer &I) { return I.Base == VB; });
          EmitCtorCall(This, VBI, Init, M.Classes[VBI].Arity0Ctor, false);
        }
        patch(Skip);
      }
      for (uint32_t BI : P.NVBases) {
        const ClassDecl *Base = M.Classes[BI].Decl;
        const CtorInitializer *Init = FindInit(
            [&](const CtorInitializer &I) { return I.Base == Base; });
        EmitCtorCall(This, BI, Init, M.Classes[BI].Arity0Ctor, false);
      }
      for (const MemberPlan &MP : P.Members) {
        const CtorInitializer *Init = FindInit(
            [&](const CtorInitializer &I) { return I.Field == MP.Field; });
        uint16_t SavedTmp = Tmp;
        switch (MP.Kind) {
        case MemberPlan::MK::Class: {
          uint16_t FP = allocTmp();
          emit(Op::FieldPlace, FP, This,
               static_cast<uint16_t>(MP.SlotColor), fieldIdx(MP.Field), 0,
               msg("object has no storage for member '" +
                   MP.Field->name() + "'"));
          EmitCtorCall(FP, MP.ElemClassIdx, Init,
                       M.Classes[MP.ElemClassIdx].Arity0Ctor, true);
          break;
        }
        case MemberPlan::MK::ClassArray: {
          uint16_t FP = allocTmp();
          emit(Op::FieldPlace, FP, This,
               static_cast<uint16_t>(MP.SlotColor), fieldIdx(MP.Field), 0,
               msg("object has no storage for member '" +
                   MP.Field->name() + "'"));
          emit(Op::CtorElems, FP, 0, 0, 0, 0, MP.ElemClassIdx);
          break;
        }
        case MemberPlan::MK::Scalar:
        case MemberPlan::MK::Other:
          if (Init && !Init->Args.empty()) {
            uint16_t V = rval(Init->Args[0]);
            uint16_t FP = allocTmp();
            emit(Op::FieldPlace, FP, This,
                 static_cast<uint16_t>(MP.SlotColor), fieldIdx(MP.Field), 0,
                 msg("object has no storage for member '" +
                     MP.Field->name() + "'"));
            emit(Op::StoreAt, FP, V,
                 static_cast<uint16_t>(convFor(MP.Field->type())));
          }
          break;
        }
        Tmp = SavedTmp;
      }
      if (Ctor->body())
        compileCompound(Ctor->body());
    } else {
      compileCompound(FD->body());
    }
    finishFunction();
  }
}

void Compiler::compileGlobalInit() {
  M.Functions.push_back(FuncEntry{});
  M.GlobalInitIdx = static_cast<uint32_t>(M.Functions.size() - 1);
  FuncEntry &E = M.Functions[M.GlobalInitIdx];
  E.Defined = true;
  beginFunction(E, nullptr, false);
  InGlobalInit = true;
  // Global initializers may contain escapes of globals only; analyze to
  // keep the walker honest about nested constructs (no locals here).
  for (const VarDecl *GV : Ctx.globals())
    compileGlobalVarDecl(GV);
  finishFunction();
}

Module Compiler::compile() {
  indexFunctions();
  // Globals get their table indices before any body compiles: function
  // bodies reference them through GlobPtrPub.
  for (const VarDecl *GV : Ctx.globals()) {
    GlobalIdx.emplace(GV, static_cast<uint32_t>(M.Globals.size()));
    M.Globals.push_back(GV);
  }
  colorFields();
  buildClassPlans();
  compileFunctions();
  compileGlobalInit();
  return std::move(M);
}

//===----------------------------------------------------------------------===//
// Pre-pass: escapes and local bindings
//===----------------------------------------------------------------------===//

void Compiler::noteEscape(const Expr *E) {
  const Expr *S = stripCasts(E);
  if (const auto *DRE = dyn_cast<DeclRefExpr>(S))
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      Escaped.insert(V);
}

void Compiler::analyzeVarDecl(const VarDecl *V) {
  PendingLocals.push_back(V);
  if (V->type()->isReference() && V->init())
    noteEscape(V->init());
  if (V->init())
    analyzeExpr(V->init());
  const ConstructorDecl *Ctor = V->ctor();
  for (size_t I = 0; I != V->ctorArgs().size(); ++I) {
    if (ctorParamIsRef(Ctor, I))
      noteEscape(V->ctorArgs()[I]);
    analyzeExpr(V->ctorArgs()[I]);
  }
}

void Compiler::analyzeStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->stmts())
      analyzeStmt(Sub);
    break;
  case Stmt::Kind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->vars())
      analyzeVarDecl(V);
    break;
  case Stmt::Kind::Expr:
    analyzeExpr(cast<ExprStmt>(S)->expr());
    break;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    analyzeExpr(IS->cond());
    analyzeStmt(IS->thenStmt());
    analyzeStmt(IS->elseStmt());
    break;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    analyzeExpr(WS->cond());
    analyzeStmt(WS->body());
    break;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    analyzeStmt(FS->init());
    if (FS->cond())
      analyzeExpr(FS->cond());
    if (FS->step())
      analyzeExpr(FS->step());
    analyzeStmt(FS->body());
    break;
  }
  case Stmt::Kind::Return:
    if (const Expr *V = cast<ReturnStmt>(S)->value())
      analyzeExpr(V);
    break;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Null:
    break;
  }
}

void Compiler::analyzeExpr(const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOpKind::AddrOf)
      noteEscape(UE->sub());
    analyzeExpr(UE->sub());
    break;
  }
  case Expr::Kind::Call: {
    const auto *CE = cast<CallExpr>(E);
    const FunctionDecl *Callee = CE->directCallee();
    const FunctionType *FT = Callee ? nullptr : calleeFnType(CE);
    if (!Callee)
      analyzeExpr(CE->callee());
    else if (const auto *ME = dyn_cast<MemberExpr>(CE->callee()))
      analyzeExpr(ME->base());
    for (size_t I = 0; I != CE->args().size(); ++I) {
      if (callParamIsRef(Callee, FT, I))
        noteEscape(CE->args()[I]);
      analyzeExpr(CE->args()[I]);
    }
    break;
  }
  case Expr::Kind::New: {
    const auto *NE = cast<NewExpr>(E);
    if (NE->arraySize())
      analyzeExpr(NE->arraySize());
    const ConstructorDecl *Ctor = NE->constructor();
    for (size_t I = 0; I != NE->ctorArgs().size(); ++I) {
      if (ctorParamIsRef(Ctor, I))
        noteEscape(NE->ctorArgs()[I]);
      analyzeExpr(NE->ctorArgs()[I]);
    }
    break;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    analyzeExpr(BE->lhs());
    analyzeExpr(BE->rhs());
    break;
  }
  case Expr::Kind::Assign: {
    const auto *AE = cast<AssignExpr>(E);
    analyzeExpr(AE->lhs());
    analyzeExpr(AE->rhs());
    break;
  }
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    analyzeExpr(CE->cond());
    analyzeExpr(CE->thenExpr());
    analyzeExpr(CE->elseExpr());
    break;
  }
  case Expr::Kind::Comma: {
    const auto *CE = cast<CommaExpr>(E);
    analyzeExpr(CE->lhs());
    analyzeExpr(CE->rhs());
    break;
  }
  case Expr::Kind::Member:
    analyzeExpr(cast<MemberExpr>(E)->base());
    break;
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    analyzeExpr(MPA->base());
    analyzeExpr(MPA->pointer());
    break;
  }
  case Expr::Kind::Subscript: {
    const auto *SE = cast<SubscriptExpr>(E);
    analyzeExpr(SE->base());
    analyzeExpr(SE->index());
    break;
  }
  case Expr::Kind::Cast:
    analyzeExpr(cast<CastExpr>(E)->sub());
    break;
  case Expr::Kind::Delete:
    analyzeExpr(cast<DeleteExpr>(E)->sub());
    break;
  case Expr::Kind::Sizeof:
    if (const Expr *Sub = cast<SizeofExpr>(E)->exprOperand())
      analyzeExpr(Sub);
    break;
  default:
    break;
  }
}

void Compiler::assignLocal(const VarDecl *V) {
  if (Bind.count(V))
    return; // A VarDecl is bound once per function.
  const Type *Ty = V->type();
  bool Scalar = !Ty->isReference() && !Ty->asClassDecl() && !Ty->isArray();
  if (Scalar && !Escaped.count(V)) {
    Bind[V] = {true, allocTmp()};
  } else {
    if (NextSlot == 0xFFFF)
      throw std::runtime_error("vm: too many locals");
    Bind[V] = {false, NextSlot++};
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Compiler::emitScopeDestroys(size_t DownToDepth) {
  for (size_t S = Scopes.size(); S > DownToDepth; --S) {
    const std::vector<uint16_t> &Objs = Scopes[S - 1];
    for (auto It = Objs.rbegin(); It != Objs.rend(); ++It)
      emit(Op::DestroyLoc, *It);
  }
}

void Compiler::compileCompound(const CompoundStmt *CS) {
  Scopes.emplace_back();
  for (const Stmt *S : CS->stmts()) {
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *V : DS->vars()) {
        uint16_t SavedTmp = Tmp;
        compileVarDecl(V);
        Tmp = SavedTmp;
      }
      continue;
    }
    compileStmt(S);
  }
  emitScopeDestroys(Scopes.size() - 1);
  Scopes.pop_back();
}

void Compiler::compileStmt(const Stmt *S) {
  uint16_t SavedTmp = Tmp;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    compileCompound(cast<CompoundStmt>(S));
    break;
  case Stmt::Kind::Decl: {
    // execStmt's degenerate-block case: construct, then destroy at once.
    Scopes.emplace_back();
    for (const VarDecl *V : cast<DeclStmt>(S)->vars())
      compileVarDecl(V);
    emitScopeDestroys(Scopes.size() - 1);
    Scopes.pop_back();
    break;
  }
  case Stmt::Kind::Expr:
    rvalVoid(cast<ExprStmt>(S)->expr());
    break;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    size_t Else = emitCondBranch(IS->cond(), /*JumpOnTrue=*/false);
    compileStmt(IS->thenStmt());
    if (IS->elseStmt()) {
      size_t End = emit(Op::Jmp, 0, 0, 0, 0, 0, NoTarget);
      patch(Else);
      compileStmt(IS->elseStmt());
      patch(End);
    } else {
      patch(Else);
    }
    break;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    size_t CondLabel = here();
    size_t Exit = emitCondBranch(WS->cond(), /*JumpOnTrue=*/false);
    Tmp = SavedTmp;
    Loops.push_back({Scopes.size(), {}, {}});
    compileStmt(WS->body());
    emit(Op::Jmp, 0, 0, 0, 0, 0, static_cast<uint32_t>(CondLabel));
    Loop L = std::move(Loops.back());
    Loops.pop_back();
    patch(Exit);
    for (size_t P : L.BreakPatches)
      patch(P);
    for (size_t P : L.ContinuePatches)
      patchTo(P, CondLabel);
    break;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    Scopes.emplace_back(); // For-init objects outlive the loop body.
    if (FS->init()) {
      if (const auto *DS = dyn_cast<DeclStmt>(FS->init())) {
        for (const VarDecl *V : DS->vars())
          compileVarDecl(V);
      } else {
        compileStmt(FS->init());
      }
    }
    Tmp = SavedTmp;
    size_t CondLabel = here();
    size_t Exit = static_cast<size_t>(-1);
    if (FS->cond()) {
      Exit = emitCondBranch(FS->cond(), /*JumpOnTrue=*/false);
      Tmp = SavedTmp;
    }
    Loops.push_back({Scopes.size(), {}, {}});
    compileStmt(FS->body());
    size_t StepLabel = here();
    if (FS->step()) {
      rvalVoid(FS->step());
      Tmp = SavedTmp;
    }
    emit(Op::Jmp, 0, 0, 0, 0, 0, static_cast<uint32_t>(CondLabel));
    Loop L = std::move(Loops.back());
    Loops.pop_back();
    if (Exit != static_cast<size_t>(-1))
      patch(Exit);
    for (size_t P : L.BreakPatches)
      patch(P);
    for (size_t P : L.ContinuePatches)
      patchTo(P, StepLabel);
    // Loop exit: destroy for-init objects (execStmt's InitObjects).
    emitScopeDestroys(Scopes.size() - 1);
    Scopes.pop_back();
    break;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue: {
    if (Loops.empty()) {
      // Flow::Break/Continue with no enclosing loop escapes all the way
      // to callFunction: an early function exit yielding unit, with
      // every open block's objects destroyed on the way out.
      uint16_t V = loadConst(Value::unit(), Any);
      emitScopeDestroys(0);
      emit(Op::Ret, V);
      break;
    }
    emitScopeDestroys(Loops.back().ScopeDepth);
    size_t J = emit(Op::Jmp, 0, 0, 0, 0, 0, NoTarget);
    if (S->kind() == Stmt::Kind::Break)
      Loops.back().BreakPatches.push_back(J);
    else
      Loops.back().ContinuePatches.push_back(J);
    break;
  }
  case Stmt::Kind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    uint16_t V;
    if (RS->value())
      V = rval(RS->value());
    else
      V = loadConst(Value::unit(), Any);
    emitScopeDestroys(0);
    emit(Op::Ret, V);
    break;
  }
  case Stmt::Kind::Null:
    break;
  }
  Tmp = SavedTmp;
}

void Compiler::compileVarDecl(const VarDecl *V) {
  assignLocal(V); // No-op when the pre-pass already bound it.
  const Binding &B = Bind.at(V);
  const Type *Ty = V->type();

  if (Ty->isReference()) {
    if (!V->init()) {
      emitFail("reference variable '" + V->name() + "' lacks an initializer",
               allocTmp());
      return;
    }
    // The tree-walker binds the reference only after the place
    // evaluates; the initializer sees the variable as out of scope.
    DeadLocals.insert(V);
    uint16_t P = place(V->init());
    DeadLocals.erase(V);
    emit(Op::DeclRefVar, B.Idx, P);
    return;
  }

  if (const ClassDecl *CD = Ty->asClassDecl()) {
    uint16_t Obj = allocTmp();
    emit(Op::AllocObj, Obj, site16(V->location()),
         /*Gate=*/1, 0, 0, classIdx(CD));
    // execVarDecl binds the frame local before evaluating the
    // initializer or constructor arguments.
    emit(Op::LSet, B.Idx, Obj);
    if (V->init()) {
      uint16_t Src = rval(V->init());
      emit(Op::CopyInit, Obj, Src);
    } else {
      const ConstructorDecl *Ctor = V->ctor();
      uint16_t Argc = static_cast<uint16_t>(V->ctorArgs().size());
      uint16_t ArgBase = compileArgs(V->ctorArgs(), [&](size_t I) {
        return ctorParamIsRef(Ctor, I);
      });
      emit(Op::CtorCall, Obj, ArgBase, Argc, /*MostDerived=*/1,
           Ctor ? fn16(funcIdx(Ctor)) : NoFunc16, classIdx(CD));
    }
    Scopes.back().push_back(B.Idx);
    return;
  }

  if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    uint16_t Arr = allocTmp();
    emit(Op::ArrLocal, Arr, 0, 0, 0, 0,
         arrayDesc(AT->element(), AT->size(), V->location(), /*Gate=*/true));
    emit(Op::LSet, B.Idx, Arr);
    if (AT->element()->asClassDecl())
      Scopes.back().push_back(B.Idx);
    return;
  }

  uint16_t Init;
  Conv CK = Conv::None;
  if (V->init()) {
    DeadLocals.insert(V); // Bound only after the initializer evaluates.
    CK = convFor(Ty);
    if (B.InReg && CK == Conv::Int && fastIntOperand(V->init())) {
      // Exactly-Int initializer: skip the identity ConvOp and land in
      // the home register directly (the variable is dead during its
      // own initializer, so no instruction can read the register
      // before the final write).
      rvalInto(V->init(), B.Idx);
      DeadLocals.erase(V);
      return;
    }
    Init = rval(V->init());
    DeadLocals.erase(V);
  } else {
    Init = loadConst(zeroValue(Ty), Any);
  }
  if (B.InReg) {
    emit(Op::ConvOp, B.Idx, Init, static_cast<uint16_t>(CK));
  } else {
    emit(Op::DeclScalar, B.Idx, Init, static_cast<uint16_t>(CK));
  }
}

void Compiler::compileGlobalVarDecl(const VarDecl *V) {
  uint16_t SavedTmp = Tmp;
  uint32_t GI = GlobalIdx.at(V);
  const Type *Ty = V->type();

  if (Ty->isReference()) {
    if (!V->init()) {
      emitFail("reference variable '" + V->name() + "' lacks an initializer",
               allocTmp());
      Tmp = SavedTmp;
      return;
    }
    uint16_t P = place(V->init());
    emit(Op::GDeclRef, static_cast<uint16_t>(GI), P);
    emit(Op::GPublish, static_cast<uint16_t>(GI));
    Tmp = SavedTmp;
    return;
  }

  if (const ClassDecl *CD = Ty->asClassDecl()) {
    uint16_t Obj = allocTmp();
    emit(Op::AllocObj, Obj, site16(V->location()),
         /*Gate=*/1, 0, 0, classIdx(CD));
    // execVarDecl binds the frame local before evaluating the
    // initializer; the global-frame analog is the unpublished binding.
    emit(Op::GBind, static_cast<uint16_t>(GI), Obj);
    if (V->init()) {
      uint16_t Src = rval(V->init());
      emit(Op::CopyInit, Obj, Src);
    } else {
      const ConstructorDecl *Ctor = V->ctor();
      uint16_t Argc = static_cast<uint16_t>(V->ctorArgs().size());
      uint16_t ArgBase = compileArgs(V->ctorArgs(), [&](size_t I) {
        return ctorParamIsRef(Ctor, I);
      });
      emit(Op::CtorCall, Obj, ArgBase, Argc, /*MostDerived=*/1,
           Ctor ? fn16(funcIdx(Ctor)) : NoFunc16, classIdx(CD));
    }
    emit(Op::GPublish, static_cast<uint16_t>(GI));
    emit(Op::GMarkObj, Obj);
    Tmp = SavedTmp;
    return;
  }

  if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    uint16_t Arr = allocTmp();
    emit(Op::ArrLocal, Arr, 0, 0, 0, 0,
         arrayDesc(AT->element(), AT->size(), V->location(), /*Gate=*/true));
    emit(Op::GBind, static_cast<uint16_t>(GI), Arr);
    emit(Op::GPublish, static_cast<uint16_t>(GI));
    if (AT->element()->asClassDecl())
      emit(Op::GMarkObj, Arr);
    Tmp = SavedTmp;
    return;
  }

  uint16_t Init;
  Conv CK = Conv::None;
  if (V->init()) {
    Init = rval(V->init());
    CK = convFor(Ty);
  } else {
    Init = loadConst(zeroValue(Ty), Any);
  }
  emit(Op::GDeclScalar, static_cast<uint16_t>(GI), Init,
       static_cast<uint16_t>(CK));
  emit(Op::GPublish, static_cast<uint16_t>(GI));
  Tmp = SavedTmp;
}

//===----------------------------------------------------------------------===//
// Lvalues
//===----------------------------------------------------------------------===//

uint16_t Compiler::emitFail(const std::string &Message, uint16_t Dst) {
  emit(Op::Fail, 0, 0, 0, 0, 0, msg(Message));
  return Dst;
}

uint16_t Compiler::objectBase(const Expr *Base, bool IsArrow) {
  // evalObjectBase; the checks validate in place without mutating, so
  // the checked register doubles as the place result.
  if (IsArrow) {
    uint16_t R = rval(Base);
    emit(Op::ArrowChk, R);
    return R;
  }
  if (Base->isLValue())
    return place(Base);
  uint16_t R = rval(Base);
  emit(Op::DotChk, R);
  return R;
}

uint16_t Compiler::place(const Expr *E, uint16_t Dst) {
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    Decl *D = DRE->referent();
    if (auto *V = dyn_cast_or_null<VarDecl>(D)) {
      if (DeadLocals.count(V))
        return emitFail("variable '" + V->name() +
                            "' is not in scope at run time",
                        target(Dst));
      auto It = Bind.find(V);
      if (It != Bind.end()) {
        if (It->second.InReg)
          // Escape analysis storage-backs every address-carrying use;
          // reaching here means the analysis missed a case.
          throw std::runtime_error("vm: lvalue use of register local");
        uint16_t R = target(Dst);
        emit(Op::LocPtr, R, It->second.Idx);
        return R;
      }
      if (V->isGlobal()) {
        uint16_t R = target(Dst);
        emit(InGlobalInit ? Op::GlobPtr : Op::GlobPtrPub, R,
             static_cast<uint16_t>(GlobalIdx.at(V)), 0, 0, 0,
             msg("global '" + V->name() + "' used before initialization"));
        return R;
      }
      return emitFail("variable '" + V->name() +
                          "' is not in scope at run time",
                      target(Dst));
    }
    if (auto *Field = dyn_cast_or_null<FieldDecl>(D)) {
      uint16_t R = target(Dst);
      emit(Op::ThisOp, R, 0, 0, 0, 0,
           msg("member '" + Field->name() + "' used outside a method"));
      auto It = M.FieldColor.find(Field);
      uint16_t Color =
          It == M.FieldColor.end() ? 0xFFFF
                                   : static_cast<uint16_t>(It->second);
      emit(Op::FieldPlace, R, R, Color, fieldIdx(Field), 0,
           msg("object has no storage for member '" + Field->name() + "'"));
      return R;
    }
    return emitFail("cannot take the location of '" + DRE->declName() + "'",
                    target(Dst));
  }
  case Expr::Kind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    const auto *Field = dyn_cast_or_null<FieldDecl>(ME->member());
    if (!Field)
      return emitFail("member expression does not name a data member",
                      target(Dst));
    uint16_t Base = objectBase(ME->base(), ME->isArrow());
    auto It = M.FieldColor.find(Field);
    uint16_t Color = It == M.FieldColor.end()
                         ? 0xFFFF
                         : static_cast<uint16_t>(It->second);
    uint16_t R = target(Dst);
    emit(Op::FieldPlace, R, Base, Color, fieldIdx(Field), 0,
         msg("object has no storage for member '" + Field->name() + "'"));
    return R;
  }
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    uint16_t Base = objectBase(MPA->base(), MPA->isArrow());
    uint16_t PM = rval(MPA->pointer());
    uint16_t R = target(Dst);
    emit(Op::MemPtrPlace, R, Base, PM);
    return R;
  }
  case Expr::Kind::Subscript: {
    // evalLValue: index first, then base.
    const auto *SE = cast<SubscriptExpr>(E);
    uint16_t Idx = rval(SE->index());
    const Type *BaseTy = SE->base()->type();
    uint16_t R = target(Dst);
    if (BaseTy && BaseTy->isArray()) {
      uint16_t Arr = place(SE->base());
      emit(Op::IdxArr, R, Arr, Idx);
    } else {
      uint16_t P = rval(SE->base());
      emit(Op::IdxPtr, R, P, Idx);
    }
    return R;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOpKind::Deref) {
      // evalLValue: "dereference of null pointer" when the operand is
      // not a live pointer value.
      uint16_t V = rval(UE->sub());
      uint16_t R = target(Dst);
      emit(Op::DerefP, R, V);
      return R;
    }
    if (UE->op() == UnaryOpKind::PreInc || UE->op() == UnaryOpKind::PreDec) {
      // evalLValue: perform the side effect, then re-evaluate the
      // operand as an lvalue (the interpreter's double evaluation).
      rval(E);
      return place(UE->sub(), Dst);
    }
    return emitFail("expression is not an lvalue", target(Dst));
  }
  case Expr::Kind::Cast:
    return place(cast<CastExpr>(E)->sub(), Dst);
  case Expr::Kind::This: {
    uint16_t R = target(Dst);
    emit(Op::ThisOp, R, 0, 0, 0, 0, msg("'this' used outside a method"));
    return R;
  }
  default:
    return emitFail("expression is not an lvalue", target(Dst));
  }
}

//===----------------------------------------------------------------------===//
// Rvalues
//===----------------------------------------------------------------------===//

bool Compiler::containsWrite(const Expr *E) {
  if (!E)
    return false;
  switch (E->kind()) {
  case Expr::Kind::Assign:
    return true;
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    switch (UE->op()) {
    case UnaryOpKind::PreInc:
    case UnaryOpKind::PreDec:
    case UnaryOpKind::PostInc:
    case UnaryOpKind::PostDec:
      return true;
    default:
      return containsWrite(UE->sub());
    }
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    return containsWrite(BE->lhs()) || containsWrite(BE->rhs());
  }
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    return containsWrite(CE->cond()) || containsWrite(CE->thenExpr()) ||
           containsWrite(CE->elseExpr());
  }
  case Expr::Kind::Comma: {
    const auto *CE = cast<CommaExpr>(E);
    return containsWrite(CE->lhs()) || containsWrite(CE->rhs());
  }
  case Expr::Kind::Member:
    return containsWrite(cast<MemberExpr>(E)->base());
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    return containsWrite(MPA->base()) || containsWrite(MPA->pointer());
  }
  case Expr::Kind::Subscript: {
    const auto *SE = cast<SubscriptExpr>(E);
    return containsWrite(SE->base()) || containsWrite(SE->index());
  }
  case Expr::Kind::Cast:
    return containsWrite(cast<CastExpr>(E)->sub());
  case Expr::Kind::Call: {
    // The callee body cannot touch this frame's registers (register
    // residency implies the local never escapes), but argument and
    // callee expressions evaluate in this frame.
    const auto *CE = cast<CallExpr>(E);
    if (containsWrite(CE->callee()))
      return true;
    for (const Expr *Arg : CE->args())
      if (containsWrite(Arg))
        return true;
    return false;
  }
  case Expr::Kind::New: {
    const auto *NE = cast<NewExpr>(E);
    if (NE->arraySize() && containsWrite(NE->arraySize()))
      return true;
    for (const Expr *Arg : NE->ctorArgs())
      if (containsWrite(Arg))
        return true;
    return false;
  }
  case Expr::Kind::Delete:
    return containsWrite(cast<DeleteExpr>(E)->sub());
  case Expr::Kind::Sizeof:
    return false; // The operand is never evaluated.
  default:
    return false; // Literals, DeclRef, This, MemberPointerConstant.
  }
}

bool Compiler::fastIntOperand(const Expr *E) {
  if (!isIntType(E->type()))
    return false;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::Sizeof: // Compiles to a LoadK of ofInt.
    return true;
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent());
    if (!V || DeadLocals.count(V))
      return false;
    auto It = Bind.find(V);
    // Register residency guarantees Value::VK::Int: every write goes
    // through Conv::Int and the register can never be type-punned.
    return It != Bind.end() && It->second.InReg && isIntType(V->type());
  }
  case Expr::Kind::Cast:
    // An int cast compiles to ConvOp(Conv::Int), which yields VK::Int
    // no matter what runtime kind the operand carries.
    return cast<CastExpr>(E)->targetType()->isArithmetic();
  case Expr::Kind::Binary: {
    // Int-typed arithmetic over fast operands stays on ofInt paths in
    // both the specialized handlers and the generic binaryOp (the two
    // operand kinds are statically Int). Calls are the one form that
    // can smuggle a non-Int kind into an int-typed slot (neither
    // engine converts return values), and they are excluded here by
    // construction.
    const auto *BE = cast<BinaryExpr>(E);
    switch (BE->op()) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
    case BinaryOpKind::Mul:
    case BinaryOpKind::Div:
    case BinaryOpKind::Rem:
    case BinaryOpKind::Shl:
    case BinaryOpKind::Shr:
    case BinaryOpKind::BitAnd:
    case BinaryOpKind::BitOr:
    case BinaryOpKind::BitXor:
      return fastIntOperand(BE->lhs()) && fastIntOperand(BE->rhs());
    default:
      return false; // Comparisons/logical ops are bool-typed anyway.
    }
  }
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    return fastIntOperand(CE->thenExpr()) &&
           fastIntOperand(CE->elseExpr());
  }
  case Expr::Kind::Comma:
    return fastIntOperand(cast<CommaExpr>(E)->rhs());
  case Expr::Kind::Assign:
    // A plain int assignment yields the Conv::Int-converted stored
    // value (both the register ConvOp/Move path and the StoreAt+RawV
    // path). Compound assignment yields the *unconverted* new value —
    // not guaranteed Int — so only the plain form qualifies.
    return cast<AssignExpr>(E)->op() == AssignOpKind::Assign;
  default:
    return false;
  }
}

bool Compiler::isPureOperand(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::DoubleLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::CharLiteral:
  case Expr::Kind::NullptrLiteral:
  case Expr::Kind::MemberPointerConstant:
  case Expr::Kind::Sizeof: // The operand is never evaluated.
    return true;
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (dyn_cast_or_null<FunctionDecl>(DRE->referent()))
      return true; // Compiles to a constant load.
    const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent());
    if (!V || DeadLocals.count(V))
      return false; // Dead locals fail observably.
    auto It = Bind.find(V);
    // Register reads are unattributed; storage loads record a read.
    return It != Bind.end() && It->second.InReg;
  }
  default:
    return false;
  }
}

uint16_t Compiler::rvalA(const Expr *E) {
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      if (!DeadLocals.count(V)) {
        auto It = Bind.find(V);
        if (It != Bind.end() && It->second.InReg)
          return It->second.Idx;
      }
  return rval(E);
}

void Compiler::rvalVoid(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Assign:
    compileAssign(cast<AssignExpr>(E), Any, /*NeedResult=*/false);
    return;
  case Expr::Kind::Comma: {
    const auto *CE = cast<CommaExpr>(E);
    rvalVoid(CE->lhs());
    rvalVoid(CE->rhs());
    return;
  }
  default:
    rval(E);
  }
}

uint16_t Compiler::rval(const Expr *E, uint16_t Dst) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return loadConst(Value::ofInt(cast<IntLiteralExpr>(E)->value()), Dst);
  case Expr::Kind::DoubleLiteral:
    return loadConst(Value::ofDouble(cast<DoubleLiteralExpr>(E)->value()),
                     Dst);
  case Expr::Kind::BoolLiteral:
    return loadConst(Value::ofBool(cast<BoolLiteralExpr>(E)->value()), Dst);
  case Expr::Kind::CharLiteral:
    return loadConst(Value::ofChar(cast<CharLiteralExpr>(E)->value()), Dst);
  case Expr::Kind::NullptrLiteral:
    return loadConst(Value::nullPtr(), Dst);
  case Expr::Kind::StringLiteral: {
    const auto *SE = cast<StringLiteralExpr>(E);
    auto [It, Fresh] = StrSiteIdx.try_emplace(SE, 0);
    if (Fresh) {
      It->second = static_cast<uint32_t>(M.StringSites.size());
      M.StringSites.push_back(SE);
    }
    uint16_t R = target(Dst);
    emit(Op::Str, R, 0, 0, 0, 0, It->second);
    return R;
  }
  case Expr::Kind::This: {
    uint16_t R = target(Dst);
    emit(Op::ThisOp, R, 0, 0, 0, 0, msg("'this' used outside a method"));
    return R;
  }
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent()))
      return loadConst(Value::ofFn(Fn), Dst);
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      if (!DeadLocals.count(V)) {
        auto It = Bind.find(V);
        if (It != Bind.end()) {
          uint16_t R = target(Dst);
          if (It->second.InReg)
            emit(Op::Move, R, It->second.Idx);
          else
            emit(Op::LdLoc, R, It->second.Idx);
          return R;
        }
      }
    // Implicit-this members fuse the slot lookup and the load (LdFld
    // preserves FieldPlace's check-then-fail order exactly).
    if (const auto *Field = dyn_cast_or_null<FieldDecl>(DRE->referent())) {
      uint16_t R = target(Dst);
      emit(Op::ThisOp, R, 0, 0, 0, 0,
           msg("member '" + Field->name() + "' used outside a method"));
      emit(Op::LdFld, R, R, fieldColor(Field), fieldIdx(Field), 0,
           msg("object has no storage for member '" + Field->name() +
               "'"));
      return R;
    }
    // Globals, dead locals: the place path emits the storage lookup
    // (or the exact failure); then loadOrDecay.
    uint16_t P = place(E);
    uint16_t R = target(Dst);
    emit(Op::Decay, R, P);
    return R;
  }
  case Expr::Kind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    if (const auto *Field = dyn_cast_or_null<FieldDecl>(ME->member())) {
      uint16_t Base = objectBase(ME->base(), ME->isArrow());
      uint16_t R = target(Dst);
      emit(Op::LdFld, R, Base, fieldColor(Field), fieldIdx(Field), 0,
           msg("object has no storage for member '" + Field->name() +
               "'"));
      return R;
    }
    uint16_t P = place(E);
    uint16_t R = target(Dst);
    emit(Op::Decay, R, P);
    return R;
  }
  case Expr::Kind::MemberPointerAccess:
  case Expr::Kind::Subscript: {
    uint16_t P = place(E);
    uint16_t R = target(Dst);
    emit(Op::Decay, R, P);
    return R;
  }
  case Expr::Kind::MemberPointerConstant:
    return loadConst(
        Value::ofMemberPtr(cast<MemberPointerConstantExpr>(E)->member()),
        Dst);
  case Expr::Kind::Unary:
    return compileUnary(cast<UnaryExpr>(E), Dst);
  case Expr::Kind::Binary:
    return compileBinary(cast<BinaryExpr>(E), Dst);
  case Expr::Kind::Assign:
    return compileAssign(cast<AssignExpr>(E), Dst, /*NeedResult=*/true);
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    uint16_t R = target(Dst);
    size_t Else = emitCondBranch(CE->cond(), /*JumpOnTrue=*/false);
    rvalInto(CE->thenExpr(), R);
    size_t End = emit(Op::Jmp, 0, 0, 0, 0, 0, NoTarget);
    patch(Else);
    rvalInto(CE->elseExpr(), R);
    patch(End);
    return R;
  }
  case Expr::Kind::Comma:
    rvalVoid(cast<CommaExpr>(E)->lhs());
    return rval(cast<CommaExpr>(E)->rhs(), Dst);
  case Expr::Kind::Call:
    return compileCall(cast<CallExpr>(E), Dst);
  case Expr::Kind::New:
    return compileNew(cast<NewExpr>(E), Dst);
  case Expr::Kind::Delete: {
    const auto *DE = cast<DeleteExpr>(E);
    uint16_t V = deallocArg(DE->sub());
    emit(Op::DeleteOp, V, DE->isArrayDelete() ? 1 : 0);
    return loadConst(Value::unit(), Dst);
  }
  case Expr::Kind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    const Type *Ty = CE->targetType();
    if (Ty->isArithmetic()) {
      uint16_t V = rvalA(CE->sub());
      uint16_t R = target(Dst);
      emit(Op::ConvOp, R, V,
           static_cast<uint16_t>(convFor(Ty)));
      return R;
    }
    if (Ty->isPointer()) {
      uint16_t V = rvalA(CE->sub());
      uint16_t R = target(Dst);
      emit(Op::CastPtr, R, V);
      return R;
    }
    return rval(CE->sub(), Dst); // Value-preserving cast.
  }
  case Expr::Kind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    const Type *Ty =
        SE->typeOperand() ? SE->typeOperand() : SE->exprOperand()->type();
    return loadConst(
        Value::ofInt(static_cast<long long>(Layout.sizeOf(Ty))), Dst);
  }
  }
  return emitFail("unhandled expression kind in evaluator", target(Dst));
}

uint16_t Compiler::compileUnary(const UnaryExpr *E, uint16_t Dst) {
  switch (E->op()) {
  case UnaryOpKind::Minus: {
    uint16_t V = rvalA(E->sub());
    uint16_t R = target(Dst);
    emit(Op::Neg, R, V);
    return R;
  }
  case UnaryOpKind::Not: {
    uint16_t V = rvalA(E->sub());
    uint16_t R = target(Dst);
    emit(Op::NotOp, R, V);
    return R;
  }
  case UnaryOpKind::BitNot: {
    uint16_t V = rvalA(E->sub());
    uint16_t R = target(Dst);
    emit(Op::BitNot, R, V);
    return R;
  }
  case UnaryOpKind::Deref: {
    uint16_t P = place(E); // rval(sub) + DerefP
    uint16_t R = target(Dst);
    emit(Op::Decay, R, P);
    return R;
  }
  case UnaryOpKind::AddrOf: {
    const Expr *Sub = E->sub();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(Sub))
      if (auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent()))
        return loadConst(Value::ofFn(Fn), Dst);
    // evalUnary keeps array provenance for `&arr[i]`: base first, then
    // index (the reverse of the plain-subscript lvalue order).
    if (const auto *SE = dyn_cast<SubscriptExpr>(Sub)) {
      const Type *BaseTy = SE->base()->type();
      if (BaseTy && BaseTy->isArray()) {
        uint16_t Arr = place(SE->base());
        uint16_t Idx = rvalA(SE->index());
        uint16_t R = target(Dst);
        emit(Op::AddrIdxA, R, Arr, Idx);
        return R;
      }
      uint16_t Base = rval(SE->base());
      emit(Op::ChkSub, Base); // Non-pointer check precedes the index.
      uint16_t Idx = rvalA(SE->index());
      uint16_t R = target(Dst);
      emit(Op::AddrIdxP, R, Base, Idx);
      return R;
    }
    uint16_t P = place(Sub);
    emit(Op::AddrTake, P);
    if (Dst != Any && Dst != P) {
      emit(Op::Move, Dst, P);
      return Dst;
    }
    return P;
  }
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostInc:
  case UnaryOpKind::PostDec:
    return compileIncDec(E, Dst);
  }
  return emitFail("unhandled unary operator", target(Dst));
}

uint16_t Compiler::compileIncDec(const UnaryExpr *E, uint16_t Dst) {
  bool Inc =
      E->op() == UnaryOpKind::PreInc || E->op() == UnaryOpKind::PostInc;
  bool Pre =
      E->op() == UnaryOpKind::PreInc || E->op() == UnaryOpKind::PreDec;
  uint16_t Bits = static_cast<uint16_t>((Inc ? 1 : 0) | (Pre ? 2 : 0));
  uint16_t CK = static_cast<uint16_t>(convFor(E->sub()->type()));
  if (const auto *DRE = dyn_cast<DeclRefExpr>(stripCasts(E->sub())))
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      if (!DeadLocals.count(V)) {
        auto It = Bind.find(V);
        if (It != Bind.end() && It->second.InReg) {
          uint16_t R = target(Dst);
          emit(Op::IncDecR, R, It->second.Idx, Bits, CK);
          return R;
        }
      }
  uint16_t P = place(E->sub());
  uint16_t R = target(Dst);
  emit(Op::IncDec, R, P, Bits, CK);
  return R;
}

uint16_t Compiler::compileBinary(const BinaryExpr *E, uint16_t Dst) {
  BinaryOpKind OpK = E->op();
  if (OpK == BinaryOpKind::LAnd || OpK == BinaryOpKind::LOr) {
    uint16_t R = target(Dst);
    size_t Short = emitCondBranch(E->lhs(), OpK == BinaryOpKind::LOr);
    uint16_t V = rvalA(E->rhs());
    emit(Op::BoolOp, R, V);
    size_t End = emit(Op::Jmp, 0, 0, 0, 0, 0, NoTarget);
    patch(Short);
    loadConst(Value::ofBool(OpK == BinaryOpKind::LOr), R);
    patch(End);
    return R;
  }

  // Fast path: both operands are statically VK::Int, so the generic
  // kind dispatch (pointers, doubles, member pointers) is excluded and
  // a literal rhs can fold into the instruction's constant operand.
  if (fastIntOperand(E->lhs()) && fastIntOperand(E->rhs())) {
    switch (OpK) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
    case BinaryOpKind::Mul:
    case BinaryOpKind::Div:
    case BinaryOpKind::Rem: {
      // The lhs result may share a home register only when the rhs
      // cannot write one (`x + (x = 2)` must see the old x).
      uint16_t L =
          containsWrite(E->rhs()) ? rval(E->lhs()) : rvalA(E->lhs());
      uint16_t Rr = 0, ConstF = 0;
      uint32_t X = 0;
      if (const auto *IL = dyn_cast<IntLiteralExpr>(E->rhs())) {
        ConstF = 1;
        X = internConst(Value::ofInt(IL->value()));
      } else {
        Rr = rvalA(E->rhs());
      }
      uint16_t R = target(Dst);
      if (OpK == BinaryOpKind::Add)
        emit(Op::AddII, R, L, ConstF, Rr,
             Config.FaultAddOffByOne ? 1 : 0, X);
      else if (OpK == BinaryOpKind::Sub)
        emit(Op::SubII, R, L, ConstF, Rr, 0, X);
      else if (OpK == BinaryOpKind::Mul)
        emit(Op::MulII, R, L, ConstF, Rr, 0, X);
      else if (OpK == BinaryOpKind::Div)
        emit(Op::DivII, R, L, ConstF, Rr, 0, X);
      else
        emit(Op::RemII, R, L, ConstF, Rr, 0, X);
      return R;
    }
    default:
      if (int Code = cmpCode(OpK); Code >= 0) {
        uint16_t L =
            containsWrite(E->rhs()) ? rval(E->lhs()) : rvalA(E->lhs());
        uint16_t Rr = 0, ConstF = 0;
        uint32_t X = 0;
        if (const auto *IL = dyn_cast<IntLiteralExpr>(E->rhs())) {
          ConstF = 1;
          X = internConst(Value::ofInt(IL->value()));
        } else {
          Rr = rvalA(E->rhs());
        }
        uint16_t R = target(Dst);
        emit(Op::CmpII, R, L, static_cast<uint16_t>(Code), Rr, ConstF, X);
        return R;
      }
      break; // Shifts/bitwise: generic path.
    }
  }

  // The lhs may only alias a home register when evaluating the rhs
  // cannot write one (`x + (x = 2)` must see the old x).
  uint16_t L = containsWrite(E->rhs()) ? rval(E->lhs()) : rvalA(E->lhs());
  uint16_t Rr = rvalA(E->rhs());
  uint16_t R = target(Dst);
  emit(Op::Bin, R, L, static_cast<uint16_t>(OpK), Rr);
  return R;
}

size_t Compiler::emitCondBranch(const Expr *Cond, bool JumpOnTrue) {
  // Look through arithmetic casts: a comparison yields only 0/1, and
  // every arithmetic conversion preserves 0/1 truthiness, so branching
  // on the raw comparison matches asBool of the casted value. (Pointer
  // casts stay: they can fail at run time.)
  const Expr *Stripped = Cond;
  while (const auto *CE = dyn_cast<CastExpr>(Stripped)) {
    if (!CE->targetType()->isArithmetic())
      break;
    Stripped = CE->sub();
  }
  if (const auto *BE = dyn_cast<BinaryExpr>(Stripped)) {
    int Code = cmpCode(BE->op());
    if (Code >= 0 && fastIntOperand(BE->lhs()) &&
        fastIntOperand(BE->rhs())) {
      uint16_t L = containsWrite(BE->rhs()) ? rval(BE->lhs())
                                            : rvalA(BE->lhs());
      uint16_t Flags = JumpOnTrue ? 1 : 0;
      uint16_t Rhs = 0;
      const auto *IL = dyn_cast<IntLiteralExpr>(BE->rhs());
      uint32_t CIdx = IL ? internConst(Value::ofInt(IL->value())) : 0;
      // The X operand holds the branch target, so a folded constant
      // must fit the 16-bit D operand as a pool index.
      if (IL && CIdx <= 0xFFFF) {
        Rhs = static_cast<uint16_t>(CIdx);
        Flags |= 2;
      } else {
        Rhs = rvalA(BE->rhs());
      }
      return emit(Op::JmpCmpII, L, 0, static_cast<uint16_t>(Code), Rhs,
                  Flags, NoTarget);
    }
  }
  uint16_t C = rvalA(Cond);
  return emit(JumpOnTrue ? Op::JmpT : Op::JmpF, C, 0, 0, 0, 0, NoTarget);
}

uint16_t Compiler::compileAssign(const AssignExpr *E, uint16_t Dst,
                                 bool NeedResult) {
  const Type *LHSTy = E->lhs()->type();

  // evalAssign: class assignment is a memberwise copy returning Src.
  if (LHSTy && LHSTy->asClassDecl()) {
    uint16_t P = place(E->lhs());
    uint16_t Src = rval(E->rhs());
    emit(Op::CopyAsgn, Src, P, Src); // R[A]=R[C] is a self-move here.
    if (NeedResult && Dst != Any && Dst != Src) {
      emit(Op::Move, Dst, Src);
      return Dst;
    }
    return Src;
  }

  const VarDecl *RegVar = nullptr;
  uint16_t Home = 0;
  if (const auto *DRE = dyn_cast<DeclRefExpr>(stripCasts(E->lhs())))
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      if (!DeadLocals.count(V)) {
        auto It = Bind.find(V);
        if (It != Bind.end() && It->second.InReg) {
          RegVar = V;
          Home = It->second.Idx;
        }
      }
  uint16_t CK = static_cast<uint16_t>(convFor(LHSTy));

  if (E->op() == AssignOpKind::Assign) {
    if (RegVar) {
      if (static_cast<Conv>(CK) == Conv::Int && fastIntOperand(E->rhs())) {
        // The rhs lands as exactly VK::Int, for which Conv::Int is the
        // identity: compile straight into the home register. Safe
        // against self-reference (`x = x + 1`): every instruction
        // reads its operands before writing its destination, and only
        // the final instruction of each control path targets Home.
        rvalInto(E->rhs(), Home);
      } else {
        uint16_t V = rvalA(E->rhs());
        emit(Op::ConvOp, Home, V, CK);
      }
      if (!NeedResult)
        return Home;
      // The result is the converted stored value (tree: Dst->V).
      uint16_t R = target(Dst);
      emit(Op::Move, R, Home);
      return R;
    }
    // Member stores whose rhs cannot produce an observable effect fuse
    // FieldPlace+StoreAt into StFld (the storage check moves after the
    // rhs evaluates, which such an rhs cannot tell apart).
    if (!NeedResult && isPureOperand(E->rhs())) {
      const Expr *L = stripCasts(E->lhs());
      const FieldDecl *Field = nullptr;
      uint16_t Base = 0;
      bool Fuse = false;
      if (const auto *ME = dyn_cast<MemberExpr>(L)) {
        if ((Field = dyn_cast_or_null<FieldDecl>(ME->member()))) {
          Base = objectBase(ME->base(), ME->isArrow());
          Fuse = true;
        }
      } else if (const auto *DRE = dyn_cast<DeclRefExpr>(L)) {
        if ((Field = dyn_cast_or_null<FieldDecl>(DRE->referent()))) {
          Base = allocTmp();
          emit(Op::ThisOp, Base, 0, 0, 0, 0,
               msg("member '" + Field->name() + "' used outside a method"));
          Fuse = true;
        }
      }
      if (Fuse) {
        uint16_t V = rvalA(E->rhs());
        emit(Op::StFld, V, Base, fieldColor(Field), fieldIdx(Field), CK,
             msg("object has no storage for member '" + Field->name() +
                 "'"));
        return V;
      }
    }
    uint16_t P = place(E->lhs());
    uint16_t V = rvalA(E->rhs());
    emit(Op::StoreAt, P, V, CK);
    if (!NeedResult)
      return P;
    uint16_t R = target(Dst);
    emit(Op::RawV, R, P); // Using the result is not a read (evalAssign).
    return R;
  }

  // Compound assignment: load old (attributed), evaluate rhs, compute,
  // store converted, yield the unconverted new value.
  if (RegVar) {
    uint16_t Old = Home;
    if (containsWrite(E->rhs())) {
      Old = allocTmp(); // `x += (x = 3)` must combine with the old x.
      emit(Op::Move, Old, Home);
    }
    uint16_t V = rvalA(E->rhs());
    uint16_t R = target(Dst);
    emit(Op::CompoundR, R, Home, Old, V,
         static_cast<uint16_t>(E->op()), CK);
    return R;
  }
  uint16_t P = place(E->lhs());
  uint16_t Old = allocTmp();
  emit(Op::LoadSc, Old, P);
  uint16_t V = rvalA(E->rhs());
  uint16_t R = target(Dst);
  emit(Op::Compound, R, P, Old, V, static_cast<uint16_t>(E->op()), CK);
  return R;
}

uint16_t Compiler::compileCall(const CallExpr *Call, uint16_t Dst) {
  const FunctionDecl *Callee = Call->directCallee();

  if (Callee) {
    uint16_t ThisReg = 0;
    bool HasThis = false;
    if (const auto *Method = dyn_cast<MethodDecl>(Callee)) {
      // evalCall: receiver from the member expression, or the current
      // frame's `this` for unqualified method calls.
      if (const auto *ME = dyn_cast<MemberExpr>(Call->callee())) {
        ThisReg = objectBase(ME->base(), ME->isArrow());
      } else {
        ThisReg = allocTmp();
        emit(Op::ThisOp, ThisReg, 0, 0, 0, 0,
             msg("method call without receiver object"));
      }
      HasThis = true;
      if (Call->isVirtualCall()) {
        // Dispatch resolves before the arguments evaluate.
        VCallSite Site;
        Site.Method = Method;
        Site.FailMsg =
            "virtual dispatch failed for '" + Method->qualifiedName() + "'";
        M.VSites.push_back(Site);
        uint16_t FnIdxReg = allocTmp();
        emit(Op::VDisp, FnIdxReg, ThisReg, 0, 0, 0,
             static_cast<uint32_t>(M.VSites.size() - 1));
        uint16_t Argc = static_cast<uint16_t>(Call->args().size());
        uint16_t ArgBase = compileArgs(Call->args(), [&](size_t I) {
          return callParamIsRef(Callee, nullptr, I);
        });
        uint16_t R = target(Dst);
        emit(Op::CallV, R, ArgBase, Argc, ThisReg, FnIdxReg, 0);
        return R;
      }
    }
    bool IsFree = Callee->builtinKind() == BuiltinKind::Free;
    uint16_t Argc = static_cast<uint16_t>(Call->args().size());
    uint16_t ArgBase = compileArgs(
        Call->args(),
        [&](size_t I) { return callParamIsRef(Callee, nullptr, I); },
        IsFree);
    uint16_t R = target(Dst);
    if (HasThis)
      emit(Op::CallM, R, ArgBase, Argc, ThisReg, 0, funcIdx(Callee));
    else
      emit(Op::Call, R, ArgBase, Argc, 0, 0, funcIdx(Callee));
    return R;
  }

  // Indirect call: callee value and null check precede the arguments.
  uint16_t FnReg = rval(Call->callee());
  emit(Op::ChkFn, FnReg);
  const FunctionType *FT = calleeFnType(Call);
  uint16_t Argc = static_cast<uint16_t>(Call->args().size());
  uint16_t ArgBase = compileArgs(Call->args(), [&](size_t I) {
    return callParamIsRef(nullptr, FT, I);
  });
  uint16_t R = target(Dst);
  emit(Op::CallI, R, ArgBase, Argc, FnReg, 0, 0);
  return R;
}

uint16_t Compiler::compileNew(const NewExpr *N, uint16_t Dst) {
  const Type *Ty = N->allocType();

  if (N->isArrayNew()) {
    uint16_t Cnt = rvalA(N->arraySize());
    uint16_t R = target(Dst);
    emit(Op::ArrNew, R, Cnt, 0, 0, 0,
         arrayDesc(Ty, 0, N->location(), /*Gate=*/false));
    return R;
  }

  if (const ClassDecl *CD = Ty->asClassDecl()) {
    uint16_t R = target(Dst);
    emit(Op::AllocObj, R, site16(N->location()), /*Gate=*/0, 0, 0,
         classIdx(CD));
    const ConstructorDecl *Ctor = N->constructor();
    uint16_t Argc = static_cast<uint16_t>(N->ctorArgs().size());
    uint16_t ArgBase = compileArgs(N->ctorArgs(), [&](size_t I) {
      return ctorParamIsRef(Ctor, I);
    });
    emit(Op::CtorCall, R, ArgBase, Argc, /*MostDerived=*/1,
         Ctor ? fn16(funcIdx(Ctor)) : NoFunc16, classIdx(CD));
    return R;
  }

  // Scalar new: fresh storage, zero or converted initializer; no
  // ObjectID, no hooks (evalNew).
  if (N->ctorArgs().empty()) {
    uint16_t R = target(Dst);
    emit(Op::NewScal0, R, 0, 0, 0, 0, internConst(zeroValue(Ty)));
    return R;
  }
  uint16_t V = rvalA(N->ctorArgs()[0]);
  uint16_t R = target(Dst);
  emit(Op::NewScalI, R, V, static_cast<uint16_t>(convFor(Ty)));
  return R;
}

uint16_t Compiler::deallocArg(const Expr *E) {
  // evalDeallocArg: member loads feeding deallocation skip read
  // attribution (paper footnote 3) unless CountDeallocationReads.
  if (Config.CountDeallocationReads)
    return rval(E);
  const Expr *Stripped = stripCasts(E);
  bool IsMember = false;
  if (const auto *ME = dyn_cast<MemberExpr>(Stripped))
    IsMember = dyn_cast_or_null<FieldDecl>(ME->member()) != nullptr;
  else if (const auto *DRE = dyn_cast<DeclRefExpr>(Stripped))
    IsMember = dyn_cast_or_null<FieldDecl>(DRE->referent()) != nullptr;
  if (!IsMember)
    return rval(E);
  uint16_t P = place(Stripped);
  uint16_t R = allocTmp();
  emit(Op::LoadNA, R, P);
  return R;
}

} // namespace

namespace dmm {
namespace vm {

Module compileModule(const ASTContext &Ctx, const ClassHierarchy &CH,
                     const CompilerConfig &Config) {
  return Compiler(Ctx, CH, Config).compile();
}

} // namespace vm
} // namespace dmm
