//===-- vm/VM.cpp - Bytecode virtual machine --------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch loop and runtime support for the bytecode of
/// vm/Bytecode.h. Semantics are a line-for-line transcription of
/// interp/Interpreter.cpp: every hook (allocation trace, read/write
/// sets, heat, shadow profiler), every ObjectID, and every runtime
/// error message fires at the same point in the same order as the
/// tree-walker, so the differential `engine` oracle can demand
/// byte-identical results. Comments below that name Interpreter
/// methods mark the code they transcribe.
///
/// Execution model: one host-recursive invocation of execCode per
/// guest frame, over shared register/local stacks (frames occupy
/// [base, base+N) windows; the caller passes argument registers by
/// absolute index so callee-side resizing cannot invalidate them).
/// Dispatch is direct-threaded via computed goto under GCC/Clang and
/// a switch otherwise.
///
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "ast/Expr.h"
#include "profiler/ShadowProfiler.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>

namespace dmm {
namespace vm {

struct VM::VMError {
  std::string Message;
};

//===----------------------------------------------------------------------===//
// Construction: compile, then precompute allocation recipes
//===----------------------------------------------------------------------===//

/// The zero value of a declared type (Interpreter.cpp zeroValue).
static Value zeroValueOf(const Type *Ty) {
  if (Ty->isPointer()) {
    if (isa<FunctionType>(cast<PointerType>(Ty)->pointee()))
      return Value::ofFn(nullptr);
    return Value::nullPtr();
  }
  if (Ty->isMemberPointer())
    return Value::ofMemberPtr(nullptr);
  if (const auto *BT = dyn_cast<BuiltinType>(Ty)) {
    switch (BT->builtinKind()) {
    case BuiltinType::BK::Double:
      return Value::ofDouble(0.0);
    case BuiltinType::BK::Bool:
      return Value::ofBool(false);
    case BuiltinType::BK::Char:
      return Value::ofChar(0);
    case BuiltinType::BK::NullPtr:
      return Value::nullPtr();
    default:
      return Value::ofInt(0);
    }
  }
  return Value::ofInt(0);
}

VM::VM(const ASTContext &Ctx, const ClassHierarchy &CH, InterpOptions Options,
       CompilerConfig Config)
    : CH(CH), Options(Options) {
  // InterpOptions is the behavioural contract; the compiler needs the
  // deallocation-read policy at lowering time, so mirror it rather than
  // making every caller thread the flag twice.
  Config.CountDeallocationReads |= Options.CountDeallocationReads;
  {
    Span Timer("vm.compile");
    Mod = compileModule(Ctx, CH, Config);
  }
  // Per-class recipe for allocateFieldStorage, one entry per unique
  // field slot in Fields-map insertion order.
  AllocPlans.resize(Mod.Classes.size());
  for (size_t CI = 0; CI != Mod.Classes.size(); ++CI) {
    const ClassPlan &P = Mod.Classes[CI];
    for (size_t K = 0; K != P.SlotFields.size(); ++K) {
      const FieldDecl *F = P.SlotFields[K];
      SlotAlloc SA;
      SA.Field = F;
      SA.Color = P.SlotColors[K];
      const Type *Ty = F->type();
      if (const ClassDecl *CD = Ty->asClassDecl()) {
        SA.Kind = SlotAlloc::K::Class;
        SA.ClassI = Mod.ClassIdx.at(CD);
      } else if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
        SA.ElemType = AT->element();
        SA.Count = AT->size();
        if (const ClassDecl *Elem = AT->element()->asClassDecl()) {
          SA.Kind = SlotAlloc::K::ClassArray;
          SA.ClassI = Mod.ClassIdx.at(Elem);
        } else {
          SA.Kind = SlotAlloc::K::ScalarArray;
          SA.Zero = zeroValueOf(AT->element());
        }
      } else {
        SA.Kind = SlotAlloc::K::Scalar;
        SA.Zero = zeroValueOf(Ty);
      }
      AllocPlans[CI].push_back(SA);
    }
  }
}

VM::~VM() = default;

void VM::fail(const std::string &Message) { throw VMError{Message}; }

void VM::step() {
  if (++Steps > Options.MaxSteps)
    fail("step limit exceeded");
}

//===----------------------------------------------------------------------===//
// Storage construction and destruction
//===----------------------------------------------------------------------===//

Storage *VM::allocSlot(const SlotAlloc &SA, uint64_t ID) {
  switch (SA.Kind) {
  case SlotAlloc::K::Class:
    return allocObject(SA.ClassI, SA.Field, ID);
  case SlotAlloc::K::ClassArray: {
    Storage *Arr = Arena.createArray(SA.ElemType, SA.Field);
    Arr->ObjectID = ID;
    for (uint64_t J = 0; J != SA.Count; ++J)
      Arr->Elems.push_back(allocObject(SA.ClassI, SA.Field, ID));
    return Arr;
  }
  case SlotAlloc::K::ScalarArray: {
    Storage *Arr = Arena.createArray(SA.ElemType, SA.Field);
    Arr->ObjectID = ID;
    for (uint64_t J = 0; J != SA.Count; ++J) {
      Storage *S = Arena.createScalar(SA.Field);
      S->V = SA.Zero;
      S->ObjectID = ID;
      Arr->Elems.push_back(S);
    }
    return Arr;
  }
  case SlotAlloc::K::Scalar:
    break;
  }
  Storage *S = Arena.createScalar(SA.Field);
  S->V = SA.Zero;
  S->ObjectID = ID;
  return S;
}

Storage *VM::allocObject(uint32_t ClassI, const FieldDecl *Owner,
                         uint64_t ID) {
  const ClassPlan &P = Mod.Classes[ClassI];
  if (!P.Complete)
    fail(P.IncompleteMsg);
  if (!Owner)
    ++NumCompleteObjects;
  Storage *Obj = Arena.createObject(P.Decl, Owner);
  Obj->ObjectID = ID;
  Obj->Slots.assign(P.NumSlots, nullptr);
  for (const SlotAlloc &SA : AllocPlans[ClassI])
    Obj->Slots[SA.Color] = allocSlot(SA, ID);
  return Obj;
}

uint64_t VM::traceAlloc(uint32_t ClassI, uint64_t Count) {
  if (!Options.Trace)
    return 0;
  const ClassPlan &P = Mod.Classes[ClassI];
  return Options.Trace->recordAlloc(P.Decl, Count, Count * P.CompleteSize);
}

void VM::traceFree(Storage *Obj) {
  auto It = TraceIDs.find(Obj);
  if (It == TraceIDs.end())
    return;
  Options.Trace->recordFree(It->second);
  TraceIDs.erase(It);
}

void VM::markDead(Storage *S) {
  S->Alive = false;
  for (Storage *FS : S->Slots)
    if (FS)
      markDead(FS);
  for (Storage *ES : S->Elems)
    markDead(ES);
}

void VM::destroyObj(Storage *Obj, uint32_t ClassI, bool MostDerived) {
  step(); // Interpreter::destroy
  const ClassPlan &P = Mod.Classes[ClassI];
  if (P.DtorBody != NoFunc)
    execFunction(Mod.Functions[P.DtorBody], Obj, P.Decl,
                 /*MostDerived=*/false, /*ArgAbs=*/0, /*Argc=*/0);
  // Members in reverse declaration order, then bases in reverse.
  for (auto It = P.Members.rbegin(); It != P.Members.rend(); ++It) {
    if (It->Kind == MemberPlan::MK::Class) {
      destroyObj(Obj->Slots[It->SlotColor], It->ElemClassIdx, true);
    } else if (It->Kind == MemberPlan::MK::ClassArray) {
      Storage *FS = Obj->Slots[It->SlotColor];
      for (auto EI = FS->Elems.rbegin(); EI != FS->Elems.rend(); ++EI)
        destroyObj(*EI, It->ElemClassIdx, true);
    }
  }
  for (auto It = P.NVBases.rbegin(); It != P.NVBases.rend(); ++It)
    destroyObj(Obj, *It, false);
  if (MostDerived)
    for (auto It = P.VBases.rbegin(); It != P.VBases.rend(); ++It)
      destroyObj(Obj, *It, false);
}

void VM::destroyCompleteObject(Storage *Obj) {
  if (!Obj->Alive)
    fail("double destruction of object");
  if (Obj->Kind == Storage::SK::Object) {
    destroyObj(Obj, Mod.ClassIdx.at(Obj->Class), true);
  } else if (Obj->Kind == Storage::SK::Array && Obj->ElemType) {
    if (const ClassDecl *Elem = Obj->ElemType->asClassDecl()) {
      uint32_t CI = Mod.ClassIdx.at(Elem);
      for (auto It = Obj->Elems.rbegin(); It != Obj->Elems.rend(); ++It)
        destroyObj(*It, CI, true);
    }
  }
  traceFree(Obj);
  if (Options.Profiler)
    Options.Profiler->recordFree(Obj->ObjectID);
  markDead(Obj);
}

void VM::constructVia(Storage *Obj, uint32_t ClassI, uint32_t CtorIdx,
                      size_t ArgAbs, uint16_t Argc, bool MostDerived) {
  step(); // Interpreter::construct
  if (CtorIdx == NoFunc) {
    defaultConstructMembers(Obj, ClassI, MostDerived);
    return;
  }
  const FuncEntry &FE = Mod.Functions[CtorIdx];
  if (Argc != FE.Params.size())
    fail(FE.ArgCountMsg);
  // The constructor body carries the initializer prologue; its frame
  // dispatches virtuals against the class under construction.
  execFunction(FE, Obj, Mod.Classes[ClassI].Decl, MostDerived, ArgAbs, Argc);
}

void VM::defaultConstructMembers(Storage *Obj, uint32_t ClassI,
                                 bool MostDerived) {
  const ClassPlan &P = Mod.Classes[ClassI];
  if (MostDerived)
    for (uint32_t VB : P.VBases)
      constructVia(Obj, VB, Mod.Classes[VB].Arity0Ctor, 0, 0, false);
  for (uint32_t B : P.NVBases)
    constructVia(Obj, B, Mod.Classes[B].Arity0Ctor, 0, 0, false);
  for (const MemberPlan &MP : P.Members) {
    if (MP.Kind == MemberPlan::MK::Class) {
      constructVia(Obj->Slots[MP.SlotColor], MP.ElemClassIdx,
                   Mod.Classes[MP.ElemClassIdx].Arity0Ctor, 0, 0, true);
    } else if (MP.Kind == MemberPlan::MK::ClassArray) {
      Storage *FS = Obj->Slots[MP.SlotColor];
      uint32_t A0 = Mod.Classes[MP.ElemClassIdx].Arity0Ctor;
      for (Storage *ES : FS->Elems)
        constructVia(ES, MP.ElemClassIdx, A0, 0, 0, true);
    }
  }
}

//===----------------------------------------------------------------------===//
// Loads, stores, conversions
//===----------------------------------------------------------------------===//

Value VM::loadScalar(Storage *S) {
  if (!S->Alive)
    fail("read from destroyed object");
  if (S->Kind != Storage::SK::Scalar)
    fail("scalar read from aggregate storage");
  if (S->OwnerField) {
    if (Options.ReadSet)
      Options.ReadSet->insert(S->OwnerField);
    if (Options.ReadTrace && TracedReads.insert(S->OwnerField).second)
      Options.ReadTrace->push_back(S->OwnerField);
    if (Options.Heat)
      ++Options.Heat->Reads[S->OwnerField];
    if (Options.Profiler)
      Options.Profiler->recordRead(S->ObjectID, S->OwnerField);
  }
  return S->V;
}

void VM::storeScalar(Storage *S, const Value &V, Conv C) {
  if (!S->Alive)
    fail("write to destroyed object");
  if (S->Kind != Storage::SK::Scalar)
    fail("scalar write to aggregate storage");
  if (S->OwnerField) {
    if (Options.WriteSet)
      Options.WriteSet->insert(S->OwnerField);
    if (Options.Heat)
      ++Options.Heat->Writes[S->OwnerField];
    if (Options.Profiler)
      Options.Profiler->recordWrite(S->ObjectID, S->OwnerField);
  }
  S->V = convert(V, C);
}

Value VM::convert(const Value &V, Conv C) {
  switch (C) {
  case Conv::None:
    return V;
  case Conv::Int:
    return Value::ofInt(V.asInt());
  case Conv::Double:
    return Value::ofDouble(V.asDouble());
  case Conv::Bool:
    return Value::ofBool(V.asBool());
  case Conv::Char:
    return Value::ofChar(static_cast<char>(V.asInt()));
  }
  return V;
}

Value VM::loadOrDecay(Storage *S) {
  if (S->Kind == Storage::SK::Scalar)
    return loadScalar(S);
  if (S->Kind == Storage::SK::Object)
    return Value::ofPtr({S});
  Pointer P;
  P.Array = S;
  P.Index = 0;
  P.Pointee = S->Elems.empty() ? nullptr : S->Elems.front();
  return Value::ofPtr(P);
}

/// Interpreter::advancePointer — provenance-checked arithmetic.
static Pointer advancePtr(Pointer P, long long Delta) {
  if (!P.Array)
    return P;
  P.Index += Delta;
  if (P.Index >= 0 &&
      static_cast<size_t>(P.Index) < P.Array->Elems.size())
    P.Pointee = P.Array->Elems[static_cast<size_t>(P.Index)];
  else
    P.Pointee = nullptr;
  return P;
}

//===----------------------------------------------------------------------===//
// Memberwise copies
//===----------------------------------------------------------------------===//

void VM::ensureFields(Storage *S) {
  if (S->Kind != Storage::SK::Object || !S->Fields.empty() ||
      S->Slots.empty())
    return;
  // Insert in SlotFields (first-occurrence AllFields) order: the same
  // keys in the same order as the tree-walker's eager map, so hash-map
  // iteration — which is part of the observable event order — matches.
  const ClassPlan &P = Mod.Classes[Mod.ClassIdx.at(S->Class)];
  for (size_t K = 0; K != P.SlotFields.size(); ++K)
    if (Storage *FS = S->Slots[P.SlotColors[K]])
      S->Fields.emplace(P.SlotFields[K], FS);
}

void VM::copyTree(Storage *Dst, Storage *Src, bool InitForm) {
  if (Dst->Kind == Storage::SK::Scalar && Src->Kind == Storage::SK::Scalar) {
    if (Dst->OwnerField) {
      if (InitForm) {
        // Copy-initialization (execVarDecl): profiler write only.
        if (Options.Profiler)
          Options.Profiler->recordWrite(Dst->ObjectID, Dst->OwnerField);
      } else {
        // Class assignment (evalAssign): full write attribution.
        if (Options.WriteSet)
          Options.WriteSet->insert(Dst->OwnerField);
        if (Options.Heat)
          ++Options.Heat->Writes[Dst->OwnerField];
        if (Options.Profiler)
          Options.Profiler->recordWrite(Dst->ObjectID, Dst->OwnerField);
      }
    }
    Dst->V = loadScalar(Src);
    return;
  }
  if (Dst->Kind == Storage::SK::Object) {
    ensureFields(Dst);
    ensureFields(Src);
    for (auto &[Field, FS] : Dst->Fields)
      if (Src->Fields.count(Field))
        copyTree(FS, Src->Fields.at(Field), InitForm);
  }
  if (Dst->Kind == Storage::SK::Array)
    for (size_t E = 0; E < Dst->Elems.size() && E < Src->Elems.size(); ++E)
      copyTree(Dst->Elems[E], Src->Elems[E], InitForm);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Value VM::callBuiltin(const FuncEntry &FE, size_t ArgAbs) {
  // Sema guarantees builtin arity; the bounds guard only protects the
  // host from a hostile module, not a semantic path.
  const Value A0 = ArgAbs < Regs.size() ? Regs[ArgAbs] : Value::unit();
  char Buf[64];
  switch (FE.Builtin) {
  case BuiltinKind::PrintInt:
    std::snprintf(Buf, sizeof(Buf), "%lld", A0.asInt());
    Output += Buf;
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintChar:
    Output += static_cast<char>(A0.asInt());
    return Value::unit();
  case BuiltinKind::PrintDouble:
    std::snprintf(Buf, sizeof(Buf), "%g", A0.asDouble());
    Output += Buf;
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintBool:
    Output += A0.asBool() ? "true" : "false";
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintStr: {
    Pointer P = A0.Ptr;
    if (!P.Array) {
      if (P.Pointee && P.Pointee->Kind == Storage::SK::Scalar)
        Output += static_cast<char>(loadScalar(P.Pointee).asInt());
      return Value::unit();
    }
    for (size_t I = static_cast<size_t>(P.Index); I < P.Array->Elems.size();
         ++I) {
      char C = static_cast<char>(loadScalar(P.Array->Elems[I]).asInt());
      if (C == 0)
        break;
      Output += C;
    }
    return Value::unit();
  }
  case BuiltinKind::Free: {
    Pointer P = A0.Ptr;
    if (P.isNull())
      return Value::unit();
    Storage *S = P.Array ? P.Array : P.Pointee;
    traceFree(S);
    if (Options.Profiler)
      Options.Profiler->recordFree(S->ObjectID);
    markDead(S); // No destructors run, as with C free().
    return Value::unit();
  }
  case BuiltinKind::None:
    break;
  }
  fail(FE.UndefinedMsg);
}

Value VM::doCall(uint32_t FnIdx, Storage *This, size_t ArgAbs,
                 uint16_t Argc) {
  step(); // Interpreter::callFunction
  ++NumCalls;
  if (Depth > 1024)
    fail("interpreter stack overflow (recursion too deep)");
  const FuncEntry &FE = Mod.Functions[FnIdx];
  if (FE.IsBuiltin)
    return callBuiltin(FE, ArgAbs);
  if (!FE.Defined)
    fail(FE.UndefinedMsg);
  if (Argc != FE.Params.size())
    fail(FE.ArgCountMsg);
  return execFunction(FE, This, /*DispatchClass=*/nullptr,
                      /*MostDerived=*/false, ArgAbs, Argc);
}

Value VM::execFunction(const FuncEntry &FE, Storage *This,
                       const ClassDecl *DispatchClass, bool MostDerived,
                       size_t ArgAbs, uint16_t Argc) {
  (void)Argc; // Arity is validated by the caller (doCall/constructVia).
  size_t RBase = Regs.size();
  size_t LBase = Locals.size();
  Regs.resize(RBase + FE.NumRegs);
  Locals.resize(LBase + FE.NumLocals, nullptr);
  for (size_t I = 0; I != FE.Params.size(); ++I) {
    const ParamPlan &PP = FE.Params[I];
    Value Arg = Regs[ArgAbs + I];
    switch (PP.Kind) {
    case ParamPlan::PK::RefBind:
      if (Arg.Kind != Value::VK::Ptr || Arg.Ptr.isNull())
        fail("reference parameter bound to non-lvalue");
      Locals[LBase + PP.Slot] = Arg.Ptr.Pointee;
      break;
    case ParamPlan::PK::ClassShare:
      if (Arg.Kind != Value::VK::Ptr || Arg.Ptr.isNull())
        fail("class argument is not an object");
      Locals[LBase + PP.Slot] = Arg.Ptr.Pointee;
      break;
    case ParamPlan::PK::ScalarStorage: {
      Storage *PS = Arena.createScalar();
      PS->V = convert(Arg, PP.ConvKind);
      Locals[LBase + PP.Slot] = PS;
      break;
    }
    case ParamPlan::PK::ScalarReg:
      Regs[RBase + PP.Slot] = convert(Arg, PP.ConvKind);
      break;
    }
  }
  ++Depth; // The tree-walker's Stack.push_back.
  Value Ret = execCode(FE, RBase, LBase, This, DispatchClass, MostDerived);
  --Depth;
  Regs.resize(RBase);
  Locals.resize(LBase);
  return Ret;
}

//===----------------------------------------------------------------------===//
// Operator helpers
//===----------------------------------------------------------------------===//

Value VM::binaryOp(const Value &L, unsigned OpKRaw, const Value &R) {
  // Interpreter::evalBinary after the short-circuit forms (which are
  // compiled to jumps).
  auto OpK = static_cast<BinaryOpKind>(OpKRaw);
  if (L.Kind == Value::VK::Ptr || R.Kind == Value::VK::Ptr ||
      L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr) {
    switch (OpK) {
    case BinaryOpKind::Add:
      if (L.Kind == Value::VK::Ptr)
        return Value::ofPtr(advancePtr(L.Ptr, R.asInt()));
      return Value::ofPtr(advancePtr(R.Ptr, L.asInt()));
    case BinaryOpKind::Sub:
      if (L.Kind == Value::VK::Ptr && R.Kind == Value::VK::Ptr) {
        if (L.Ptr.Array && L.Ptr.Array == R.Ptr.Array)
          return Value::ofInt(L.Ptr.Index - R.Ptr.Index);
        fail("difference of pointers into different arrays");
      }
      return Value::ofPtr(advancePtr(L.Ptr, -R.asInt()));
    case BinaryOpKind::EQ:
      if (L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr)
        return Value::ofBool(L.Fn == R.Fn);
      return Value::ofBool(L.Ptr.Pointee == R.Ptr.Pointee);
    case BinaryOpKind::NE:
      if (L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr)
        return Value::ofBool(L.Fn != R.Fn);
      return Value::ofBool(L.Ptr.Pointee != R.Ptr.Pointee);
    case BinaryOpKind::LT:
    case BinaryOpKind::GT:
    case BinaryOpKind::LE:
    case BinaryOpKind::GE: {
      if (L.Ptr.Array && L.Ptr.Array == R.Ptr.Array) {
        long long A = L.Ptr.Index, B = R.Ptr.Index;
        switch (OpK) {
        case BinaryOpKind::LT:
          return Value::ofBool(A < B);
        case BinaryOpKind::GT:
          return Value::ofBool(A > B);
        case BinaryOpKind::LE:
          return Value::ofBool(A <= B);
        default:
          return Value::ofBool(A >= B);
        }
      }
      fail("relational comparison of unrelated pointers");
    }
    default:
      fail("invalid operator on pointers");
    }
  }

  bool UseDouble =
      L.Kind == Value::VK::Double || R.Kind == Value::VK::Double;
  switch (OpK) {
  case BinaryOpKind::Add:
    return UseDouble ? Value::ofDouble(L.asDouble() + R.asDouble())
                     : Value::ofInt(L.asInt() + R.asInt());
  case BinaryOpKind::Sub:
    return UseDouble ? Value::ofDouble(L.asDouble() - R.asDouble())
                     : Value::ofInt(L.asInt() - R.asInt());
  case BinaryOpKind::Mul:
    return UseDouble ? Value::ofDouble(L.asDouble() * R.asDouble())
                     : Value::ofInt(L.asInt() * R.asInt());
  case BinaryOpKind::Div:
    if (UseDouble) {
      if (R.asDouble() == 0.0)
        fail("floating division by zero");
      return Value::ofDouble(L.asDouble() / R.asDouble());
    }
    if (R.asInt() == 0)
      fail("integer division by zero");
    return Value::ofInt(L.asInt() / R.asInt());
  case BinaryOpKind::Rem:
    if (R.asInt() == 0)
      fail("integer remainder by zero");
    return Value::ofInt(L.asInt() % R.asInt());
  case BinaryOpKind::Shl:
    return Value::ofInt(L.asInt() << (R.asInt() & 63));
  case BinaryOpKind::Shr:
    return Value::ofInt(L.asInt() >> (R.asInt() & 63));
  case BinaryOpKind::BitAnd:
    return Value::ofInt(L.asInt() & R.asInt());
  case BinaryOpKind::BitOr:
    return Value::ofInt(L.asInt() | R.asInt());
  case BinaryOpKind::BitXor:
    return Value::ofInt(L.asInt() ^ R.asInt());
  case BinaryOpKind::LT:
    return Value::ofBool(UseDouble ? L.asDouble() < R.asDouble()
                                   : L.asInt() < R.asInt());
  case BinaryOpKind::GT:
    return Value::ofBool(UseDouble ? L.asDouble() > R.asDouble()
                                   : L.asInt() > R.asInt());
  case BinaryOpKind::LE:
    return Value::ofBool(UseDouble ? L.asDouble() <= R.asDouble()
                                   : L.asInt() <= R.asInt());
  case BinaryOpKind::GE:
    return Value::ofBool(UseDouble ? L.asDouble() >= R.asDouble()
                                   : L.asInt() >= R.asInt());
  case BinaryOpKind::EQ:
    if (L.Kind == Value::VK::MemberPtr || R.Kind == Value::VK::MemberPtr)
      return Value::ofBool(L.Member == R.Member);
    return Value::ofBool(UseDouble ? L.asDouble() == R.asDouble()
                                   : L.asInt() == R.asInt());
  case BinaryOpKind::NE:
    if (L.Kind == Value::VK::MemberPtr || R.Kind == Value::VK::MemberPtr)
      return Value::ofBool(L.Member != R.Member);
    return Value::ofBool(UseDouble ? L.asDouble() != R.asDouble()
                                   : L.asInt() != R.asInt());
  case BinaryOpKind::LAnd:
  case BinaryOpKind::LOr:
    break;
  }
  fail("unhandled binary operator");
}

Value VM::compoundCompute(const Value &Old, unsigned OpKRaw, const Value &R) {
  // Interpreter::evalAssign compound tail.
  auto OpK = static_cast<AssignOpKind>(OpKRaw);
  if (Old.Kind == Value::VK::Ptr) {
    long long Delta = R.asInt();
    if (OpK == AssignOpKind::SubAssign)
      Delta = -Delta;
    else if (OpK != AssignOpKind::AddAssign)
      fail("invalid compound assignment on pointer");
    return Value::ofPtr(advancePtr(Old.Ptr, Delta));
  }
  bool UseDouble =
      Old.Kind == Value::VK::Double || R.Kind == Value::VK::Double;
  switch (OpK) {
  case AssignOpKind::AddAssign:
    return UseDouble ? Value::ofDouble(Old.asDouble() + R.asDouble())
                     : Value::ofInt(Old.asInt() + R.asInt());
  case AssignOpKind::SubAssign:
    return UseDouble ? Value::ofDouble(Old.asDouble() - R.asDouble())
                     : Value::ofInt(Old.asInt() - R.asInt());
  case AssignOpKind::MulAssign:
    return UseDouble ? Value::ofDouble(Old.asDouble() * R.asDouble())
                     : Value::ofInt(Old.asInt() * R.asInt());
  case AssignOpKind::DivAssign:
    if (UseDouble) {
      if (R.asDouble() == 0.0)
        fail("floating division by zero");
      return Value::ofDouble(Old.asDouble() / R.asDouble());
    }
    if (R.asInt() == 0)
      fail("integer division by zero");
    return Value::ofInt(Old.asInt() / R.asInt());
  case AssignOpKind::RemAssign:
    if (R.asInt() == 0)
      fail("integer remainder by zero");
    return Value::ofInt(Old.asInt() % R.asInt());
  case AssignOpKind::Assign:
    break;
  }
  fail("unreachable plain assignment");
}

Storage *VM::stringStorage(uint32_t SiteIdx) {
  if (Storage *S = Strings[SiteIdx])
    return S;
  const StringLiteralExpr *SL = Mod.StringSites[SiteIdx];
  Storage *Arr = Arena.createArray(nullptr, nullptr);
  for (char C : SL->value()) {
    Storage *CS = Arena.createScalar();
    CS->V = Value::ofChar(C);
    Arr->Elems.push_back(CS);
  }
  Storage *Nul = Arena.createScalar();
  Nul->V = Value::ofChar(0);
  Arr->Elems.push_back(Nul);
  Strings[SiteIdx] = Arr;
  return Arr;
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

#if defined(__GNUC__) || defined(__clang__)
#define DMM_VM_CGOTO 1
#else
#define DMM_VM_CGOTO 0
#endif

Value VM::execCode(const FuncEntry &FE, size_t RBase, size_t LBase,
                   Storage *This, const ClassDecl *DispatchClass,
                   bool MostDerived) {
  const Insn *Code = FE.Code.data();
  size_t PC = 0;
  // Cached frame windows; MUST be reloaded (VM_RELOAD) after any
  // handler that can recurse into execFunction and resize the stacks.
  Value *R = Regs.data() + RBase;
  Storage **LS = Locals.data() + LBase;
  const Insn *I = nullptr;

#define VM_RELOAD()                                                          \
  (R = Regs.data() + RBase, LS = Locals.data() + LBase)

#if DMM_VM_CGOTO
  // Direct-threaded dispatch: one indirect jump per instruction. The
  // table is in exact Op enum order.
  static const void *const JumpTable[] = {
      &&Lbl_LoadK,      &&Lbl_Move,       &&Lbl_ConvOp,    &&Lbl_Str,
      &&Lbl_BoolOp,     &&Lbl_Jmp,        &&Lbl_JmpF,      &&Lbl_JmpT,
      &&Lbl_JmpNMD,     &&Lbl_Fail,       &&Lbl_LocPtr,    &&Lbl_LdLoc,
      &&Lbl_LSet,       &&Lbl_DeclScalar, &&Lbl_DeclRefVar,
      &&Lbl_DestroyLoc, &&Lbl_GlobPtr,    &&Lbl_GlobPtrPub,
      &&Lbl_GDeclScalar, &&Lbl_GDeclRef,  &&Lbl_GBind,     &&Lbl_GPublish,
      &&Lbl_GMarkObj,   &&Lbl_ThisOp,     &&Lbl_ArrowChk,  &&Lbl_DotChk,
      &&Lbl_FieldPlace, &&Lbl_MemPtrPlace, &&Lbl_IdxArr,   &&Lbl_IdxPtr,
      &&Lbl_DerefP,     &&Lbl_Decay,      &&Lbl_LoadSc,    &&Lbl_LoadNA,
      &&Lbl_RawV,       &&Lbl_StoreAt,    &&Lbl_Neg,       &&Lbl_NotOp,
      &&Lbl_BitNot,     &&Lbl_AddrTake,   &&Lbl_AddrIdxA,  &&Lbl_AddrIdxP,
      &&Lbl_ChkSub,     &&Lbl_IncDec,     &&Lbl_Bin,       &&Lbl_AddII,
      &&Lbl_SubII,      &&Lbl_MulII,      &&Lbl_CmpII,     &&Lbl_Compound,
      &&Lbl_CompoundR,  &&Lbl_IncDecR,    &&Lbl_CastPtr,   &&Lbl_Call,
      &&Lbl_CallM,      &&Lbl_CallV,      &&Lbl_CallI,     &&Lbl_ChkFn,
      &&Lbl_VDisp,      &&Lbl_Ret,        &&Lbl_RetUnit,   &&Lbl_AllocObj,
      &&Lbl_CtorCall,   &&Lbl_CtorElems,  &&Lbl_ArrLocal,  &&Lbl_ArrNew,
      &&Lbl_NewScal0,   &&Lbl_NewScalI,   &&Lbl_DeleteOp,  &&Lbl_CopyInit,
      &&Lbl_CopyAsgn,   &&Lbl_JmpCmpII,   &&Lbl_LdFld,     &&Lbl_StFld,
      &&Lbl_DivII,      &&Lbl_RemII,
  };
#define VM_CASE(name) Lbl_##name
#define VM_NEXT()                                                            \
  do {                                                                       \
    if (++Steps > Options.MaxSteps)                                          \
      fail("step limit exceeded");                                           \
    I = &Code[PC++];                                                         \
    goto *JumpTable[static_cast<size_t>(I->Opcode)];                         \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() continue
  for (;;) {
    if (++Steps > Options.MaxSteps)
      fail("step limit exceeded");
    I = &Code[PC++];
    switch (I->Opcode) {
#endif

  VM_CASE(LoadK) : { R[I->A] = Mod.Consts[I->X]; }
  VM_NEXT();

  VM_CASE(Move) : { R[I->A] = R[I->B]; }
  VM_NEXT();

  VM_CASE(ConvOp) : { R[I->A] = convert(R[I->B], static_cast<Conv>(I->C)); }
  VM_NEXT();

  VM_CASE(Str) : {
    Storage *Arr = stringStorage(I->X);
    Pointer P;
    P.Array = Arr;
    P.Index = 0;
    P.Pointee = Arr->Elems.front();
    R[I->A] = Value::ofPtr(P);
  }
  VM_NEXT();

  VM_CASE(BoolOp) : { R[I->A] = Value::ofBool(R[I->B].asBool()); }
  VM_NEXT();

  VM_CASE(Jmp) : { PC = I->X; }
  VM_NEXT();

  VM_CASE(JmpF) : {
    if (!R[I->A].asBool())
      PC = I->X;
  }
  VM_NEXT();

  VM_CASE(JmpT) : {
    if (R[I->A].asBool())
      PC = I->X;
  }
  VM_NEXT();

  VM_CASE(JmpNMD) : {
    if (!MostDerived)
      PC = I->X;
  }
  VM_NEXT();

  VM_CASE(Fail) : { fail(Mod.Msgs[I->X]); }
  VM_NEXT();

  VM_CASE(LocPtr) : { R[I->A] = Value::ofPtr({LS[I->B]}); }
  VM_NEXT();

  VM_CASE(LdLoc) : { R[I->A] = loadOrDecay(LS[I->B]); }
  VM_NEXT();

  VM_CASE(LSet) : { LS[I->A] = R[I->B].Ptr.Pointee; }
  VM_NEXT();

  VM_CASE(DeclScalar) : {
    Storage *S = Arena.createScalar();
    S->V = convert(R[I->B], static_cast<Conv>(I->C));
    LS[I->A] = S;
  }
  VM_NEXT();

  VM_CASE(DeclRefVar) : { LS[I->A] = R[I->B].Ptr.Pointee; }
  VM_NEXT();

  VM_CASE(DestroyLoc) : {
    destroyCompleteObject(LS[I->A]);
    VM_RELOAD();
  }
  VM_NEXT();

  VM_CASE(GlobPtr) : {
    Storage *S = GS[I->B];
    if (!S)
      fail(Mod.Msgs[I->X]);
    R[I->A] = Value::ofPtr({S});
  }
  VM_NEXT();

  VM_CASE(GlobPtrPub) : {
    Storage *S = GP[I->B];
    if (!S)
      fail(Mod.Msgs[I->X]);
    R[I->A] = Value::ofPtr({S});
  }
  VM_NEXT();

  VM_CASE(GDeclScalar) : {
    Storage *S = Arena.createScalar();
    S->V = convert(R[I->B], static_cast<Conv>(I->C));
    GS[I->A] = S;
  }
  VM_NEXT();

  VM_CASE(GDeclRef) : { GS[I->A] = R[I->B].Ptr.Pointee; }
  VM_NEXT();

  VM_CASE(GBind) : { GS[I->A] = R[I->B].Ptr.Pointee; }
  VM_NEXT();

  VM_CASE(GPublish) : { GP[I->A] = GS[I->A]; }
  VM_NEXT();

  VM_CASE(GMarkObj) : { GlobalObjects.push_back(R[I->A].Ptr.Pointee); }
  VM_NEXT();

  VM_CASE(ThisOp) : {
    if (!This)
      fail(Mod.Msgs[I->X]);
    R[I->A] = Value::ofPtr({This});
  }
  VM_NEXT();

  VM_CASE(ArrowChk) : {
    const Value &V = R[I->A];
    if (V.Kind != Value::VK::Ptr || V.Ptr.isNull())
      fail("member access through null or non-pointer");
    if (V.Ptr.Pointee->Kind != Storage::SK::Object)
      fail("'->' on pointer to non-object");
  }
  VM_NEXT();

  VM_CASE(DotChk) : {
    // Dot on an rvalue base: any non-null pointer passes (the tree
    // does not require object kind here).
    const Value &V = R[I->A];
    if (V.Kind != Value::VK::Ptr || V.Ptr.isNull())
      fail("member access on non-object value");
  }
  VM_NEXT();

  VM_CASE(FieldPlace) : {
    Storage *S = R[I->B].Ptr.Pointee;
    Storage *FS = nullptr;
    if (S && S->Kind == Storage::SK::Object && I->C < S->Slots.size()) {
      Storage *Cand = S->Slots[I->C];
      // Colors are shared across unrelated classes: the slot must
      // actually realize the requested field.
      if (Cand && Cand->OwnerField == Mod.FieldTable[I->D])
        FS = Cand;
    }
    if (!FS)
      fail(Mod.Msgs[I->X]);
    R[I->A] = Value::ofPtr({FS});
  }
  VM_NEXT();

  VM_CASE(MemPtrPlace) : {
    const Value &PM = R[I->C];
    if (PM.Kind != Value::VK::MemberPtr || !PM.Member)
      fail("'.*' through null pointer-to-member");
    Storage *S = R[I->B].Ptr.Pointee;
    Storage *FS = nullptr;
    if (S && S->Kind == Storage::SK::Object) {
      auto It = Mod.FieldColor.find(PM.Member);
      if (It != Mod.FieldColor.end() && It->second < S->Slots.size()) {
        Storage *Cand = S->Slots[It->second];
        if (Cand && Cand->OwnerField == PM.Member)
          FS = Cand;
      }
    }
    if (!FS)
      fail("object has no member for pointer-to-member access");
    R[I->A] = Value::ofPtr({FS});
  }
  VM_NEXT();

  VM_CASE(IdxArr) : {
    Storage *Arr = R[I->B].Ptr.Pointee;
    long long Index = R[I->C].asInt();
    if (Index < 0 || static_cast<size_t>(Index) >= Arr->Elems.size())
      fail("array index out of bounds");
    R[I->A] = Value::ofPtr({Arr->Elems[static_cast<size_t>(Index)]});
  }
  VM_NEXT();

  VM_CASE(IdxPtr) : {
    const Value &P = R[I->B];
    if (P.Kind != Value::VK::Ptr || P.Ptr.isNull())
      fail("subscript of null pointer");
    long long Index = R[I->C].asInt();
    if (!P.Ptr.Array) {
      if (Index != 0)
        fail("pointer arithmetic on non-array pointer");
      R[I->A] = Value::ofPtr({P.Ptr.Pointee});
    } else {
      long long Abs = P.Ptr.Index + Index;
      if (Abs < 0 ||
          static_cast<size_t>(Abs) >= P.Ptr.Array->Elems.size())
        fail("pointer subscript out of bounds");
      R[I->A] =
          Value::ofPtr({P.Ptr.Array->Elems[static_cast<size_t>(Abs)]});
    }
  }
  VM_NEXT();

  VM_CASE(DerefP) : {
    const Value &V = R[I->B];
    if (V.Kind != Value::VK::Ptr || V.Ptr.isNull())
      fail("dereference of null pointer");
    R[I->A] = Value::ofPtr({V.Ptr.Pointee});
  }
  VM_NEXT();

  VM_CASE(Decay) : { R[I->A] = loadOrDecay(R[I->B].Ptr.Pointee); }
  VM_NEXT();

  VM_CASE(LoadSc) : { R[I->A] = loadScalar(R[I->B].Ptr.Pointee); }
  VM_NEXT();

  VM_CASE(LoadNA) : {
    // Deallocation-argument load: alive/kind checked, no attribution
    // (Interpreter::evalDeallocArg).
    Storage *S = R[I->B].Ptr.Pointee;
    if (!S->Alive)
      fail("read from destroyed object");
    if (S->Kind != Storage::SK::Scalar)
      fail("scalar read from aggregate storage");
    R[I->A] = S->V;
  }
  VM_NEXT();

  VM_CASE(RawV) : { R[I->A] = R[I->B].Ptr.Pointee->V; }
  VM_NEXT();

  VM_CASE(StoreAt) : {
    storeScalar(R[I->A].Ptr.Pointee, R[I->B], static_cast<Conv>(I->C));
  }
  VM_NEXT();

  VM_CASE(Neg) : {
    const Value &V = R[I->B];
    R[I->A] = V.Kind == Value::VK::Double ? Value::ofDouble(-V.asDouble())
                                          : Value::ofInt(-V.asInt());
  }
  VM_NEXT();

  VM_CASE(NotOp) : { R[I->A] = Value::ofBool(!R[I->B].asBool()); }
  VM_NEXT();

  VM_CASE(BitNot) : { R[I->A] = Value::ofInt(~R[I->B].asInt()); }
  VM_NEXT();

  VM_CASE(AddrTake) : {
    Storage *S = R[I->A].Ptr.Pointee;
    if (Options.Profiler && S->OwnerField)
      Options.Profiler->recordAddrTaken(S->ObjectID, S->OwnerField);
  }
  VM_NEXT();

  VM_CASE(AddrIdxA) : {
    // &arr[i] keeps array provenance; the address-taken event fires
    // even for an out-of-bounds index (evalUnary AddrOf).
    Storage *Arr = R[I->B].Ptr.Pointee;
    long long Index = R[I->C].asInt();
    Pointer P;
    P.Array = Arr;
    P.Index = Index;
    P.Pointee = (Index >= 0 &&
                 static_cast<size_t>(Index) < Arr->Elems.size())
                    ? Arr->Elems[static_cast<size_t>(Index)]
                    : nullptr;
    if (Options.Profiler && Arr->OwnerField)
      Options.Profiler->recordAddrTaken(Arr->ObjectID, Arr->OwnerField);
    R[I->A] = Value::ofPtr(P);
  }
  VM_NEXT();

  VM_CASE(AddrIdxP) : {
    const Value &BaseV = R[I->B];
    long long Index = BaseV.Ptr.Index + R[I->C].asInt();
    if (!BaseV.Ptr.Array) {
      R[I->A] = Value::ofPtr({BaseV.Ptr.Pointee});
    } else {
      Pointer P;
      P.Array = BaseV.Ptr.Array;
      P.Index = Index;
      P.Pointee = (Index >= 0 &&
                   static_cast<size_t>(Index) < P.Array->Elems.size())
                      ? P.Array->Elems[static_cast<size_t>(Index)]
                      : nullptr;
      if (Options.Profiler && P.Array->OwnerField)
        Options.Profiler->recordAddrTaken(P.Array->ObjectID,
                                          P.Array->OwnerField);
      R[I->A] = Value::ofPtr(P);
    }
  }
  VM_NEXT();

  VM_CASE(ChkSub) : {
    if (R[I->A].Kind != Value::VK::Ptr)
      fail("subscript of non-pointer");
  }
  VM_NEXT();

  VM_CASE(IncDec) : {
    Storage *S = R[I->B].Ptr.Pointee;
    Value Old = loadScalar(S);
    long long Delta = (I->C & 1) ? 1 : -1;
    Value New;
    if (Old.Kind == Value::VK::Ptr)
      New = Value::ofPtr(advancePtr(Old.Ptr, Delta));
    else if (Old.Kind == Value::VK::Double)
      New = Value::ofDouble(Old.asDouble() + Delta);
    else
      New = Value::ofInt(Old.asInt() + Delta);
    storeScalar(S, New, static_cast<Conv>(I->D));
    R[I->A] = (I->C & 2) ? New : Old;
  }
  VM_NEXT();

  VM_CASE(Bin) : { R[I->A] = binaryOp(R[I->B], I->C, R[I->D]); }
  VM_NEXT();

  // The int fast-path handlers write Kind/IntVal in place instead of
  // constructing a full Value: stale Double/Ptr fields are unobservable
  // once Kind says Int/Bool, and the destination may alias an operand,
  // so the result is computed before anything is stored.

  VM_CASE(AddII) : {
    long long V = R[I->B].IntVal +
                  ((I->C & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal) +
                  I->E;
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Int;
    Dv.IntVal = V;
  }
  VM_NEXT();

  VM_CASE(SubII) : {
    long long V = R[I->B].IntVal -
                  ((I->C & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal);
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Int;
    Dv.IntVal = V;
  }
  VM_NEXT();

  VM_CASE(MulII) : {
    long long V = R[I->B].IntVal *
                  ((I->C & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal);
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Int;
    Dv.IntVal = V;
  }
  VM_NEXT();

  VM_CASE(CmpII) : {
    long long A = R[I->B].IntVal;
    long long B = (I->E & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal;
    bool V = false;
    switch (I->C) {
    case 0: V = A < B; break;
    case 1: V = A > B; break;
    case 2: V = A <= B; break;
    case 3: V = A >= B; break;
    case 4: V = A == B; break;
    default: V = A != B; break;
    }
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Bool;
    Dv.IntVal = V ? 1 : 0;
  }
  VM_NEXT();

  VM_CASE(Compound) : {
    Storage *S = R[I->B].Ptr.Pointee;
    Value New = compoundCompute(R[I->C], I->E, R[I->D]);
    storeScalar(S, New, static_cast<Conv>(I->X));
    R[I->A] = New;
  }
  VM_NEXT();

  VM_CASE(CompoundR) : {
    Value New = compoundCompute(R[I->C], I->E, R[I->D]);
    R[I->B] = convert(New, static_cast<Conv>(I->X));
    R[I->A] = New;
  }
  VM_NEXT();

  VM_CASE(IncDecR) : {
    Value Old = R[I->B];
    long long Delta = (I->C & 1) ? 1 : -1;
    Value New;
    if (Old.Kind == Value::VK::Ptr)
      New = Value::ofPtr(advancePtr(Old.Ptr, Delta));
    else if (Old.Kind == Value::VK::Double)
      New = Value::ofDouble(Old.asDouble() + Delta);
    else
      New = Value::ofInt(Old.asInt() + Delta);
    R[I->B] = convert(New, static_cast<Conv>(I->D));
    R[I->A] = (I->C & 2) ? New : Old;
  }
  VM_NEXT();

  VM_CASE(CastPtr) : {
    const Value &V = R[I->B];
    if (V.Kind == Value::VK::Ptr || V.Kind == Value::VK::FnPtr)
      R[I->A] = V;
    else if (V.asInt() == 0)
      R[I->A] = Value::nullPtr();
    else
      fail("cannot materialize a pointer from an integer");
  }
  VM_NEXT();

  VM_CASE(Call) : {
    Value Ret = doCall(I->X, nullptr, RBase + I->B, I->C);
    VM_RELOAD();
    R[I->A] = Ret;
  }
  VM_NEXT();

  VM_CASE(CallM) : {
    Storage *Recv = R[I->D].Ptr.Pointee;
    Value Ret = doCall(I->X, Recv, RBase + I->B, I->C);
    VM_RELOAD();
    R[I->A] = Ret;
  }
  VM_NEXT();

  VM_CASE(CallV) : {
    Storage *Recv = R[I->D].Ptr.Pointee;
    auto FnIdx = static_cast<uint32_t>(R[I->E].IntVal);
    Value Ret = doCall(FnIdx, Recv, RBase + I->B, I->C);
    VM_RELOAD();
    R[I->A] = Ret;
  }
  VM_NEXT();

  VM_CASE(CallI) : {
    const FunctionDecl *FD = R[I->D].Fn;
    auto It = Mod.FuncIdx.find(FD);
    if (It == Mod.FuncIdx.end())
      fail("indirect call through null function pointer");
    Value Ret = doCall(It->second, nullptr, RBase + I->B, I->C);
    VM_RELOAD();
    R[I->A] = Ret;
  }
  VM_NEXT();

  VM_CASE(ChkFn) : {
    const Value &V = R[I->A];
    if (V.Kind != Value::VK::FnPtr || !V.Fn)
      fail("indirect call through null function pointer");
  }
  VM_NEXT();

  VM_CASE(VDisp) : {
    Storage *Recv = R[I->B].Ptr.Pointee;
    const ClassDecl *Dyn = Recv->Class;
    // A method body calling a virtual on its own receiver dispatches
    // against the construction/destruction class.
    if (DispatchClass && This == Recv)
      Dyn = DispatchClass;
    VCache &C = VCaches[I->X];
    if (C.Class != Dyn) {
      const VCallSite &Site = Mod.VSites[I->X];
      const MethodDecl *Target = CH.resolveVirtualCall(Dyn, Site.Method);
      if (!Target)
        fail(Site.FailMsg);
      C.Class = Dyn;
      C.Fn = Mod.FuncIdx.at(Target);
    }
    R[I->A] = Value::ofInt(C.Fn);
  }
  VM_NEXT();

  VM_CASE(Ret) : { return R[I->A]; }

  VM_CASE(RetUnit) : { return Value::unit(); }

  VM_CASE(AllocObj) : {
    uint64_t ID = NextObjectID++;
    Storage *Obj = allocObject(I->X, nullptr, ID);
    if (!I->C || Options.TraceStackObjects) {
      const ClassPlan &P = Mod.Classes[I->X];
      if (Options.Profiler)
        Options.Profiler->registerObjects(P.Decl, 1, ID, Mod.Sites[I->B]);
      if (uint64_t TID = traceAlloc(I->X, 1))
        TraceIDs[Obj] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    R[I->A] = Value::ofPtr({Obj});
  }
  VM_NEXT();

  VM_CASE(CtorCall) : {
    Storage *Obj = R[I->A].Ptr.Pointee;
    uint32_t CtorIdx = I->E == NoFunc16 ? NoFunc : I->E;
    constructVia(Obj, I->X, CtorIdx, RBase + I->B, I->C, I->D != 0);
    VM_RELOAD();
  }
  VM_NEXT();

  VM_CASE(CtorElems) : {
    Storage *Arr = R[I->A].Ptr.Pointee;
    uint32_t A0 = Mod.Classes[I->X].Arity0Ctor;
    for (Storage *ES : Arr->Elems)
      constructVia(ES, I->X, A0, 0, 0, true);
    VM_RELOAD();
  }
  VM_NEXT();

  VM_CASE(ArrLocal) : {
    // Interpreter::execVarDecl array branch (Gate always set): the
    // ObjectID range reserves one ID per element; hooks apply to
    // class-element arrays only, registration before the element
    // loop, trace/alloc-event after.
    const ArrayDesc &D = Mod.ArrayDescs[I->X];
    Storage *Arr = Arena.createArray(D.ElemType, nullptr);
    uint64_t ID = NextObjectID;
    NextObjectID += std::max<uint64_t>(D.Count, 1);
    Arr->ObjectID = ID;
    bool Hooks = !D.Gate || Options.TraceStackObjects;
    if (D.ElemClassIdx >= 0 && Hooks && Options.Profiler)
      Options.Profiler->registerObjects(
          Mod.Classes[D.ElemClassIdx].Decl, D.Count, ID,
          Mod.Sites[D.SiteIdx]);
    for (uint64_t J = 0; J != D.Count; ++J) {
      if (D.ElemClassIdx >= 0) {
        Storage *ES =
            allocObject(static_cast<uint32_t>(D.ElemClassIdx), nullptr,
                        ID + J);
        Arr->Elems.push_back(ES);
        constructVia(ES, static_cast<uint32_t>(D.ElemClassIdx),
                     Mod.Classes[D.ElemClassIdx].Arity0Ctor, 0, 0, true);
      } else {
        Storage *ES = Arena.createScalar();
        ES->V = Mod.Consts[D.ZeroConstIdx];
        Arr->Elems.push_back(ES);
      }
    }
    if (D.ElemClassIdx >= 0 && Hooks) {
      if (uint64_t TID =
              traceAlloc(static_cast<uint32_t>(D.ElemClassIdx), D.Count))
        TraceIDs[Arr] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    VM_RELOAD();
    R[I->A] = Value::ofPtr({Arr});
  }
  VM_NEXT();

  VM_CASE(ArrNew) : {
    // Interpreter::evalNew array branch: hooks are ungated and fire
    // BEFORE the element constructor loop.
    long long Count = R[I->B].asInt();
    if (Count < 0)
      fail("negative array-new extent");
    const ArrayDesc &D = Mod.ArrayDescs[I->X];
    Storage *Arr = Arena.createArray(D.ElemType, nullptr);
    uint64_t ID = NextObjectID;
    NextObjectID += std::max<uint64_t>(static_cast<uint64_t>(Count), 1);
    Arr->ObjectID = ID;
    if (D.ElemClassIdx >= 0) {
      if (Options.Profiler)
        Options.Profiler->registerObjects(
            Mod.Classes[D.ElemClassIdx].Decl,
            static_cast<uint64_t>(Count), ID, Mod.Sites[D.SiteIdx]);
      if (uint64_t TID = traceAlloc(static_cast<uint32_t>(D.ElemClassIdx),
                                    static_cast<uint64_t>(Count)))
        TraceIDs[Arr] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    for (long long J = 0; J != Count; ++J) {
      if (D.ElemClassIdx >= 0) {
        Storage *ES =
            allocObject(static_cast<uint32_t>(D.ElemClassIdx), nullptr,
                        ID + static_cast<uint64_t>(J));
        Arr->Elems.push_back(ES);
        constructVia(ES, static_cast<uint32_t>(D.ElemClassIdx),
                     Mod.Classes[D.ElemClassIdx].Arity0Ctor, 0, 0, true);
      } else {
        Storage *ES = Arena.createScalar();
        ES->V = Mod.Consts[D.ZeroConstIdx];
        Arr->Elems.push_back(ES);
      }
    }
    VM_RELOAD();
    Pointer P;
    P.Array = Arr;
    P.Index = 0;
    P.Pointee = Arr->Elems.empty() ? nullptr : Arr->Elems.front();
    R[I->A] = Value::ofPtr(P);
  }
  VM_NEXT();

  VM_CASE(NewScal0) : {
    Storage *S = Arena.createScalar();
    S->V = Mod.Consts[I->X];
    R[I->A] = Value::ofPtr({S});
  }
  VM_NEXT();

  VM_CASE(NewScalI) : {
    Storage *S = Arena.createScalar();
    S->V = convert(R[I->B], static_cast<Conv>(I->C));
    R[I->A] = Value::ofPtr({S});
  }
  VM_NEXT();

  VM_CASE(DeleteOp) : {
    Value V = R[I->A];
    if (V.Kind != Value::VK::Ptr)
      fail("delete of non-pointer");
    if (!V.Ptr.isNull()) {
      Storage *Target =
          (I->B && V.Ptr.Array) ? V.Ptr.Array : V.Ptr.Pointee;
      if (Target->Kind == Storage::SK::Scalar) {
        if (!Target->Alive)
          fail("double delete");
        Target->Alive = false;
      } else {
        destroyCompleteObject(Target);
        VM_RELOAD();
      }
    }
  }
  VM_NEXT();

  VM_CASE(CopyInit) : {
    // Copy-initialization silently skips a non-object source
    // (execVarDecl class branch).
    Storage *Obj = R[I->A].Ptr.Pointee;
    const Value &Src = R[I->B];
    if (Src.Kind == Value::VK::Ptr && !Src.Ptr.isNull())
      copyTree(Obj, Src.Ptr.Pointee, /*InitForm=*/true);
  }
  VM_NEXT();

  VM_CASE(CopyAsgn) : {
    const Value &Src = R[I->C];
    if (Src.Kind != Value::VK::Ptr || Src.Ptr.isNull())
      fail("class assignment from non-object");
    copyTree(R[I->B].Ptr.Pointee, Src.Ptr.Pointee, /*InitForm=*/false);
    R[I->A] = R[I->C];
  }
  VM_NEXT();

  VM_CASE(JmpCmpII) : {
    long long A = R[I->A].IntVal;
    long long B = (I->E & 2) ? Mod.Consts[I->D].IntVal : R[I->D].IntVal;
    bool V = false;
    switch (I->C) {
    case 0: V = A < B; break;
    case 1: V = A > B; break;
    case 2: V = A <= B; break;
    case 3: V = A >= B; break;
    case 4: V = A == B; break;
    default: V = A != B; break;
    }
    if (V == ((I->E & 1) != 0))
      PC = I->X;
  }
  VM_NEXT();

  // LdFld/StFld repeat FieldPlace's slot check verbatim: colors are
  // shared across unrelated classes, so the slot must realize the
  // requested field.

  VM_CASE(LdFld) : {
    Storage *S = R[I->B].Ptr.Pointee;
    Storage *FS = nullptr;
    if (S && S->Kind == Storage::SK::Object && I->C < S->Slots.size()) {
      Storage *Cand = S->Slots[I->C];
      if (Cand && Cand->OwnerField == Mod.FieldTable[I->D])
        FS = Cand;
    }
    if (!FS)
      fail(Mod.Msgs[I->X]);
    R[I->A] = loadOrDecay(FS);
  }
  VM_NEXT();

  VM_CASE(StFld) : {
    Storage *S = R[I->B].Ptr.Pointee;
    Storage *FS = nullptr;
    if (S && S->Kind == Storage::SK::Object && I->C < S->Slots.size()) {
      Storage *Cand = S->Slots[I->C];
      if (Cand && Cand->OwnerField == Mod.FieldTable[I->D])
        FS = Cand;
    }
    if (!FS)
      fail(Mod.Msgs[I->X]);
    storeScalar(FS, R[I->A], static_cast<Conv>(I->E));
  }
  VM_NEXT();

  VM_CASE(DivII) : {
    long long B =
        (I->C & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal;
    if (B == 0)
      fail("integer division by zero");
    long long V = R[I->B].IntVal / B;
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Int;
    Dv.IntVal = V;
  }
  VM_NEXT();

  VM_CASE(RemII) : {
    long long B =
        (I->C & 1) ? Mod.Consts[I->X].IntVal : R[I->D].IntVal;
    if (B == 0)
      fail("integer remainder by zero");
    long long V = R[I->B].IntVal % B;
    Value &Dv = R[I->A];
    Dv.Kind = Value::VK::Int;
    Dv.IntVal = V;
  }
  VM_NEXT();

#if !DMM_VM_CGOTO
    }
    fail("vm: corrupt opcode");
  }
#endif
#undef VM_CASE
#undef VM_NEXT
#undef VM_RELOAD
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

ExecResult VM::run(const FunctionDecl *Main) {
  Span Timer("interp"); // Same span name as the tree-walker.
  ExecResult Result;
  GS.assign(Mod.Globals.size(), nullptr);
  GP.assign(Mod.Globals.size(), nullptr);
  Strings.assign(Mod.StringSites.size(), nullptr);
  VCaches.assign(Mod.VSites.size(), VCache{});
  try {
    // Global initialization runs inside one synthetic guest frame,
    // like the tree-walker's global-init frame.
    if (Mod.GlobalInitIdx != NoFunc)
      execFunction(Mod.Functions[Mod.GlobalInitIdx], nullptr, nullptr,
                   /*MostDerived=*/false, /*ArgAbs=*/0, /*Argc=*/0);
    auto It = Mod.FuncIdx.find(Main);
    if (It == Mod.FuncIdx.end())
      fail("call to undefined function '" + Main->qualifiedName() + "'");
    Value Exit = doCall(It->second, nullptr, /*ArgAbs=*/0, /*Argc=*/0);
    // Global teardown runs inside a frame of its own.
    ++Depth;
    for (auto OI = GlobalObjects.rbegin(); OI != GlobalObjects.rend(); ++OI)
      destroyCompleteObject(*OI);
    --Depth;
    Result.Completed = true;
    Result.ExitCode = Exit.asInt();
  } catch (const VMError &E) {
    Result.Completed = false;
    Result.Error = E.Message;
    logDebug("vm run failed", {kv("error", E.Message), kv("steps", Steps)});
  }
  Result.Output = std::move(Output);
  Result.Steps = Steps;
  Telemetry::count("interp.steps", Steps);
  Telemetry::count("interp.calls", NumCalls);
  Telemetry::count("interp.objects", NumCompleteObjects);
  return Result;
}

} // namespace vm
} // namespace dmm
