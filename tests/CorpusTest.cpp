//===-- tests/CorpusTest.cpp - Golden-corpus regression suite -------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-corpus regression tests: every program under tests/corpus/
/// has a checked-in expected JSON report, and the monolithic,
/// summary-linked, cold-cache, and warm-cache pipelines must all
/// reproduce it byte-for-byte. Regenerate goldens after an intentional
/// report change with DMM_UPDATE_GOLDEN=1 (then review the diff).
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/Report.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "support/ThreadPool.h"
#include "vm/VM.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dmm;

namespace {

struct CorpusFile {
  const char *Name;
  bool IsLibrary = false;
};

struct CorpusEntry {
  const char *Name;
  std::vector<CorpusFile> Files;
};

const CorpusEntry kCorpus[] = {
    {"basics", {{"basics.mcc"}}},
    {"inheritance", {{"inheritance.mcc"}}},
    {"unions", {{"unions.mcc"}}},
    {"casts", {{"casts.mcc"}}},
    {"sizeof", {{"sizeof.mcc"}}},
    {"ptrmember", {{"ptrmember.mcc"}}},
    {"dealloc", {{"dealloc.mcc"}}},
    {"volatile", {{"volatile.mcc"}}},
    {"deadcode", {{"deadcode.mcc"}}},
    {"overloads", {{"overloads.mcc"}}},
    {"multifile", {{"multifile_lib.mcc"}, {"multifile_app.mcc"}}},
    {"library", {{"library_vendor.mcc", /*IsLibrary=*/true},
                 {"library_app.mcc"}}},
};

std::filesystem::path corpusDir() { return DMM_CORPUS_DIR; }

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// Compiles a corpus program. Buffer names are the bare file names so
/// the goldens stay machine-independent.
std::unique_ptr<Compilation> compileEntry(const CorpusEntry &Entry) {
  std::vector<SourceFile> Files;
  for (const CorpusFile &F : Entry.Files)
    Files.push_back({F.Name, readFile(corpusDir() / F.Name), F.IsLibrary});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  EXPECT_TRUE(C->Success) << Entry.Name
                          << " does not compile: " << Diag.str();
  return C;
}

/// Renders the report exactly like the CLI's --json path (provenance
/// recorded, locations resolved through the SourceManager).
std::string renderMonolithic(Compilation &C) {
  AnalysisOptions Opts;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Opts);
  DeadMemberResult R = A.run(C.mainFunction());
  std::ostringstream OS;
  printJsonReport(OS, C.context(), R, &C.SM);
  return OS.str();
}

std::string renderSummary(Compilation &C, SummaryCache *Cache) {
  AnalysisOptions Opts;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Opts);
  std::string Error;
  std::optional<DeadMemberResult> R = runSummaryAnalysis(
      C.context(), C.SM, A, C.mainFunction(), Opts, Cache, &Error);
  EXPECT_TRUE(R.has_value()) << "summary link failed: " << Error;
  if (!R)
    return "";
  std::ostringstream OS;
  printJsonReport(OS, C.context(), *R, &C.SM);
  return OS.str();
}

/// Locates the first differing line so a corpus failure reads like a
/// diff rather than two walls of JSON.
std::string firstDifference(const std::string &Expected,
                            const std::string &Actual) {
  std::istringstream E(Expected), A(Actual);
  std::string EL, AL;
  size_t Line = 1;
  while (true) {
    bool GotE = static_cast<bool>(std::getline(E, EL));
    bool GotA = static_cast<bool>(std::getline(A, AL));
    if (!GotE && !GotA)
      return "(no textual difference found)";
    if (GotE != GotA || EL != AL)
      return "first difference at line " + std::to_string(Line) +
             "\n  expected: " + (GotE ? EL : "<end of report>") +
             "\n  actual:   " + (GotA ? AL : "<end of report>");
    ++Line;
  }
}

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, AllPipelinesMatchGolden) {
  const CorpusEntry &Entry = GetParam();
  auto C = compileEntry(Entry);
  ASSERT_TRUE(C->Success);

  const std::string Monolithic = renderMonolithic(*C);
  const std::filesystem::path GoldenPath =
      corpusDir() / (std::string(Entry.Name) + ".expected.json");

  const char *Update = std::getenv("DMM_UPDATE_GOLDEN");
  if (Update && *Update && std::string(Update) != "0") {
    std::ofstream Out(GoldenPath, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << Monolithic;
  }

  const std::string Golden = readFile(GoldenPath);
  EXPECT_EQ(Golden, Monolithic)
      << "monolithic report diverges from golden "
      << GoldenPath.filename() << "\n"
      << firstDifference(Golden, Monolithic);

  const std::string Linked = renderSummary(*C, /*Cache=*/nullptr);
  EXPECT_EQ(Golden, Linked) << "summary-linked report diverges from golden\n"
                            << firstDifference(Golden, Linked);

  const std::filesystem::path CacheDir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("dmm-corpus-cache-") + Entry.Name);
  std::filesystem::remove_all(CacheDir);

  const uint64_t NumFiles = Entry.Files.size();
  {
    SummaryCache Cache(SummaryCache::Config{CacheDir.string()});
    const std::string Cold = renderSummary(*C, &Cache);
    EXPECT_EQ(Golden, Cold) << "cold-cache report diverges from golden\n"
                            << firstDifference(Golden, Cold);
    SummaryCache::Stats S = Cache.stats();
    EXPECT_EQ(S.Hits, 0u);
    EXPECT_EQ(S.Misses, NumFiles);
    EXPECT_EQ(S.Lookups, S.Hits + S.Misses);
  }
  {
    SummaryCache Cache(SummaryCache::Config{CacheDir.string()});
    const std::string Warm = renderSummary(*C, &Cache);
    EXPECT_EQ(Golden, Warm) << "warm-cache report diverges from golden\n"
                            << firstDifference(Golden, Warm);
    SummaryCache::Stats S = Cache.stats();
    EXPECT_EQ(S.Hits, NumFiles);
    EXPECT_EQ(S.Misses, 0u);
    EXPECT_EQ(S.Lookups, S.Hits + S.Misses);
  }
  std::filesystem::remove_all(CacheDir);
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusTest, ::testing::ValuesIn(kCorpus),
                         [](const ::testing::TestParamInfo<CorpusEntry> &I) {
                           return std::string(I.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Distilled fuzzed corpus (ISSUE 8)
//===----------------------------------------------------------------------===//
//
// tests/corpus/fuzzed/ holds the coverage-distilled programs picked by
// `dmm-fuzz --coverage-sweep --distill` (docs/TESTING.md §liveness-
// driven generation). They are single-file programs with no goldens;
// the contract is *internal agreement*: all four analysis pipelines at
// --jobs 1 and 4 must produce one identical report, and both execution
// engines must produce one identical observable run.

std::vector<std::string> fuzzedCorpusFiles() {
  std::vector<std::string> Names;
  const std::filesystem::path Dir = corpusDir() / "fuzzed";
  std::error_code EC;
  for (std::filesystem::directory_iterator It(Dir, EC), End;
       !EC && It != End; It.increment(EC))
    if (It->path().extension() == ".mcc")
      Names.push_back(It->path().filename().string());
  std::sort(Names.begin(), Names.end());
  return Names;
}

std::unique_ptr<Compilation> compileFuzzed(const std::string &Name) {
  std::vector<SourceFile> Files;
  Files.push_back({Name, readFile(corpusDir() / "fuzzed" / Name),
                   /*IsLibrary=*/false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  EXPECT_TRUE(C->Success) << Name << " does not compile: " << Diag.str();
  return C;
}

class FuzzedCorpusTest : public ::testing::TestWithParam<std::string> {
protected:
  void TearDown() override { setGlobalJobs(1); }
};

TEST_P(FuzzedCorpusTest, PipelinesAgreeAcrossJobs) {
  auto C = compileFuzzed(GetParam());
  ASSERT_TRUE(C->Success);

  const std::filesystem::path CacheDir =
      std::filesystem::path(::testing::TempDir()) /
      ("dmm-fuzzed-cache-" + GetParam());

  std::string Reference;
  for (unsigned Jobs : {1u, 4u}) {
    setGlobalJobs(Jobs);
    const std::string Mono = renderMonolithic(*C);
    if (Reference.empty())
      Reference = Mono; // jobs=1 monolithic is the reference.
    EXPECT_EQ(Reference, Mono)
        << "monolithic report diverges at --jobs " << Jobs << "\n"
        << firstDifference(Reference, Mono);

    const std::string Linked = renderSummary(*C, /*Cache=*/nullptr);
    EXPECT_EQ(Reference, Linked)
        << "summary-linked report diverges at --jobs " << Jobs << "\n"
        << firstDifference(Reference, Linked);

    std::filesystem::remove_all(CacheDir);
    {
      SummaryCache Cache(SummaryCache::Config{CacheDir.string()});
      const std::string Cold = renderSummary(*C, &Cache);
      EXPECT_EQ(Reference, Cold)
          << "cold-cache report diverges at --jobs " << Jobs << "\n"
          << firstDifference(Reference, Cold);
    }
    {
      SummaryCache Cache(SummaryCache::Config{CacheDir.string()});
      const std::string Warm = renderSummary(*C, &Cache);
      EXPECT_EQ(Reference, Warm)
          << "warm-cache report diverges at --jobs " << Jobs << "\n"
          << firstDifference(Reference, Warm);
      SummaryCache::Stats S = Cache.stats();
      EXPECT_EQ(S.Hits, 1u);
      EXPECT_EQ(S.Misses, 0u);
    }
  }
  std::filesystem::remove_all(CacheDir);
}

TEST_P(FuzzedCorpusTest, EnginesAgreeByteForByte) {
  auto C = compileFuzzed(GetParam());
  ASSERT_TRUE(C->Success);

  Interpreter Tree(C->context(), C->hierarchy(), {});
  ExecResult T = Tree.run(C->mainFunction());
  ASSERT_TRUE(T.Completed) << "tree-walker error: " << T.Error;

  vm::VM M(C->context(), C->hierarchy(), {});
  ExecResult V = M.run(C->mainFunction());
  ASSERT_TRUE(V.Completed) << "vm error: " << V.Error;

  EXPECT_EQ(T.Output, V.Output);
  EXPECT_EQ(T.ExitCode, V.ExitCode);
  EXPECT_EQ(T.Error, V.Error);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, FuzzedCorpusTest, ::testing::ValuesIn(fuzzedCorpusFiles()),
    [](const ::testing::TestParamInfo<std::string> &I) {
      std::string Name = I.param;
      for (char &Ch : Name)
        if (!std::isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });

} // namespace
