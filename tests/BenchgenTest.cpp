//===-- tests/BenchgenTest.cpp - Benchmark suite tests --------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ProgramStats.h"
#include "benchgen/Synthesizer.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Benchgen, SuiteHasElevenPaperBenchmarks) {
  auto Specs = paperBenchmarks();
  ASSERT_EQ(Specs.size(), 11u);
  EXPECT_EQ(Specs.front().Name, "jikes");
  EXPECT_EQ(Specs.back().Name, "richards");
}

TEST(Benchgen, SpecAveragesMatchPaperProse) {
  // "the average percentage of dead data members is 12.5%" over the
  // nine non-trivial benchmarks; dynamic dead space averages 4.4%; the
  // static range is 3.0%..27.3%.
  double StaticSum = 0, DynamicSum = 0;
  double MinStatic = 100, MaxStatic = 0;
  unsigned NonTrivial = 0;
  for (const BenchmarkSpec &S : paperBenchmarks()) {
    if (S.HandWritten)
      continue; // richards/deltablue: 0%.
    ++NonTrivial;
    StaticSum += S.TargetStaticDeadPct;
    DynamicSum += S.targetDynamicDeadPct();
    MinStatic = std::min(MinStatic, S.TargetStaticDeadPct);
    MaxStatic = std::max(MaxStatic, S.TargetStaticDeadPct);
  }
  ASSERT_EQ(NonTrivial, 9u);
  EXPECT_NEAR(StaticSum / 9.0, 12.5, 0.1);
  EXPECT_NEAR(DynamicSum / 9.0, 4.4, 0.5);
  EXPECT_NEAR(MinStatic, 3.0, 0.01);
  EXPECT_NEAR(MaxStatic, 27.3, 0.01);
}

TEST(Benchgen, LibraryUsersHaveHighestStaticDeadPct) {
  // Paper section 4.4: taldict, simulate, hotwire (class-library users) top
  // the static percentages.
  auto Specs = paperBenchmarks();
  double MinLibrary = 100, MaxOther = 0;
  for (const BenchmarkSpec &S : Specs) {
    if (S.HandWritten)
      continue;
    if (S.UsesClassLibrary)
      MinLibrary = std::min(MinLibrary, S.TargetStaticDeadPct);
    else
      MaxOther = std::max(MaxOther, S.TargetStaticDeadPct);
  }
  EXPECT_GT(MinLibrary, MaxOther);
}

TEST(Benchgen, GenerationIsDeterministic) {
  BenchmarkSpec Spec = benchmarkByName("sched");
  auto A = synthesizeBenchmark(Spec, 0.1);
  auto B = synthesizeBenchmark(Spec, 0.1);
  ASSERT_EQ(A.Files.size(), B.Files.size());
  EXPECT_EQ(A.Files[0].Text, B.Files[0].Text);
}

TEST(Benchgen, ScaleChangesObjectCountsNotStructure) {
  BenchmarkSpec Spec = benchmarkByName("npic");
  auto Small = synthesizeBenchmark(Spec, 0.05);
  auto Large = synthesizeBenchmark(Spec, 0.5);
  // Same classes and members; different loop bounds.
  std::ostringstream D1, D2;
  auto C1 = compileProgram(Small.Files, &D1);
  auto C2 = compileProgram(Large.Files, &D2);
  ASSERT_TRUE(C1->Success && C2->Success);
  EXPECT_EQ(C1->context().classes().size(),
            C2->context().classes().size());
  EXPECT_EQ(C1->context().fields().size(), C2->context().fields().size());
}

TEST(Benchgen, GeneratedLoCApproximatesTarget) {
  BenchmarkSpec Spec = benchmarkByName("hotwire");
  auto G = synthesizeBenchmark(Spec, 0.1);
  unsigned Lines = 1;
  for (char C : G.Files[0].Text)
    if (C == '\n')
      ++Lines;
  EXPECT_NEAR(static_cast<double>(Lines), Spec.TargetLoC,
              Spec.TargetLoC * 0.15);
}

TEST(Benchgen, RichardsComputesCanonicalCounters) {
  std::vector<SourceFile> Files;
  Files.push_back({"richards.mcc", richardsSource(), false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  ExecResult E = runOK(*C);
  EXPECT_EQ(E.ExitCode, 0); // Self-check passed.
  EXPECT_NE(E.Output.find("queueCount=2322"), std::string::npos);
  EXPECT_NE(E.Output.find("holdCount=928"), std::string::npos);
}

TEST(Benchgen, RichardsHasPaperCharacteristics) {
  std::vector<SourceFile> Files;
  Files.push_back({"richards.mcc", richardsSource(), false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  auto R = A.run(C->mainFunction());
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_EQ(St.NumClasses, 12u);
  EXPECT_EQ(St.NumUsedClasses, 12u);
  EXPECT_EQ(St.NumMembersInUsedClasses, 28u);
  EXPECT_EQ(St.NumDeadMembersInUsedClasses, 0u); // Paper: none.
}

TEST(Benchgen, DeltaBlueSolvesChainsWithoutErrors) {
  std::vector<SourceFile> Files;
  Files.push_back({"deltablue.mcc", deltablueSource(), false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  ExecResult E = runOK(*C);
  EXPECT_EQ(E.ExitCode, 0);
  EXPECT_NE(E.Output.find("chain errors=0"), std::string::npos);
}

TEST(Benchgen, DeltaBlueHasPaperCharacteristics) {
  std::vector<SourceFile> Files;
  Files.push_back({"deltablue.mcc", deltablueSource(), false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  auto R = A.run(C->mainFunction());
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_EQ(St.NumClasses, 10u);
  EXPECT_EQ(St.NumMembersInUsedClasses, 23u);
  EXPECT_EQ(St.NumDeadMembersInUsedClasses, 0u); // Paper: none.
  // The port leaves ScaleConstraint uninstantiated (paper: 8 of 10
  // used; base-subobject closure makes our count 9).
  EXPECT_EQ(St.NumUsedClasses, 9u);
}

TEST(Benchgen, SynthesizedProgramsHaveNoLeaksUnderFullRelease) {
  // Retention < 1 benchmarks free churned objects immediately and
  // release the retained ones at the end: nothing may leak.
  BenchmarkSpec Spec = benchmarkByName("npic");
  auto G = synthesizeBenchmark(Spec, 0.05);
  std::ostringstream Diag;
  auto C = compileProgram(G.Files, &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  EXPECT_EQ(T.numLeaked(), 0u);
}

TEST(Benchgen, DeadMembersComeFromAllFourCauses) {
  // The synthesizer must exercise every dead-member cause the paper
  // names: write-only, never-accessed, unreachable reads, and
  // delete-only pointers.
  BenchmarkSpec Spec = benchmarkByName("lcom");
  auto G = synthesizeBenchmark(Spec, 0.05);
  const std::string &Text = G.Files[0].Text;
  EXPECT_NE(Text.find("unused_feature"), std::string::npos);
  EXPECT_NE(Text.find("delete f"), std::string::npos);
}

TEST(Benchgen, HandWrittenSourcesParseStandalone) {
  for (const char *Src : {richardsSource(), deltablueSource()}) {
    std::ostringstream Diag;
    auto C = compileString(Src, &Diag);
    EXPECT_TRUE(C->Success) << Diag.str();
  }
}

} // namespace
