//===-- tests/MetricsTest.cpp - Dynamic measurement tests -----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Metrics, EmptyTraceYieldsZeros) {
  auto C = compileOK("int main() { return 0; }");
  AllocationTrace T;
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  EXPECT_EQ(M.ObjectSpace, 0u);
  EXPECT_EQ(M.HighWaterMark, 0u);
  EXPECT_EQ(M.deadSpacePercent(), 0.0);
  EXPECT_EQ(M.highWaterMarkReductionPercent(), 0.0);
}

TEST(Metrics, ObjectSpaceAccumulatesAllAllocations) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() {
      for (int i = 0; i < 10; i = i + 1) {
        A *p = new A();
        delete p;
      }
      return 0;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  EXPECT_EQ(M.NumObjects, 10u);
  EXPECT_EQ(M.ObjectSpace, 10 * L.layout(findClass(*C, "A")).CompleteSize);
  // Only one object alive at a time.
  EXPECT_EQ(M.HighWaterMark, L.layout(findClass(*C, "A")).CompleteSize);
}

TEST(Metrics, HighWaterMarkTracksPeakNotTotal) {
  auto C = compileOK(R"(
    class A { public: double d; };
    int main() {
      A *a = new A();
      A *b = new A();
      delete a;
      A *c = new A();
      delete b;
      delete c;
      return 0;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  uint64_t Size = L.layout(findClass(*C, "A")).CompleteSize;
  EXPECT_EQ(M.ObjectSpace, 3 * Size);
  EXPECT_EQ(M.HighWaterMark, 2 * Size); // Never 3 alive at once.
}

TEST(Metrics, AllocateAndHoldMakesHWMEqualTotal) {
  // The behaviour the paper observed for sched and hotwire.
  auto C = compileOK(R"(
    class A { public: int x; };
    A *keep[8];
    int main() {
      for (int i = 0; i < 8; i = i + 1) { keep[i] = new A(); }
      return 0;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  EXPECT_EQ(M.HighWaterMark, M.ObjectSpace);
}

TEST(Metrics, DeadSpaceUsesDeadSet) {
  auto C = compileOK(R"(
    class A { public: int live; int dead1; int dead2; };
    int main() {
      A *p = new A();
      int r = p->live;
      delete p;
      return r;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  auto R = analyze(*C);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, R.deadSet());
  EXPECT_EQ(M.DeadMemberSpace, 8u); // Two dead ints.
  EXPECT_EQ(M.ObjectSpace, 12u);
  EXPECT_NEAR(M.deadSpacePercent(), 100.0 * 8 / 12, 0.01);
}

TEST(Metrics, ArrayAllocationsCountPerElement) {
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() {
      A *arr = new A[5];
      int r = arr[0].x;
      delete[] arr;
      return r;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  EXPECT_EQ(M.NumObjects, 5u);
  EXPECT_EQ(M.ObjectSpace, 5 * L.layout(findClass(*C, "A")).CompleteSize);
}

TEST(Metrics, HWMWithoutDeadUsesRelayout) {
  auto C = compileOK(R"(
    class A { public: int live; double deadWeight; };
    A *keep[4];
    int main() {
      int r = 0;
      for (int i = 0; i < 4; i = i + 1) {
        keep[i] = new A();
        r = r + keep[i]->live;
      }
      return r;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  auto R = analyze(*C);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, R.deadSet());
  // Full: 16 bytes (int + pad + double); shrunk: 4 bytes.
  EXPECT_EQ(M.HighWaterMark, 4 * 16u);
  EXPECT_EQ(M.HighWaterMarkNoDead, 4 * 4u);
  EXPECT_NEAR(M.highWaterMarkReductionPercent(), 75.0, 0.01);
}

TEST(Metrics, TwoHighWaterMarksMayOccurAtDifferentTimes) {
  // Paper section 4.3: the original and the shrunk high-water marks can peak
  // at different execution points. Dead-heavy objects peak first, then
  // are replaced by a larger number of lean objects.
  auto C = compileOK(R"(
    class Fat { public: int live; double d1; double d2; double d3; };
    class Lean { public: int live; };
    Lean *keep[10];
    int main() {
      Fat *f1 = new Fat();
      Fat *f2 = new Fat();
      int r = f1->live + f2->live;
      delete f1;
      delete f2;
      for (int i = 0; i < 10; i = i + 1) {
        keep[i] = new Lean();
        r = r + keep[i]->live;
      }
      return r;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  auto R = analyze(*C);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, R.deadSet());
  // The original HWM peaks while the two fat objects are alive
  // (2 * 32 = 64 > 10 * 4); the shrunk HWM peaks later, with the ten
  // lean objects (10 * 4 = 40 > 2 * 4): two different execution points.
  EXPECT_LE(M.HighWaterMarkNoDead, M.HighWaterMark);
  EXPECT_EQ(M.HighWaterMark, 2 * 32u);
  EXPECT_EQ(M.HighWaterMarkNoDead, 10 * 4u);
}

TEST(Metrics, FreeBuiltinReleasesTracedBytes) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() {
      A *a = new A();
      free(a);
      A *b = new A();
      free(b);
      return 0;
    }
  )");
  AllocationTrace T;
  InterpOptions IO;
  IO.Trace = &T;
  runOK(*C, IO);
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(T, L, {});
  uint64_t Size = L.layout(findClass(*C, "A")).CompleteSize;
  EXPECT_EQ(M.HighWaterMark, Size); // Freed between allocations.
  EXPECT_EQ(T.numLeaked(), 0u);
}

} // namespace
