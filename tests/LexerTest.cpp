//===-- tests/LexerTest.cpp - Lexer tests ---------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include "gtest/gtest.h"

#include <memory>

using namespace dmm;

namespace {

std::vector<Token> lexAll(const std::string &Text, unsigned *Errors = nullptr) {
  // Token::Text views into the buffer; keep every SourceManager alive
  // for the process so returned tokens stay valid.
  static std::vector<std::unique_ptr<SourceManager>> Keep;
  Keep.push_back(std::make_unique<SourceManager>());
  SourceManager &SM = *Keep.back();
  uint32_t ID = SM.addBuffer("test.mcc", Text);
  DiagnosticsEngine Diags(SM);
  Lexer L(SM, ID, Diags);
  auto Tokens = L.lexAll();
  if (Errors)
    *Errors = Diags.errorCount();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::string &Text) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lexAll(Text))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInputYieldsEOF) {
  EXPECT_EQ(kindsOf(""), std::vector<TokenKind>{TokenKind::EndOfFile});
}

TEST(Lexer, Identifiers) {
  auto Tokens = lexAll("foo _bar baz42");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "baz42");
}

TEST(Lexer, KeywordsAreDistinguishedFromIdentifiers) {
  auto Tokens = lexAll("class classy virtual virtually");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwVirtual);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lexAll("0 42 123456789");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
}

TEST(Lexer, DoubleLiterals) {
  auto Tokens = lexAll("3.25 1e3 2.5e-2");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(Tokens[0].DoubleValue, 3.25);
  EXPECT_DOUBLE_EQ(Tokens[1].DoubleValue, 1000.0);
  EXPECT_DOUBLE_EQ(Tokens[2].DoubleValue, 0.025);
}

TEST(Lexer, IntFollowedByMemberAccessIsNotADouble) {
  // `x.y` after a digit: `1.f` style is not in the language; but `a[1].m`
  // must lex `1` `]` `.` `m`.
  auto Kinds = kindsOf("a[1].m");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LBracket, TokenKind::IntLiteral,
      TokenKind::RBracket,   TokenKind::Period,   TokenKind::Identifier,
      TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CharLiteralsWithEscapes) {
  auto Tokens = lexAll(R"('a' '\n' '\0' '\\')");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
  EXPECT_EQ(Tokens[3].IntValue, '\\');
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto Tokens = lexAll(R"("hello\tworld\n")");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].StringValue, "hello\tworld\n");
}

TEST(Lexer, CompoundPunctuation) {
  auto Kinds = kindsOf(":: -> ->* .* ++ -- << >> <= >= == != && || += %=");
  std::vector<TokenKind> Expected = {
      TokenKind::ColonColon,   TokenKind::Arrow,
      TokenKind::ArrowStar,    TokenKind::PeriodStar,
      TokenKind::PlusPlus,     TokenKind::MinusMinus,
      TokenKind::LessLess,     TokenKind::GreaterGreater,
      TokenKind::LessEqual,    TokenKind::GreaterEqual,
      TokenKind::EqualEqual,   TokenKind::ExclaimEqual,
      TokenKind::AmpAmp,       TokenKind::PipePipe,
      TokenKind::PlusEqual,    TokenKind::PercentEqual,
      TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, LineCommentsAreSkipped) {
  auto Kinds = kindsOf("a // comment with ; and {\nb");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier,
                                     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, BlockCommentsAreSkipped) {
  auto Kinds = kindsOf("a /* multi\nline\ncomment */ b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier,
                                     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  unsigned Errors = 0;
  lexAll("a /* never closed", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, UnterminatedStringIsAnError) {
  unsigned Errors = 0;
  lexAll("\"open\n", &Errors);
  EXPECT_GE(Errors, 1u);
}

TEST(Lexer, UnknownCharacterIsAnError) {
  unsigned Errors = 0;
  auto Tokens = lexAll("a @ b", &Errors);
  EXPECT_EQ(Errors, 1u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Unknown);
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  SourceManager SM;
  uint32_t ID = SM.addBuffer("t.mcc", "ab\n  cd\n");
  DiagnosticsEngine Diags(SM);
  Lexer L(SM, ID, Diags);
  Token T1 = L.lex();
  Token T2 = L.lex();
  PresumedLoc P1 = SM.presumedLoc(T1.Loc);
  PresumedLoc P2 = SM.presumedLoc(T2.Loc);
  EXPECT_EQ(P1.Line, 1u);
  EXPECT_EQ(P1.Column, 1u);
  EXPECT_EQ(P2.Line, 2u);
  EXPECT_EQ(P2.Column, 3u);
}

TEST(Lexer, MinusGreaterStarNeedsAllThreeChars) {
  auto Kinds = kindsOf("a - > b");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Minus, TokenKind::Greater,
      TokenKind::Identifier, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, EOFIsSticky) {
  SourceManager SM;
  uint32_t ID = SM.addBuffer("t.mcc", "x");
  DiagnosticsEngine Diags(SM);
  Lexer L(SM, ID, Diags);
  L.lex();
  EXPECT_EQ(L.lex().Kind, TokenKind::EndOfFile);
  EXPECT_EQ(L.lex().Kind, TokenKind::EndOfFile);
}

} // namespace
