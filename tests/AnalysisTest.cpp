//===-- tests/AnalysisTest.cpp - Dead-member analysis tests ---------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for every case of the paper's Figure 2 algorithm: reads,
// write-only members, address-taken members, pointer-to-member constants,
// unsafe casts, unions, sizeof policies, the delete/free exemption,
// volatile members, library classes, and the reachability dependence on
// the call graph.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Analysis, WriteOnlyMemberIsDead) {
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() { A a; a.x = 1; return a.y; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"A::x"});
  EXPECT_EQ(R.reason(findField(*C, "A", "y")), LivenessReason::Read);
}

TEST(Analysis, NeverAccessedMemberIsDead) {
  auto C = compileOK(R"(
    class A { public: int used; int unused; };
    int main() { A a; return a.used; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"A::unused"});
}

TEST(Analysis, ConstructorInitializationDoesNotCreateLiveness) {
  // The paper's central motivation: members initialized in constructors
  // would otherwise never be dead.
  auto C = compileOK(R"(
    class A {
    public:
      int x;
      int y;
      A() : x(1) { y = 2; }
    };
    int main() { A a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), (std::set<std::string>{"A::x", "A::y"}));
}

TEST(Analysis, CtorInitializerArgumentsAreReads) {
  auto C = compileOK(R"(
    class B { public: int src; };
    class A {
    public:
      int dst;
      A(B *b) : dst(b->src) {}
    };
    int main() { B b; A a(&b); return 0; }
  )");
  auto R = analyze(*C);
  // dst is written only; src is read by the initializer argument.
  EXPECT_EQ(deadNames(R), std::set<std::string>{"A::dst"});
}

TEST(Analysis, CompoundAssignmentReads) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; a.x += 2; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(deadNames(R).empty());
}

TEST(Analysis, IncrementReads) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; a.x++; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "x")));
}

TEST(Analysis, AddressTakenIsLive) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int deref(int *p) { return *p; }
    int main() { A a; return deref(&a.x); }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(deadNames(R).empty());
  EXPECT_EQ(R.reason(findField(*C, "A", "x")),
            LivenessReason::AddressTaken);
}

TEST(Analysis, AddressTakenWithoutUseIsStillLive) {
  // "We do not attempt to trace the use of such addresses."
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; int *p = &a.x; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "A", "x")),
            LivenessReason::AddressTaken);
}

TEST(Analysis, PointerToMemberConstantIsLive) {
  // Fig. 2 lines 26-28: &Z::m marks Z::m live.
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() {
      int A::* pm = &A::x;
      A a;
      return a.*pm;
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "A", "x")),
            LivenessReason::PointerToMember);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"A::y"});
}

TEST(Analysis, QualifiedMemberAccessUsesNamedClass) {
  auto C = compileOK(R"(
    class A { public: int m; };
    class B : public A { public: int n; };
    int main() { B b; return b.A::m; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "m")));
  EXPECT_EQ(deadNames(R), std::set<std::string>{"B::n"});
}

TEST(Analysis, MemberReadThroughBaseLookup) {
  // Lookup resolves m in a base class of the access's static type.
  auto C = compileOK(R"(
    class A { public: int m; };
    class B : public A { public: int n; };
    int main() { B b; return b.m; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "m")));
  EXPECT_FALSE(R.isLive(findField(*C, "B", "n")));
}

TEST(Analysis, NestedMemberAccessMarksBothMembers) {
  // Paper example: b.mb2.mn1 marks B::mb2 and N::mn1 live.
  auto C = compileOK(R"(
    class N { public: int mn1; int mn2; };
    class B { public: N mb2; };
    int main() { B b; return b.mb2.mn1; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "B", "mb2")));
  EXPECT_TRUE(R.isLive(findField(*C, "N", "mn1")));
  EXPECT_EQ(deadNames(R), std::set<std::string>{"N::mn2"});
}

TEST(Analysis, WriteThroughNestedMemberKeepsOuterLive) {
  // Conservative: only the outermost member of a write target is exempt.
  auto C = compileOK(R"(
    class N { public: int inner; };
    class B { public: N outer; };
    int main() { B b; b.outer.inner = 3; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "B", "outer")));
  EXPECT_FALSE(R.isLive(findField(*C, "N", "inner")));
}

TEST(Analysis, ImplicitThisAccessCountsAsRead) {
  auto C = compileOK(R"(
    class A {
    public:
      int m;
      int get() { return m; }
    };
    int main() { A a; return a.get(); }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "m")));
}

TEST(Analysis, ImplicitThisWriteIsNotLive) {
  auto C = compileOK(R"(
    class A {
    public:
      int m;
      void set(int v) { m = v; }
    };
    int main() { A a; a.set(4); return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"A::m"});
}

//===----------------------------------------------------------------------===//
// delete / free exemption
//===----------------------------------------------------------------------===//

TEST(Analysis, DeleteOfMemberDoesNotCreateLiveness) {
  // "Data members that are pointers to objects are typically passed to
  // delete in the enclosing class's destructor."
  auto C = compileOK(R"(
    class P { public: int v; };
    class A {
    public:
      P *owned;
      A() { owned = nullptr; }
      ~A() { delete owned; }
    };
    int main() { A *a = new A(); delete a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "owned")));
}

TEST(Analysis, FreeOfMemberDoesNotCreateLiveness) {
  auto C = compileOK(R"(
    class A {
    public:
      int *buffer;
      A() { buffer = new int[4]; }
      ~A() { free(buffer); }
    };
    int main() { A *a = new A(); delete a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "buffer")));
}

TEST(Analysis, DeleteThroughCastStillExempt) {
  auto C = compileOK(R"(
    class P { public: int v; };
    class A {
    public:
      P *owned;
      ~A() { delete (P*)owned; }
    };
    int main() { A *a = new A(); delete a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "owned")));
}

TEST(Analysis, DeleteExemptionCanBeDisabled) {
  auto C = compileOK(R"(
    class P { public: int v; };
    class A {
    public:
      P *owned;
      ~A() { delete owned; }
    };
    int main() { A *a = new A(); delete a; return 0; }
  )");
  AnalysisOptions Opts;
  Opts.ExemptDeallocationArgs = false;
  auto R = analyze(*C, Opts);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "owned")));
}

TEST(Analysis, MemberBelowDeleteArgumentIsStillRead) {
  // `delete a.link->owned`: owned is exempt, link is read.
  auto C = compileOK(R"(
    class P { public: int v; };
    class Node { public: P *owned; };
    class A { public: Node *link; };
    int main() {
      A a;
      a.link = new Node();
      delete a.link->owned;
      return 0;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "link")));
  EXPECT_TRUE(R.isDead(findField(*C, "Node", "owned")));
}

//===----------------------------------------------------------------------===//
// volatile
//===----------------------------------------------------------------------===//

TEST(Analysis, VolatileMemberLiveWhenWritten) {
  auto C = compileOK(R"(
    class A { public: volatile int reg; int plain; };
    int main() { A a; a.reg = 1; a.plain = 1; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "A", "reg")),
            LivenessReason::VolatileWrite);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "plain")));
}

TEST(Analysis, VolatileMemberWrittenInCtorInitializer) {
  auto C = compileOK(R"(
    class A {
    public:
      volatile int reg;
      A() : reg(7) {}
    };
    int main() { A a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "reg")));
}

TEST(Analysis, VolatileMemberNeverTouchedIsDead) {
  auto C = compileOK(R"(
    class A { public: volatile int reg; };
    int main() { A a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "reg")));
}

//===----------------------------------------------------------------------===//
// Unsafe casts
//===----------------------------------------------------------------------===//

TEST(Analysis, DowncastConservativeMarksSourceMembers) {
  auto C = compileOK(R"(
    class A { public: int am; };
    class B : public A { public: int bm; };
    int main() {
      B b;
      A *a = &b;
      B *p = (B*)a;
      return 0;
    }
  )");
  AnalysisOptions Opts;
  Opts.AssumeDowncastsSafe = false;
  auto R = analyze(*C, Opts);
  // The cast source has static type A*: A's members become live; B::bm
  // is only contained in B.
  EXPECT_EQ(R.reason(findField(*C, "A", "am")),
            LivenessReason::UnsafeCast);
  EXPECT_TRUE(R.isDead(findField(*C, "B", "bm")));
}

TEST(Analysis, DowncastAssumedSafeByDefault) {
  auto C = compileOK(R"(
    class A { public: int am; };
    class B : public A { public: int bm; };
    int main() {
      B b;
      A *a = &b;
      B *p = (B*)a;
      return 0;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "am")));
  EXPECT_TRUE(R.isDead(findField(*C, "B", "bm")));
}

TEST(Analysis, UpcastIsAlwaysSafe) {
  auto C = compileOK(R"(
    class A { public: int am; };
    class B : public A { public: int bm; };
    int main() {
      B b;
      A *a = (A*)&b;
      return 0;
    }
  )");
  AnalysisOptions Opts;
  Opts.AssumeDowncastsSafe = false;
  auto R = analyze(*C, Opts);
  EXPECT_EQ(deadNames(R), (std::set<std::string>{"A::am", "B::bm"}));
}

TEST(Analysis, ReinterpretBetweenUnrelatedClassesMarksSource) {
  auto C = compileOK(R"(
    class A { public: int am; };
    class B { public: int bm; };
    int main() {
      A a;
      B *p = reinterpret_cast<B*>(&a);
      return 0;
    }
  )");
  auto R = analyze(*C);
  // Unrelated reinterpretation is unsafe regardless of downcast policy.
  EXPECT_EQ(R.reason(findField(*C, "A", "am")),
            LivenessReason::UnsafeCast);
}

TEST(Analysis, UnsafeCastMarksContainedMembersTransitively) {
  auto C = compileOK(R"(
    class Inner { public: int i1; };
    class Base { public: int b1; };
    class A : public Base { public: Inner nested; int a1; };
    class Unrelated { public: int u1; };
    int main() {
      A a;
      Unrelated *p = reinterpret_cast<Unrelated*>(&a);
      return 0;
    }
  )");
  auto R = analyze(*C);
  // MarkAllContainedMembers covers own members, nested member classes,
  // and base classes.
  EXPECT_TRUE(R.isLive(findField(*C, "A", "a1")));
  EXPECT_TRUE(R.isLive(findField(*C, "A", "nested")));
  EXPECT_TRUE(R.isLive(findField(*C, "Inner", "i1")));
  EXPECT_TRUE(R.isLive(findField(*C, "Base", "b1")));
  EXPECT_TRUE(R.isDead(findField(*C, "Unrelated", "u1")));
}

//===----------------------------------------------------------------------===//
// Unions
//===----------------------------------------------------------------------===//

TEST(Analysis, UnionClosureMarksSiblings) {
  // Fig. 2 lines 9-11: one live union member enlivens the others.
  auto C = compileOK(R"(
    union U { public: int a; int b; int c; };
    int main() { U u; u.b = 1; return u.a; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "U", "a")));
  EXPECT_EQ(R.reason(findField(*C, "U", "b")),
            LivenessReason::UnionClosure);
  EXPECT_TRUE(R.isLive(findField(*C, "U", "c")));
}

TEST(Analysis, FullyDeadUnionStaysDead) {
  auto C = compileOK(R"(
    union U { public: int a; int b; };
    class A { public: int x; };
    int main() { U u; u.a = 1; A a; return a.x; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "U", "a")));
  EXPECT_TRUE(R.isDead(findField(*C, "U", "b")));
}

TEST(Analysis, UnionClosureCanBeDisabled) {
  auto C = compileOK(R"(
    union U { public: int a; int b; };
    int main() { U u; u.b = 1; return u.a; }
  )");
  AnalysisOptions Opts;
  Opts.UnionClosure = false;
  auto R = analyze(*C, Opts);
  EXPECT_TRUE(R.isLive(findField(*C, "U", "a")));
  EXPECT_TRUE(R.isDead(findField(*C, "U", "b"))); // Unsound, by request.
}

TEST(Analysis, UnionWithNestedClassMemberClosesOverContents) {
  auto C = compileOK(R"(
    class Payload { public: int p1; int p2; };
    union U { public: Payload data; int raw; };
    int main() { U u; return u.raw; }
  )");
  auto R = analyze(*C);
  // raw is read; the closure must mark data and Payload's members.
  EXPECT_TRUE(R.isLive(findField(*C, "U", "data")));
  EXPECT_TRUE(R.isLive(findField(*C, "Payload", "p1")));
  EXPECT_TRUE(R.isLive(findField(*C, "Payload", "p2")));
}

//===----------------------------------------------------------------------===//
// sizeof
//===----------------------------------------------------------------------===//

TEST(Analysis, SizeofIgnoredByDefaultPolicy) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { return sizeof(A); }
  )");
  auto R = analyze(*C); // Default: IgnoreAll, like the paper's runs.
  EXPECT_TRUE(R.isDead(findField(*C, "A", "x")));
}

TEST(Analysis, SizeofConservativeMarksClassMembers) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { return sizeof(A); }
  )");
  AnalysisOptions Opts;
  Opts.Sizeof = SizeofPolicy::Conservative;
  auto R = analyze(*C, Opts);
  EXPECT_EQ(R.reason(findField(*C, "A", "x")),
            LivenessReason::SizeofConservative);
}

TEST(Analysis, SizeofOperandIsNotEvaluated) {
  // sizeof(a.x) does not read x even under the conservative policy the
  // operand's *type* drives the marking, not an evaluation.
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; return sizeof(a.x); }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "x")));
}

//===----------------------------------------------------------------------===//
// Reachability / call graph
//===----------------------------------------------------------------------===//

TEST(Analysis, ReadInUnreachableFunctionIsDead) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int neverCalled(A *a) { return a->x; }
    int main() { A a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "x")));
}

TEST(Analysis, ReadInUnreachableMethodIsDead) {
  auto C = compileOK(R"(
    class A {
    public:
      int x;
      int neverCalled() { return x; }
    };
    int main() { A a; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "x")));
}

TEST(Analysis, TrivialCallGraphSeesUnreachableReads) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int neverCalled(A *a) { return a->x; }
    int main() { A a; return 0; }
  )");
  AnalysisOptions Opts;
  Opts.CallGraph = CallGraphKind::Trivial;
  auto R = analyze(*C, Opts);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "x")));
}

TEST(Analysis, RTAExcludesUninstantiatedReceivers) {
  // The paper's C::mc1 discussion: a more precise call graph can
  // exclude methods of classes that are never created.
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 0; } };
    class B : public A { public: virtual int f() { return mb; } int mb; };
    class CC : public A { public: virtual int f() { return mc; } int mc; };
    int main() {
      A *p = new B();
      return p->f();
    }
  )");
  AnalysisOptions RTA;
  RTA.CallGraph = CallGraphKind::RTA;
  auto R1 = analyze(*C, RTA);
  EXPECT_TRUE(R1.isLive(findField(*C, "B", "mb")));
  EXPECT_TRUE(R1.isDead(findField(*C, "CC", "mc"))); // CC never created.

  AnalysisOptions CHA;
  CHA.CallGraph = CallGraphKind::CHA;
  auto R2 = analyze(*C, CHA);
  EXPECT_TRUE(R2.isLive(findField(*C, "CC", "mc"))); // CHA can't tell.
}

TEST(Analysis, FunctionPointerCalleeIsReachable) {
  auto C = compileOK(R"(
    class A { public: int x; };
    A g;
    int reader(int v) { return g.x + v; }
    int main() {
      int (*fp)(int) = &reader;
      return fp(1);
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "x")));
}

TEST(Analysis, PaperFigure1Example) {
  // The worked example of paper section 3.1, verbatim structure.
  auto C = compileOK(R"(
    class N { public: int mn1; int mn2; };
    class A {
    public:
      virtual int f() { return ma1; }
      int ma1; int ma2; int ma3;
    };
    class B : public A {
    public:
      virtual int f() { return mb1; }
      int mb1; N mb2; int mb3; int mb4;
    };
    class CC : public A {
    public:
      virtual int f() { return mc1; }
      int mc1;
    };
    int foo(int *x) { return (*x) + 1; }
    int main() {
      A a; B b; CC c;
      A *ap;
      a.ma3 = b.mb3 + 1;
      int i = 10;
      if (i < 20) { ap = &a; } else { ap = &b; }
      return ap->f() + b.mb2.mn1 + foo(&b.mb4);
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R),
            (std::set<std::string>{"N::mn2", "A::ma2", "A::ma3"}));
}

//===----------------------------------------------------------------------===//
// Library classes (paper 3.3)
//===----------------------------------------------------------------------===//

TEST(Analysis, LibraryClassMembersAreNotClassified) {
  std::vector<SourceFile> Files;
  Files.push_back({"lib.mcc", R"(
    class LibBase {
    public:
      int libMember;
      virtual int callback() { return 0; }
    };
  )", /*IsLibrary=*/true});
  Files.push_back({"app.mcc", R"(
    class App : public LibBase {
    public:
      int appDead;
      int appLive;
      virtual int callback() { return appLive; }
    };
    int main() { App a; return 0; }
  )", /*IsLibrary=*/false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();

  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  auto R = A.run(C->mainFunction());

  const FieldDecl *Lib = findField(*C, "LibBase", "libMember");
  EXPECT_FALSE(R.canClassify(Lib));
  EXPECT_FALSE(R.isDead(Lib)); // Never reported dead.

  // The library may call back into the override: appLive must be live
  // even though no user code calls callback().
  EXPECT_TRUE(R.isLive(findField(*C, "App", "appLive")));
  EXPECT_TRUE(R.isDead(findField(*C, "App", "appDead")));
}

//===----------------------------------------------------------------------===//
// Baseline mode
//===----------------------------------------------------------------------===//

TEST(Analysis, BaselineCountsWritesAsLive) {
  auto C = compileOK(R"(
    class A { public: int written; int untouched; };
    int main() { A a; a.written = 1; return 0; }
  )");
  AnalysisOptions Opts;
  Opts.TreatWritesAsLive = true;
  auto R = analyze(*C, Opts);
  EXPECT_EQ(R.reason(findField(*C, "A", "written")),
            LivenessReason::Written);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "untouched")));
}

TEST(Analysis, BaselineFindsFewerDeadMembersThanPaperAlgorithm) {
  auto C = compileOK(R"(
    class A {
    public:
      int initialized;
      int untouched;
      A() : initialized(1) {}
    };
    int main() { A a; return 0; }
  )");
  auto Paper = analyze(*C);
  AnalysisOptions BOpts;
  BOpts.TreatWritesAsLive = true;
  auto Baseline = analyze(*C, BOpts);
  EXPECT_EQ(deadNames(Paper).size(), 2u);
  EXPECT_EQ(deadNames(Baseline).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Misc structure
//===----------------------------------------------------------------------===//

TEST(Analysis, StructMembersAreAnalyzedLikeClassMembers) {
  auto C = compileOK(R"(
    struct S { int a; int b; };
    int main() { S s; s.a = 1; return s.b; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"S::a"});
}

TEST(Analysis, ArrayMemberReadIsLive) {
  auto C = compileOK(R"(
    class A { public: int data[4]; int pad[4]; };
    int main() { A a; return a.data[2]; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "data")));
  EXPECT_TRUE(R.isDead(findField(*C, "A", "pad")));
}

TEST(Analysis, MemberFunctionPointerFieldRead) {
  auto C = compileOK(R"(
    int twice(int v) { return v * 2; }
    class A {
    public:
      int (*handler)(int);
      A() { handler = &twice; }
    };
    int main() { A a; return a.handler(3); }
  )");
  auto R = analyze(*C);
  // Calling through the member reads its value.
  EXPECT_TRUE(R.isLive(findField(*C, "A", "handler")));
}

TEST(Analysis, DeadSetMatchesDeadMembers) {
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() { A a; return a.x; }
  )");
  auto R = analyze(*C);
  FieldSet Dead = R.deadSet();
  EXPECT_EQ(Dead.size(), 1u);
  EXPECT_TRUE(Dead.count(findField(*C, "A", "y")));
}

TEST(Analysis, ReasonsAreStableFirstCause) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; int v = a.x; int *p = &a.x; return v; }
  )");
  auto R = analyze(*C);
  // Read happens first in program order.
  EXPECT_EQ(R.reason(findField(*C, "A", "x")), LivenessReason::Read);
}

} // namespace

namespace {

TEST(Analysis, InertFunctionArgumentsAreExempt) {
  // Paper footnote 3: "Other system functions (e.g., strcpy) that are
  // known not to affect some of their parameters could be treated as a
  // special case as well."
  auto C = compileOK(R"(
    class A { public: int *buffer; A() { buffer = nullptr; } };
    void log_ptr(int *p) { if (p != nullptr) { print_int(1); } }
    int main() {
      A a;
      log_ptr(a.buffer);
      return 0;
    }
  )");
  // Without the assertion, the pass-to-call is a read.
  auto Plain = analyze(*C);
  EXPECT_TRUE(Plain.isLive(findField(*C, "A", "buffer")));

  AnalysisOptions Opts;
  Opts.InertFunctions.insert("log_ptr");
  auto Asserted = analyze(*C, Opts);
  EXPECT_TRUE(Asserted.isDead(findField(*C, "A", "buffer")));
}

TEST(Analysis, InertFunctionOnlyExemptsDirectMemberArgs) {
  auto C = compileOK(R"(
    class A { public: int *buffer; int extra; };
    void sink(int *p) { if (p == nullptr) { print_int(0); } }
    int main() {
      A a;
      sink(a.buffer + a.extra);
      return 0;
    }
  )");
  AnalysisOptions Opts;
  Opts.InertFunctions.insert("sink");
  auto R = analyze(*C, Opts);
  // The argument is a computed expression, not a direct member value:
  // both members are read to compute it.
  EXPECT_TRUE(R.isLive(findField(*C, "A", "buffer")));
  EXPECT_TRUE(R.isLive(findField(*C, "A", "extra")));
}

} // namespace
