//===-- tests/StatsSchemaTest.cpp - Stats schema & report tests -----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the JSON parser, the versioned dmm-stats document
/// (build → print → parse round trip, strict validation, parent-id
/// resolution at every --jobs level), and the HTML report renderer.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/ThreadPool.h"
#include "telemetry/HtmlReport.h"
#include "telemetry/Json.h"
#include "telemetry/Stats.h"
#include "telemetry/Telemetry.h"

#include <sstream>

using namespace dmm;
using namespace dmm::test;

namespace {

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

json::Value parseJsonOK(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Error;
  return V;
}

bool jsonParseFails(const std::string &Text) {
  json::Value V;
  std::string Error;
  return !json::parse(Text, V, Error);
}

TEST(Json, ParsesScalarsArraysAndObjects) {
  json::Value V = parseJsonOK(
      R"({"a": 1, "b": -2.5e2, "c": "s\u0041\n", "d": [true, false, null]})");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.getNumber("a"), 1.0);
  EXPECT_EQ(V.getNumber("b"), -250.0);
  EXPECT_EQ(V.getString("c"), "sA\n");
  const json::Value *D = V.get("d");
  ASSERT_NE(D, nullptr);
  ASSERT_TRUE(D->isArray());
  ASSERT_EQ(D->array().size(), 3u);
  EXPECT_TRUE(D->array()[0].boolean());
  EXPECT_FALSE(D->array()[1].boolean());
  EXPECT_TRUE(D->array()[2].isNull());
}

TEST(Json, StrictnessRejectsMalformedInput) {
  EXPECT_TRUE(jsonParseFails(""));
  EXPECT_TRUE(jsonParseFails("{"));
  EXPECT_TRUE(jsonParseFails("{} trailing"));
  EXPECT_TRUE(jsonParseFails("{\"a\": 01}"));
  EXPECT_TRUE(jsonParseFails("{\"a\": }"));
  EXPECT_TRUE(jsonParseFails("[1, 2,]"));
  EXPECT_TRUE(jsonParseFails("\"unterminated"));
  EXPECT_TRUE(jsonParseFails("\"bad \\x escape\""));
  EXPECT_TRUE(jsonParseFails("{\"a\" 1}"));
  EXPECT_TRUE(jsonParseFails("nul"));
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  json::Value V = parseJsonOK("\"\\ud83d\\ude00\"");
  EXPECT_EQ(V.str(), "\xF0\x9F\x98\x80");
  EXPECT_TRUE(jsonParseFails("\"\\ud83d\"")); // Unpaired high surrogate.
}

//===----------------------------------------------------------------------===//
// Stats document
//===----------------------------------------------------------------------===//

/// Runs the pipeline under \p Tel with a root span, like the driver
/// does.
void runPipeline(Telemetry &Tel) {
  TelemetryScope Scope(Tel);
  Span Root("pipeline");
  auto C = compileOK("class P { public: int x; int y; };\n"
                     "int main() { P p; p.x = 1; return p.x; }\n");
  analyze(*C);
}

std::string statsJsonForJobs(unsigned Jobs) {
  const unsigned Prev = globalThreadPool().jobs();
  setGlobalJobs(Jobs);
  Telemetry Tel;
  runPipeline(Tel);
  setGlobalJobs(Prev);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", Jobs);
  std::ostringstream OS;
  stats::printStats(D, OS);
  return OS.str();
}

TEST(StatsSchema, RoundTripFromLivePipeline) {
  std::string Text = statsJsonForJobs(2);

  // Strict JSON first, then the schema-aware parse.
  json::Value Raw;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, Raw, Error)) << Error;
  EXPECT_EQ(Raw.getString("schema"), stats::kSchemaName);

  stats::StatsDocument D;
  ASSERT_TRUE(stats::parseStats(Text, D, Error)) << Error;
  EXPECT_EQ(D.Version, stats::kSchemaVersion);
  EXPECT_EQ(D.Tool, "deadmember test");
  EXPECT_EQ(D.Jobs, 2u);
  EXPECT_FALSE(D.Spans.empty());

  // The driver-stable phase names survive the round trip.
  for (const char *Name : {"pipeline", "lex", "parse", "sema", "callgraph",
                           "analysis"}) {
    bool Found = false;
    for (const stats::PhaseRow &P : D.Phases)
      Found = Found || P.Name == Name;
    EXPECT_TRUE(Found) << "missing phase " << Name;
  }

  // The pipeline span is the root; pipeline children link to it.
  ASSERT_EQ(D.Spans[0].Name, "pipeline");
  EXPECT_EQ(D.Spans[0].Parent, 0u);
  size_t Children = 0;
  for (const stats::SpanStat &S : D.Spans)
    if (S.Parent == D.Spans[0].Id)
      ++Children;
  EXPECT_GT(Children, 0u);
}

TEST(StatsSchema, NoOrphanSpansAtAnyJobsLevel) {
  for (unsigned Jobs : {1u, 4u}) {
    std::string Text = statsJsonForJobs(Jobs);
    stats::StatsDocument D;
    std::string Error;
    // parseStats enforces dense begin-ordered ids and parent-precedes-
    // child, so a successful parse proves every parent resolves.
    ASSERT_TRUE(stats::parseStats(Text, D, Error))
        << "jobs=" << Jobs << ": " << Error;
    for (const stats::SpanStat &S : D.Spans) {
      EXPECT_LT(S.Parent, S.Id) << "jobs=" << Jobs;
      if (S.Name != "pipeline") {
        EXPECT_NE(S.Parent, 0u)
            << "orphan span '" << S.Name << "' at jobs=" << Jobs;
      }
    }
  }
}

TEST(StatsSchema, ValidationRejectsSchemaViolations) {
  std::string Good = statsJsonForJobs(1);
  stats::StatsDocument D;
  std::string Error;
  ASSERT_TRUE(stats::parseStats(Good, D, Error)) << Error;

  auto Replaced = [&](const std::string &From, const std::string &To) {
    std::string S = Good;
    size_t Pos = S.find(From);
    EXPECT_NE(Pos, std::string::npos) << From;
    S.replace(Pos, From.size(), To);
    stats::StatsDocument Out;
    std::string Err;
    return !stats::parseStats(S, Out, Err);
  };

  EXPECT_TRUE(Replaced("\"dmm-stats\"", "\"other-schema\""));
  EXPECT_TRUE(Replaced("\"version\": 3", "\"version\": 999"));
  EXPECT_TRUE(Replaced("\"jobs\": 1", "\"jobs\": \"one\""));
  EXPECT_TRUE(Replaced("\"memory_accounting\"", "\"renamed_field\""));
  // First span id rewritten: ids are no longer dense.
  EXPECT_TRUE(Replaced("{\"id\": 1,", "{\"id\": 7,"));
  EXPECT_TRUE(jsonParseFails(Good + "x"));
}

TEST(StatsSchema, AcceptsOlderVersionDocuments) {
  // v1 documents (no profiler section) and v2 documents (no
  // diagnostics section) written by older builds still parse; the
  // version floor only rises when a field is removed. A live v3
  // document carries a diagnostics section, so drop it before
  // downgrading the version.
  Telemetry Tel;
  runPipeline(Tel);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", 1);
  D.Diagnostics.Present = false;
  std::ostringstream OS;
  stats::printStats(D, OS);

  for (int Version : {1, 2}) {
    std::string Text = OS.str();
    size_t Pos = Text.find("\"version\": 3");
    ASSERT_NE(Pos, std::string::npos);
    Text.replace(Pos, 12, "\"version\": " + std::to_string(Version));
    stats::StatsDocument Back;
    std::string Error;
    ASSERT_TRUE(stats::parseStats(Text, Back, Error))
        << "v" << Version << ": " << Error;
    EXPECT_EQ(Back.Version, Version);
    EXPECT_FALSE(Back.Profiler.Present);
    EXPECT_FALSE(Back.Diagnostics.Present);
  }
}

TEST(StatsSchema, DiagnosticsSectionRoundTrips) {
  // A live pipeline run emits a populated diagnostics section; its
  // counters survive print -> parse unchanged.
  Telemetry Tel;
  runPipeline(Tel);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", 1);
  ASSERT_TRUE(D.Diagnostics.Present);

  std::ostringstream OS;
  stats::printStats(D, OS);
  stats::StatsDocument Back;
  std::string Error;
  ASSERT_TRUE(stats::parseStats(OS.str(), Back, Error)) << Error;
  ASSERT_TRUE(Back.Diagnostics.Present);
  EXPECT_EQ(Back.Diagnostics.LogError, D.Diagnostics.LogError);
  EXPECT_EQ(Back.Diagnostics.LogWarn, D.Diagnostics.LogWarn);
  EXPECT_EQ(Back.Diagnostics.LogInfo, D.Diagnostics.LogInfo);
  EXPECT_EQ(Back.Diagnostics.LogDebug, D.Diagnostics.LogDebug);
  EXPECT_EQ(Back.Diagnostics.LogTrace, D.Diagnostics.LogTrace);
  EXPECT_EQ(Back.Diagnostics.RecorderEvents, D.Diagnostics.RecorderEvents);
  EXPECT_EQ(Back.Diagnostics.RecorderDropped,
            D.Diagnostics.RecorderDropped);
  EXPECT_EQ(Back.Diagnostics.Crashes, D.Diagnostics.Crashes);
}

TEST(StatsSchema, DiagnosticsSectionRejectsInvalidDocuments) {
  Telemetry Tel;
  runPipeline(Tel);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", 1);
  ASSERT_TRUE(D.Diagnostics.Present);
  std::ostringstream OS;
  stats::printStats(D, OS);
  const std::string Good = OS.str();

  auto Replaced = [&](const std::string &From, const std::string &To) {
    std::string S = Good;
    size_t Pos = S.find(From);
    EXPECT_NE(Pos, std::string::npos) << From;
    S.replace(Pos, From.size(), To);
    stats::StatsDocument Out;
    std::string Err;
    return !stats::parseStats(S, Out, Err);
  };

  // The diagnostics section was introduced in v3; a v2 document
  // carrying one is malformed.
  EXPECT_TRUE(Replaced("\"version\": 3", "\"version\": 2"));
  // Every counter is required and must be numeric.
  EXPECT_TRUE(Replaced("\"log_error\"", "\"renamed_field\""));
  EXPECT_TRUE(Replaced("\"recorder_dropped\": ",
                       "\"recorder_dropped\": \"\", \"x\": "));
}

stats::ProfilerSection syntheticProfiler() {
  stats::ProfilerSection P;
  P.Present = true;
  P.ObjectSpace = 48;
  P.DeadMemberSpace = 16;
  P.HighWaterMark = 32;
  P.HighWaterMarkNoDead = 20;
  P.NumObjects = 3;
  P.AllocEvents = 3;
  P.FreeEvents = 2;
  P.LeakedObjects = 1;
  P.PeakAllocEvent = 2;
  P.SnapshotStride = 2;
  P.Snapshots.push_back({2, 32, 20, 2});
  P.Sites.push_back({"suite/a.mcc", 4, "P", "P::dead_one", 3, 12, 12, 0,
                     0, 12, true});
  P.Sites.push_back({"suite/a.mcc", 4, "P", "P::x", 3, 12, 12, 12, 4, 0,
                     false});
  return P;
}

TEST(StatsSchema, ProfilerSectionRoundTrips) {
  Telemetry Tel;
  runPipeline(Tel);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", 1);
  D.Profiler = syntheticProfiler();
  std::ostringstream OS;
  stats::printStats(D, OS);

  stats::StatsDocument Back;
  std::string Error;
  ASSERT_TRUE(stats::parseStats(OS.str(), Back, Error)) << Error;
  ASSERT_TRUE(Back.Profiler.Present);
  EXPECT_EQ(Back.Profiler.ObjectSpace, 48u);
  EXPECT_EQ(Back.Profiler.DeadMemberSpace, 16u);
  EXPECT_EQ(Back.Profiler.HighWaterMark, 32u);
  EXPECT_EQ(Back.Profiler.HighWaterMarkNoDead, 20u);
  EXPECT_EQ(Back.Profiler.NumObjects, 3u);
  EXPECT_EQ(Back.Profiler.LeakedObjects, 1u);
  EXPECT_EQ(Back.Profiler.PeakAllocEvent, 2u);
  EXPECT_EQ(Back.Profiler.SnapshotStride, 2u);
  ASSERT_EQ(Back.Profiler.Snapshots.size(), 1u);
  EXPECT_EQ(Back.Profiler.Snapshots[0].Event, 2u);
  EXPECT_EQ(Back.Profiler.Snapshots[0].LiveBytesNoDead, 20u);
  ASSERT_EQ(Back.Profiler.Sites.size(), 2u);
  EXPECT_EQ(Back.Profiler.Sites[0].Member, "P::dead_one");
  EXPECT_EQ(Back.Profiler.Sites[0].NeverReadBytes, 12u);
  EXPECT_TRUE(Back.Profiler.Sites[0].StaticDead);
  EXPECT_FALSE(Back.Profiler.Sites[1].StaticDead);
}

TEST(StatsSchema, ProfilerSectionRejectsInvalidDocuments) {
  Telemetry Tel;
  runPipeline(Tel);
  stats::StatsDocument D = stats::buildStats(Tel, "deadmember test", 1);
  D.Profiler = syntheticProfiler();
  std::ostringstream OS;
  stats::printStats(D, OS);
  const std::string Good = OS.str();

  auto Replaced = [&](const std::string &From, const std::string &To) {
    std::string S = Good;
    size_t Pos = S.find(From);
    EXPECT_NE(Pos, std::string::npos) << From;
    S.replace(Pos, From.size(), To);
    stats::StatsDocument Out;
    std::string Err;
    return !stats::parseStats(S, Out, Err);
  };

  // The profiler section was introduced in v2; a v1 document carrying
  // one is malformed.
  EXPECT_TRUE(Replaced("\"version\": 3", "\"version\": 1"));
  // Snapshot events must be positive and the live bytes bounded by the
  // high-water mark.
  EXPECT_TRUE(Replaced("\"event\": 2", "\"event\": 0"));
  EXPECT_TRUE(Replaced("\"live_bytes\": 32", "\"live_bytes\": 9999"));
  // Summary fields are all required.
  EXPECT_TRUE(Replaced("\"peak_alloc_event\"", "\"renamed_field\""));
  EXPECT_TRUE(Replaced("\"static_dead\": true", "\"static_dead\": 1"));
}

TEST(StatsSchema, TraceJsonIsStrictlyParseable) {
  Telemetry Tel;
  runPipeline(Tel);
  std::ostringstream OS;
  Tel.printChromeTrace(OS);
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(OS.str(), V, Error)) << Error;
  const json::Value *Events = V.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_FALSE(Events->array().empty());
  // Every duration event carries its span id and parent link.
  for (const json::Value &E : Events->array()) {
    if (E.getString("ph") != "X")
      continue;
    const json::Value *Args = E.get("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_NE(Args->get("span_id"), nullptr);
    EXPECT_NE(Args->get("parent"), nullptr);
    EXPECT_NE(Args->get("mem_peak_bytes"), nullptr);
  }
}

//===----------------------------------------------------------------------===//
// HTML report
//===----------------------------------------------------------------------===//

stats::StatsDocument syntheticDoc() {
  stats::StatsDocument D;
  D.Tool = "deadmember test";
  D.Jobs = 2;
  D.MemAccounting = true;
  const char *Names[] = {"pipeline", "lex", "analysis", "summary.file",
                         "cache.lookup"};
  for (uint64_t I = 0; I != 5; ++I) {
    stats::SpanStat S;
    S.Id = I + 1;
    S.Parent = I; // Chain: each span under the previous one.
    S.Name = Names[I];
    S.Depth = static_cast<unsigned>(I);
    S.StartNanos = I * 1000;
    S.DurNanos = (5 - I) * 1000000;
    S.CpuNanos = S.DurNanos / 2;
    S.MemPeakBytes = static_cast<int64_t>((I + 1) * 4096);
    if (S.Name == std::string("summary.file")) {
      S.StrArgs.emplace_back("file", "suite/a.mcc");
      S.IntArgs.emplace_back("cached", 1);
    }
    D.Spans.push_back(std::move(S));
  }
  D.Phases.push_back({"analysis", 3000000, 1});
  D.Counters.emplace_back("cache.hits", 1);
  D.Counters.emplace_back("cache.lookups", 1);
  return D;
}

TEST(HtmlReport, ContainsTopHotSpansWaterfallAndCacheTable) {
  std::ostringstream OS;
  stats::renderHtmlReport(syntheticDoc(), OS);
  const std::string Html = OS.str();
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("Top 5 hot spans"), std::string::npos);
  EXPECT_NE(Html.find("Span waterfall"), std::string::npos);
  EXPECT_NE(Html.find("Summary cache"), std::string::npos);
  EXPECT_NE(Html.find("cache.hits"), std::string::npos);
  EXPECT_NE(Html.find("suite/a.mcc"), std::string::npos);
  EXPECT_NE(Html.find("pipeline"), std::string::npos);
  // Self-contained: no external references.
  EXPECT_EQ(Html.find("src="), std::string::npos);
  EXPECT_EQ(Html.find("href="), std::string::npos);
}

TEST(HtmlReport, RendersProfilerSections) {
  stats::StatsDocument D = syntheticDoc();
  D.Profiler = syntheticProfiler();
  std::ostringstream OS;
  stats::renderHtmlReport(D, OS);
  const std::string Html = OS.str();
  EXPECT_NE(Html.find("Shadow profiler"), std::string::npos);
  EXPECT_NE(Html.find("High-water-mark timeline"), std::string::npos);
  EXPECT_NE(Html.find("Dead-byte heat"), std::string::npos);
  // The dead member ranks first (12 never-read bytes vs 0).
  size_t DeadPos = Html.find("P::dead_one");
  size_t LivePos = Html.find("P::x");
  ASSERT_NE(DeadPos, std::string::npos);
  ASSERT_NE(LivePos, std::string::npos);
  EXPECT_LT(DeadPos, LivePos);
  // Without a profiler section the report omits all three headings.
  std::ostringstream Plain;
  stats::renderHtmlReport(syntheticDoc(), Plain);
  EXPECT_EQ(Plain.str().find("Shadow profiler"), std::string::npos);
}

TEST(HtmlReport, EscapesUntrustedNames) {
  stats::StatsDocument D = syntheticDoc();
  D.Spans[3].StrArgs[0].second = "<script>alert(1)</script>";
  std::ostringstream OS;
  stats::renderHtmlReport(D, OS);
  EXPECT_EQ(OS.str().find("<script>alert"), std::string::npos);
  EXPECT_NE(OS.str().find("&lt;script&gt;"), std::string::npos);
}

} // namespace
