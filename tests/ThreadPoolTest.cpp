//===-- tests/ThreadPoolTest.cpp ------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the worker pool behind the parallel pipeline stages, and
/// the determinism contract: analysis reports are byte-identical at any
/// --jobs level.
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/Report.h"
#include "benchgen/Synthesizer.h"
#include "driver/Frontend.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace dmm;

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelMapKeepsIndexOrder) {
  ThreadPool Pool(4);
  std::vector<size_t> Squares =
      Pool.parallelMap<size_t>(100, [](size_t I) { return I * I; });
  ASSERT_EQ(Squares.size(), 100u);
  for (size_t I = 0; I != Squares.size(); ++I)
    EXPECT_EQ(Squares[I], I * I);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool Pool(4);
  try {
    Pool.parallelFor(100, [](size_t I) {
      if (I % 10 == 3)
        throw std::runtime_error("boom " + std::to_string(I));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "boom 3");
  }
}

TEST(ThreadPool, PoolSurvivesThrowingLoop) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(10, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Workers must still serve subsequent loops.
  std::atomic<int> Count{0};
  Pool.parallelFor(50, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(8, [&](size_t) {
    // A nested loop must not deadlock waiting for workers that are all
    // busy in the outer loop; it runs inline on the current thread.
    Pool.parallelFor(8, [&](size_t) { ++Count; });
  });
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPool, SingleJobRunsOnCallingThread) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(16, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    EXPECT_FALSE(ThreadPool::inWorker());
  });
}

/// Compiles and analyzes the whole benchmark suite (provenance on, to
/// exercise the replay-ordered mark attribution) and returns the
/// concatenated JSON reports.
std::string suiteJsonReports() {
  std::ostringstream OS;
  for (GeneratedBenchmark &G : paperBenchmarkPrograms(/*Scale=*/0.05)) {
    auto C = compileProgram(G.Files, nullptr);
    EXPECT_TRUE(C->Success) << G.Spec.Name;
    if (!C->Success)
      continue;
    AnalysisOptions Opts;
    Opts.RecordProvenance = true;
    DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
    DeadMemberResult R = A.run(C->mainFunction());
    printJsonReport(OS, C->context(), R, &C->SM);
  }
  return OS.str();
}

TEST(ThreadPool, ReportsAreJobCountInvariant) {
  // The determinism guarantee behind --jobs: reports (classification,
  // reasons, provenance, ordering) are byte-identical whether the
  // pipeline runs sequentially or across four workers.
  setGlobalJobs(1);
  std::string Sequential = suiteJsonReports();
  setGlobalJobs(4);
  std::string Parallel = suiteJsonReports();
  setGlobalJobs(0); // Back to the default for other tests.
  ASSERT_FALSE(Sequential.empty());
  EXPECT_EQ(Sequential, Parallel);
}

} // namespace
