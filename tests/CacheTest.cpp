//===-- tests/CacheTest.cpp - Summary-cache invalidation matrix -----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache-invalidation matrix (docs/CACHING.md): every way a cached
/// summary can go stale — file edit, declaration edit, config-flag
/// flip, format-version bump, on-disk corruption — must surface as a
/// miss that transparently re-extracts, and the report must stay
/// byte-identical to the cacheless monolithic analysis throughout.
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/Report.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "cache/SummaryIO.h"
#include "driver/Frontend.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dmm;

namespace {

const char *kAlpha = "class Alpha {\n"
                     "public:\n"
                     "  int used;\n"
                     "  int dropped;\n"
                     "  Alpha() : used(1), dropped(2) {}\n"
                     "  int get() { return used; }\n"
                     "};\n";

const char *kBeta = "class Beta {\n"
                    "public:\n"
                    "  Alpha a;\n"
                    "  int total;\n"
                    "  Beta() : total(0) {}\n"
                    "  void accumulate() { total = total + a.get(); }\n"
                    "};\n";

const char *kMain = "int main() {\n"
                    "  Beta b;\n"
                    "  b.accumulate();\n"
                    "  print_int(b.total);\n"
                    "  return 0;\n"
                    "}\n";

std::vector<SourceFile> programFiles() {
  return {{"alpha.mcc", kAlpha}, {"beta.mcc", kBeta}, {"main.mcc", kMain}};
}

std::unique_ptr<Compilation> compile(std::vector<SourceFile> Files) {
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  EXPECT_TRUE(C->Success) << "program does not compile: " << Diag.str();
  return C;
}

std::string renderMonolithic(Compilation &C, AnalysisOptions Opts) {
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Opts);
  DeadMemberResult R = A.run(C.mainFunction());
  std::ostringstream OS;
  printJsonReport(OS, C.context(), R, &C.SM);
  return OS.str();
}

std::string renderCached(Compilation &C, AnalysisOptions Opts,
                         SummaryCache &Cache) {
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Opts);
  std::string Error;
  std::optional<DeadMemberResult> R = runSummaryAnalysis(
      C.context(), C.SM, A, C.mainFunction(), Opts, &Cache, &Error);
  EXPECT_TRUE(R.has_value()) << "summary link failed: " << Error;
  if (!R)
    return "";
  std::ostringstream OS;
  printJsonReport(OS, C.context(), *R, &C.SM);
  return OS.str();
}

AnalysisOptions defaultOpts() {
  AnalysisOptions Opts;
  Opts.RecordProvenance = true;
  return Opts;
}

class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::path(::testing::TempDir()) /
          ("dmm-cache-test-" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  SummaryCache::Config config() {
    SummaryCache::Config Cfg;
    Cfg.Dir = Dir.string();
    return Cfg;
  }

  /// Populates the cache with the default program/options and verifies
  /// the cold run: three lookups, three misses.
  void warmUp() {
    auto C = compile(programFiles());
    SummaryCache Cache(config());
    const std::string Report = renderCached(*C, defaultOpts(), Cache);
    EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
    SummaryCache::Stats S = Cache.stats();
    EXPECT_EQ(S.Misses, 3u);
    EXPECT_EQ(S.Hits, 0u);
    EXPECT_EQ(S.Lookups, S.Hits + S.Misses);
  }

  std::vector<std::filesystem::path> entryFiles() {
    std::vector<std::filesystem::path> Entries;
    for (const auto &E : std::filesystem::directory_iterator(Dir))
      if (E.path().extension() == ".dms")
        Entries.push_back(E.path());
    return Entries;
  }

  std::filesystem::path Dir;
};

TEST_F(CacheTest, WarmRunHitsEveryFile) {
  warmUp();
  auto C = compile(programFiles());
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.Lookups, S.Hits + S.Misses);
}

TEST_F(CacheTest, BodyEditMissesOnlyTheDirtyFile) {
  warmUp();
  // A body-only edit: content hash of beta.mcc changes, the program
  // structure hash does not, so alpha/main summaries stay valid.
  std::vector<SourceFile> Files = programFiles();
  Files[1].Text = std::string(kBeta) + "// touched\n";
  auto C = compile(std::move(Files));
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST_F(CacheTest, DeclarationEditInvalidatesEveryFile) {
  warmUp();
  // Adding a field changes the program structure hash, which is part
  // of every file's cache key: all three files must re-extract even
  // though only alpha.mcc's text changed.
  std::vector<SourceFile> Files = programFiles();
  Files[0].Text = "class Alpha {\n"
                  "public:\n"
                  "  int used;\n"
                  "  int dropped;\n"
                  "  int extra;\n"
                  "  Alpha() : used(1), dropped(2), extra(3) {}\n"
                  "  int get() { return used; }\n"
                  "};\n";
  auto C = compile(std::move(Files));
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 3u);
}

TEST_F(CacheTest, EveryConfigFlagFlipMisses) {
  warmUp();
  struct Variant {
    const char *Name;
    AnalysisOptions Opts;
  };
  std::vector<Variant> Variants;
  {
    AnalysisOptions O = defaultOpts();
    O.CallGraph = CallGraphKind::CHA;
    Variants.push_back({"--callgraph=cha", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.AssumeDowncastsSafe = false;
    Variants.push_back({"--downcasts=conservative", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.Sizeof = SizeofPolicy::Conservative;
    Variants.push_back({"--sizeof=conservative", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.ExemptDeallocationArgs = false;
    Variants.push_back({"--no-dealloc-exemption", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.UnionClosure = false;
    Variants.push_back({"--no-union-closure", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.TreatWritesAsLive = true;
    Variants.push_back({"--baseline", O});
  }
  {
    AnalysisOptions O = defaultOpts();
    O.InertFunctions.insert("debug_log");
    Variants.push_back({"--inert=debug_log", O});
  }
  for (const Variant &V : Variants) {
    auto C = compile(programFiles());
    SummaryCache Cache(config());
    const std::string Report = renderCached(*C, V.Opts, Cache);
    EXPECT_EQ(Report, renderMonolithic(*C, V.Opts)) << V.Name;
    SummaryCache::Stats S = Cache.stats();
    EXPECT_EQ(S.Hits, 0u) << V.Name << " must not reuse default-config"
                          << " summaries";
    EXPECT_EQ(S.Misses, 3u) << V.Name;
  }
}

TEST_F(CacheTest, ProvenanceToggleDoesNotInvalidate) {
  warmUp();
  // RecordProvenance is excluded from the config fingerprint on
  // purpose: summaries always carry locations, so both settings replay
  // the same entries.
  AnalysisOptions NoProv;
  NoProv.RecordProvenance = false;
  auto C = compile(programFiles());
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, NoProv, Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, NoProv));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 0u);
}

TEST_F(CacheTest, FormatVersionBumpMisses) {
  warmUp();
  auto C = compile(programFiles());
  SummaryCache::Config Cfg = config();
  Cfg.FormatVersion = kSummaryFormatVersion + 1;
  SummaryCache Cache(Cfg);
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 3u);
}

TEST_F(CacheTest, TruncatedEntryRecovers) {
  warmUp();
  std::vector<std::filesystem::path> Entries = entryFiles();
  ASSERT_EQ(Entries.size(), 3u);
  // Truncate one entry to half its size: header parses but the payload
  // is short, so the lookup must fail cleanly and re-extract.
  const uintmax_t Size = std::filesystem::file_size(Entries[0]);
  std::filesystem::resize_file(Entries[0], Size / 2);
  auto C = compile(programFiles());
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST_F(CacheTest, CorruptedPayloadRecovers) {
  warmUp();
  std::vector<std::filesystem::path> Entries = entryFiles();
  ASSERT_EQ(Entries.size(), 3u);
  for (const std::filesystem::path &Entry : Entries) {
    // Flip the last byte of each entry; the payload checksum must
    // reject it.
    std::fstream F(Entry, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    F.seekg(-1, std::ios::end);
    char Byte = 0;
    F.get(Byte);
    F.seekp(-1, std::ios::end);
    F.put(static_cast<char>(Byte ^ 0xFF));
  }
  auto C = compile(programFiles());
  SummaryCache Cache(config());
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 3u);
  // The misses re-stored fresh entries, so the next run hits again.
  SummaryCache Rewarmed(config());
  renderCached(*C, defaultOpts(), Rewarmed);
  EXPECT_EQ(Rewarmed.stats().Hits, 3u);
}

TEST_F(CacheTest, TinyBudgetEvicts) {
  auto C = compile(programFiles());
  SummaryCache::Config Cfg = config();
  Cfg.MaxBytes = 1; // Every store immediately exceeds the budget.
  SummaryCache Cache(Cfg);
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_LE(S.Bytes, 1u);
}

TEST_F(CacheTest, UnusableDirectoryDegradesToMisses) {
  // A path that cannot be created (parent is a regular file) must not
  // break the analysis: every lookup is a miss and stores are no-ops.
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir / "blocker").put('x');
  SummaryCache::Config Cfg;
  Cfg.Dir = (Dir / "blocker" / "nested").string();
  auto C = compile(programFiles());
  SummaryCache Cache(Cfg);
  const std::string Report = renderCached(*C, defaultOpts(), Cache);
  EXPECT_EQ(Report, renderMonolithic(*C, defaultOpts()));
  SummaryCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 3u);
}

} // namespace
