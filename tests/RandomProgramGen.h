//===-- tests/RandomProgramGen.h - Random MiniC++ programs ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates small, valid-by-construction MiniC++ programs for the
/// property-based tests. Unlike the benchmark synthesizer (which targets
/// measured profiles), this generator aims for *feature coverage*: it
/// randomly mixes inheritance, virtual dispatch, unions, member
/// pointers, address-taking, up/down casts, heap and stack objects.
/// Every generated program type-checks and runs to completion.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TESTS_RANDOMPROGRAMGEN_H
#define DMM_TESTS_RANDOMPROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {
namespace test {

class RandomProgram {
public:
  explicit RandomProgram(uint64_t Seed) : State(Seed * 2654435761u + 1) {}

  std::string generate() {
    NumClasses = 2 + static_cast<unsigned>(below(4)); // 2..5
    FieldsPer.clear();
    for (unsigned I = 0; I != NumClasses; ++I)
      FieldsPer.push_back(2 + static_cast<unsigned>(below(4))); // 2..5
    UseUnion = chance(50);
    UseVirtual = chance(70);

    std::string Out;
    auto L = [&](const std::string &S) { Out += S + "\n"; };

    // Classes K0..Kn-1; each Ki (i>0) may derive from Ki-1.
    std::vector<bool> Derives(NumClasses, false);
    for (unsigned I = 1; I != NumClasses; ++I)
      Derives[I] = chance(60);

    for (unsigned I = 0; I != NumClasses; ++I) {
      std::string Name = "K" + std::to_string(I);
      std::string Head = "class " + Name;
      if (Derives[I])
        Head += " : public K" + std::to_string(I - 1);
      L(Head + " {");
      L("public:");
      for (unsigned F = 0; F != FieldsPer[I]; ++F) {
        const char *Ty = "int";
        if (F % 4 == 1)
          Ty = "double";
        if (F % 4 == 2)
          Ty = "char";
        L("  " + std::string(Ty) + " g" + std::to_string(I) + "_" +
          std::to_string(F) + ";");
      }
      // Constructor initializes a random subset (writes only).
      L("  " + Name + "() {");
      for (unsigned F = 0; F != FieldsPer[I]; ++F)
        if (chance(70))
          L("    g" + std::to_string(I) + "_" + std::to_string(F) +
            " = " + std::to_string(F + 1) + ";");
      L("  }");
      // A reader method over a random subset.
      L(std::string("  ") + (UseVirtual ? "virtual " : "") +
        "int sum() {");
      L("    int acc = 0;");
      for (unsigned F = 0; F != FieldsPer[I]; ++F)
        if (chance(60))
          L("    acc = acc + (int)g" + std::to_string(I) + "_" +
            std::to_string(F) + ";");
      if (Derives[I])
        L("    acc = acc + this->K" + std::to_string(I - 1) +
          "::sum();");
      L("    return acc;");
      L("  }");
      // A never-called method reading other fields.
      L("  int ghost() {");
      L("    int acc = 0;");
      for (unsigned F = 0; F != FieldsPer[I]; ++F)
        if (chance(30))
          L("    acc = acc + (int)g" + std::to_string(I) + "_" +
            std::to_string(F) + ";");
      L("    return acc;");
      L("  }");
      L("};");
      L("");
    }

    if (UseUnion) {
      L("union UU {");
      L("public:");
      L("  int ua;");
      L("  int ub;");
      L("  double uc;");
      L("};");
      L("");
    }

    L("int absorb(int *p) { return (*p); }");
    L("");
    L("int main() {");
    L("  int acc = 0;");
    // Stack object per class, heap object for the last class.
    for (unsigned I = 0; I != NumClasses; ++I)
      L("  K" + std::to_string(I) + " s" + std::to_string(I) + ";");
    std::string Last = std::to_string(NumClasses - 1);
    L("  K" + Last + " *h = new K" + Last + "();");

    // Random action mix.
    for (unsigned I = 0; I != NumClasses; ++I) {
      std::string V = "s" + std::to_string(I);
      if (chance(80))
        L("  acc = acc + " + V + ".sum();");
      unsigned F = static_cast<unsigned>(below(FieldsPer[I]));
      std::string Field =
          "g" + std::to_string(I) + "_" + std::to_string(F);
      if (chance(50))
        L("  " + V + "." + Field + " = " + std::to_string(I + 7) + ";");
      if (chance(40))
        L("  acc = acc + (int)" + V + "." + Field + ";");
      if (chance(25) && FieldsPer[I] > 0) {
        // Address-taken read through a helper (only int fields: g*_0,
        // g*_3 are ints by construction).
        unsigned IntField = (below(2) == 0) ? 0 : (FieldsPer[I] > 3 ? 3 : 0);
        L("  acc = acc + absorb(&" + V + ".g" + std::to_string(I) + "_" +
          std::to_string(IntField) + ");");
      }
      if (chance(25)) {
        L("  int K" + std::to_string(I) + "::* pm" + std::to_string(I) +
          " = &K" + std::to_string(I) + "::g" + std::to_string(I) +
          "_0;");
        L("  acc = acc + " + V + ".*pm" + std::to_string(I) + ";");
      }
    }

    // Virtual dispatch / casts along the chain.
    for (unsigned I = 1; I != NumClasses; ++I) {
      if (!Derives[I])
        continue;
      std::string BaseName = "K" + std::to_string(I - 1);
      std::string DerName = "K" + std::to_string(I);
      std::string V = "s" + std::to_string(I);
      if (chance(60)) {
        L("  " + BaseName + " *bp" + std::to_string(I) + " = &" + V +
          ";");
        L("  acc = acc + bp" + std::to_string(I) + "->sum();");
        if (chance(50)) {
          // A safe down-cast: the pointer provably targets a DerName.
          L("  " + DerName + " *dp" + std::to_string(I) + " = (" +
            DerName + "*)bp" + std::to_string(I) + ";");
          L("  acc = acc + dp" + std::to_string(I) + "->sum();");
        }
      }
    }

    if (UseUnion) {
      L("  UU u;");
      L("  u.ua = 3;");
      if (chance(50))
        L("  acc = acc + u.ub;");
      else
        L("  acc = acc + u.ua;");
    }

    L("  acc = acc + h->sum();");
    L("  delete h;");
    L("  print_int(acc);");
    L("  return 0;");
    L("}");
    return Out;
  }

private:
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  bool chance(unsigned Percent) { return next() % 100 < Percent; }

  uint64_t State;
  unsigned NumClasses = 0;
  std::vector<unsigned> FieldsPer;
  bool UseUnion = false;
  bool UseVirtual = false;
};

} // namespace test
} // namespace dmm

#endif // DMM_TESTS_RANDOMPROGRAMGEN_H
