//===-- tests/EliminatorTest.cpp - Dead-member elimination tests ----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The transformation's contract: the transformed program recompiles,
// produces the same observable output and exit code, allocates no more
// object space than the original, and no longer contains the removed
// members.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"
#include "TestUtil.h"

#include "benchgen/Synthesizer.h"
#include "transform/DeadMemberEliminator.h"

using namespace dmm;
using namespace dmm::test;

namespace {

struct EliminationOutcome {
  EliminationResult Elim;
  ExecResult Before;
  ExecResult After;
  DynamicMetrics BeforeSpace;
  DynamicMetrics AfterSpace;
  /// Owns the decls referenced by Elim.Removed/Kept.
  std::unique_ptr<Compilation> Original;
  std::unique_ptr<Compilation> Transformed;
};

EliminationOutcome runElimination(const std::string &Source) {
  EliminationOutcome Out;

  auto C1 = compileOK(Source);
  DeadMemberAnalysis Analysis(C1->context(), C1->hierarchy(), {});
  DeadMemberResult Result = Analysis.run(C1->mainFunction());
  Out.Elim = eliminateDeadMembers(C1->context(), Result,
                                  Analysis.callGraph());

  std::ostringstream Diag;
  Out.Transformed = compileString(Out.Elim.Source, &Diag);
  EXPECT_TRUE(Out.Transformed->Success)
      << "transformed program does not compile:\n"
      << Diag.str() << "\n--- transformed ---\n"
      << Out.Elim.Source;
  if (!Out.Transformed->Success) {
    Out.Original = std::move(C1);
    return Out;
  }

  AllocationTrace T1, T2;
  InterpOptions IO1, IO2;
  IO1.Trace = &T1;
  IO2.Trace = &T2;
  Out.Before = runOK(*C1, IO1);
  Out.After = runOK(*Out.Transformed, IO2);

  LayoutEngine L1(C1->hierarchy());
  LayoutEngine L2(Out.Transformed->hierarchy());
  Out.BeforeSpace = computeDynamicMetrics(T1, L1, {});
  Out.AfterSpace = computeDynamicMetrics(T2, L2, {});

  EXPECT_EQ(Out.Before.Output, Out.After.Output)
      << "--- transformed ---\n" << Out.Elim.Source;
  EXPECT_EQ(Out.Before.ExitCode, Out.After.ExitCode);
  EXPECT_LE(Out.AfterSpace.ObjectSpace, Out.BeforeSpace.ObjectSpace);
  Out.Original = std::move(C1);
  return Out;
}

TEST(Eliminator, RemovesWriteOnlyMember) {
  auto Out = runElimination(R"(
    class A {
    public:
      int live;
      int ballast;
      A() : live(3), ballast(4) {}
    };
    int main() {
      A *a = new A();
      print_int(a->live);
      a->ballast = 99;
      delete a;
      return 0;
    }
  )");
  EXPECT_EQ(Out.Elim.Removed.size(), 1u);
  EXPECT_TRUE(Out.Elim.Kept.empty());
  EXPECT_EQ(Out.Elim.Source.find("ballast"), std::string::npos);
  EXPECT_LT(Out.AfterSpace.ObjectSpace, Out.BeforeSpace.ObjectSpace);
}

TEST(Eliminator, KeepsSideEffectingWriteValue) {
  // `a.dead = next();` must keep calling next() (it prints).
  auto Out = runElimination(R"(
    int counter = 0;
    int next() { counter = counter + 1; print_int(counter); return counter; }
    class A { public: int dead; };
    int main() {
      A a;
      a.dead = next();
      a.dead = next();
      return 0;
    }
  )");
  // The member goes away but the calls stay (RhsOnly rewrite).
  EXPECT_EQ(Out.Elim.Removed.size(), 1u);
  EXPECT_EQ(Out.Before.Output, "1\n2\n");
}

TEST(Eliminator, RemovesDeleteOnlyPointerMember) {
  auto Out = runElimination(R"(
    class P { public: int v; };
    class A {
    public:
      int live;
      P *owned;
      A() : live(1) { owned = nullptr; }
      ~A() { delete owned; }
    };
    int main() {
      A *a = new A();
      print_int(a->live);
      delete a;
      return 0;
    }
  )");
  // `owned` is removed (P::v, dead in the never-instantiated class P,
  // goes too).
  EXPECT_GE(Out.Elim.Removed.size(), 1u);
  EXPECT_EQ(Out.Elim.Source.find("owned"), std::string::npos);
}

TEST(Eliminator, StripsUnreachableFunctionBodies) {
  auto Out = runElimination(R"(
    class A { public: int ghost; };
    int neverCalled(A *a) { return a->ghost; }
    int main() { A a; return 0; }
  )");
  // ghost is dead (read only in unreachable code); removing it requires
  // stripping neverCalled's body, which references it.
  EXPECT_EQ(Out.Elim.Removed.size(), 1u);
  EXPECT_EQ(Out.Elim.RemovedFunctions.size(), 1u);
  EXPECT_EQ(Out.Elim.Source.find("ghost"), std::string::npos);
}

TEST(Eliminator, PreservesVirtualDispatchAfterStripping) {
  auto Out = runElimination(R"(
    class Base {
    public:
      int pad;
      virtual int id() { return 1; }
    };
    class D : public Base {
    public:
      virtual int id() { return 2; }
    };
    int main() {
      Base *p = new D();
      print_int(p->id());
      delete p;
      return 0;
    }
  )");
  // Base is never instantiated, so Base::id is unreachable under RTA;
  // its body is stripped, but its declaration must remain so that the
  // virtual call through Base* still compiles and dispatches to D::id.
  EXPECT_EQ(Out.Before.Output, "2\n");
}

TEST(Eliminator, KeepsMembersWithImpureWriteBase) {
  auto Out = runElimination(R"(
    class A { public: int dead; };
    A *make() { print_str("make\n"); return new A(); }
    int main() {
      make()->dead = 5;
      return 0;
    }
  )");
  // The write target's base has side effects (make() prints): the
  // member must be kept.
  EXPECT_TRUE(Out.Elim.Removed.empty());
  EXPECT_EQ(Out.Elim.Kept.size(), 1u);
  EXPECT_EQ(Out.Before.Output, "make\n");
}

TEST(Eliminator, TransformedProgramHasFewerRemovableDeadMembers) {
  // Idempotence-ish: after elimination, re-analysis finds no *removable*
  // dead members among those we removed.
  auto Out = runElimination(R"(
    class A {
    public:
      int a1; int a2; int a3;
      A() : a1(1), a2(2), a3(3) {}
    };
    int main() { A a; print_int(a.a1); return 0; }
  )");
  ASSERT_TRUE(Out.Transformed->Success);
  DeadMemberAnalysis Again(Out.Transformed->context(),
                           Out.Transformed->hierarchy(), {});
  DeadMemberResult R2 = Again.run(Out.Transformed->mainFunction());
  EXPECT_TRUE(R2.deadMembers().empty());
}

TEST(Eliminator, ShrinksRichardsMaintenanceBloat) {
  // The space_optimizer example scenario, verified end to end.
  std::string Src = richardsSource();
  size_t Pos = Src.find("  Packet *link;");
  ASSERT_NE(Pos, std::string::npos);
  Src.insert(Pos, "  double legacyStamp;\n  int retries;\n");
  auto Out = runElimination(Src);
  EXPECT_EQ(Out.Elim.Removed.size(), 2u);
  EXPECT_LT(Out.AfterSpace.ObjectSpace, Out.BeforeSpace.ObjectSpace);
  // Behaviour: the canonical counters still check out.
  EXPECT_NE(Out.After.Output.find("queueCount=2322"), std::string::npos);
}

class EliminatorRandom : public ::testing::TestWithParam<int> {};

TEST_P(EliminatorRandom, PreservesBehaviourAndNeverGrows) {
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()) + 5000);
  runElimination(Gen.generate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminatorRandom, ::testing::Range(1, 21));

class EliminatorBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(EliminatorBenchmarks, PreservesBenchmarkBehaviour) {
  BenchmarkSpec Spec = benchmarkByName(GetParam());
  std::string Source;
  if (Spec.HandWritten)
    Source = GetParam() == "richards" ? richardsSource()
                                      : deltablueSource();
  else
    Source = synthesizeBenchmark(Spec, 0.05).Files[0].Text;
  auto Out = runElimination(Source);
  if (!Spec.HandWritten) {
    // Synthesized programs are built so every dead member is removable.
    EXPECT_GT(Out.Elim.Removed.size(), 0u);
    EXPECT_LT(Out.AfterSpace.ObjectSpace, Out.BeforeSpace.ObjectSpace);
  } else if (GetParam() == "richards") {
    EXPECT_TRUE(Out.Elim.Removed.empty()); // Nothing dead to remove.
  } else {
    // deltablue: only the members of the never-instantiated
    // ScaleConstraint are dead, and those are removable.
    EXPECT_LE(Out.Elim.Removed.size(), 2u);
    for (const FieldDecl *F : Out.Elim.Removed)
      EXPECT_EQ(F->parent()->name(), "ScaleConstraint");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, EliminatorBenchmarks,
    ::testing::Values("sched", "taldict", "lcom", "richards", "deltablue"),
    [](const auto &Info) { return Info.param; });

} // namespace
