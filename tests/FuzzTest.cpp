//===-- tests/FuzzTest.cpp - The fuzzing subsystem's own tests ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Exercises src/fuzz end to end: the generator's feature coverage and
// determinism, the three oracles over a clean corpus, the harness'
// self-validation (an injected eliminator defect must be caught by the
// differential-semantics oracle and shrunk to a small reproducer), the
// generic ddmin shrinker, and the eliminator fixpoint property (running
// the eliminator to a fixed point leaves no removable dead member
// behind). See docs/TESTING.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cache/Hash.h"
#include "fuzz/Coverage.h"
#include "fuzz/Feedback.h"
#include "fuzz/Oracles.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Shrinker.h"

using namespace dmm;
using namespace dmm::test;

namespace {

unsigned nonBlankLines(const std::string &S) {
  unsigned N = 0;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t NL = S.find('\n', Pos);
    std::string Line = S.substr(Pos, NL == std::string::npos
                                         ? std::string::npos
                                         : NL - Pos);
    if (Line.find_first_not_of(" \t\r") != std::string::npos)
      ++N;
    if (NL == std::string::npos)
      break;
    Pos = NL + 1;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, CoversThePaperFeatureMatrix) {
  // Across a modest seed range the corpus must collectively exercise
  // every analysis-relevant language feature (paper §2.3's hard cases).
  std::string Corpus;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed)
    Corpus += fuzz::ProgramGenerator(Seed).generate();

  EXPECT_NE(Corpus.find("union "), std::string::npos);
  EXPECT_NE(Corpus.find("virtual "), std::string::npos);
  EXPECT_NE(Corpus.find("::*"), std::string::npos); // pointer-to-member
  EXPECT_NE(Corpus.find(".*"), std::string::npos);
  EXPECT_NE(Corpus.find("absorb(&"), std::string::npos); // address-taken
  EXPECT_NE(Corpus.find("delete "), std::string::npos);
  EXPECT_NE(Corpus.find("free("), std::string::npos);
  EXPECT_NE(Corpus.find("volatile "), std::string::npos);
  EXPECT_NE(Corpus.find("sizeof("), std::string::npos);
  EXPECT_NE(Corpus.find("reinterpret_cast<"), std::string::npos);
  EXPECT_NE(Corpus.find("static_cast<"), std::string::npos); // downcasts
  EXPECT_NE(Corpus.find("::sum()"), std::string::npos); // qualified call
  EXPECT_NE(Corpus.find("new Payload"), std::string::npos);
}

TEST(FuzzGenerator, TogglesSuppressFeaturesWithoutBreakingPrograms) {
  fuzz::GeneratorOptions Opts;
  Opts.Unions = false;
  Opts.UnsafeCasts = false;
  Opts.Sizeof = false;
  Opts.PointerToMember = false;
  Opts.VolatileMembers = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::string Source = fuzz::ProgramGenerator(Seed, Opts).generate();
    EXPECT_EQ(Source.find("union "), std::string::npos);
    EXPECT_EQ(Source.find("reinterpret_cast<"), std::string::npos);
    EXPECT_EQ(Source.find("sizeof("), std::string::npos);
    EXPECT_EQ(Source.find("::*"), std::string::npos);
    EXPECT_EQ(Source.find("volatile "), std::string::npos);
    auto C = compileOK(Source);
    EXPECT_TRUE(runOK(*C).Completed);
  }
}

TEST(FuzzGenerator, GenerateIsIdempotent) {
  fuzz::ProgramGenerator Gen(11);
  std::string First = Gen.generate();
  // A second generate() on the same object re-seeds and reproduces.
  EXPECT_EQ(First, Gen.generate());
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

class FuzzOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzOracleSweep, CleanPipelinePassesAllOracles) {
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  fuzz::OracleOutcome Out = fuzz::runOracles(Gen.generate());
  EXPECT_TRUE(Out.Passed)
      << Out.FailedOracle << ": " << Out.Detail << "\nseed "
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleSweep, ::testing::Range(1, 26));

TEST(FuzzOracles, RejectNonCompilingInput) {
  fuzz::OracleOutcome Out = fuzz::runOracles("int main( { return 0 }");
  EXPECT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "frontend");
}

TEST(FuzzOracles, InjectedEliminatorFaultIsCaughtAndShrunk) {
  // ISSUE 3 acceptance: a deliberately buggy eliminator (live member
  // stores dropped) must fail the differential-semantics oracle, and
  // the shrinker must boil the witness down to a tiny reproducer.
  fuzz::OracleConfig Config;
  Config.Fault.DropLiveMemberStores = true;
  Config.Invariance = false; // Isolate the semantics oracle.

  std::string Source = fuzz::ProgramGenerator(1).generate();
  fuzz::OracleOutcome Out = fuzz::runOracles(Source, Config);
  ASSERT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "semantics");

  fuzz::ShrinkStats Stats;
  std::string Reproducer = fuzz::shrinkProgram(
      Source,
      [&](const std::string &Candidate) {
        return fuzz::runOracles(Candidate, Config).FailedOracle ==
               "semantics";
      },
      /*MaxAttempts=*/4000, &Stats);

  EXPECT_LE(nonBlankLines(Reproducer), 25u)
      << "reproducer not minimal:\n" << Reproducer;
  EXPECT_LT(Stats.LinesAfter, Stats.LinesBefore);
  // The reproducer still witnesses the same failure...
  EXPECT_EQ(fuzz::runOracles(Reproducer, Config).FailedOracle,
            "semantics");
  // ...and the *correct* eliminator passes on it.
  EXPECT_TRUE(fuzz::runOracles(Reproducer).Passed);
}

TEST(FuzzOracles, InjectedExemptionFaultFailsSoundness) {
  // Interpreter-side fault: counting the pointer read that only feeds
  // delete/free breaks the two-sided deallocation exemption, so a
  // member that is dead per the paper's rule shows up in the dynamic
  // read set.
  const char *Source = R"(
    class Holder {
    public:
      int *buf;
      Holder() { buf = new int; }
      ~Holder() { delete buf; }
    };
    int main() {
      Holder h;
      print_int(1);
      return 0;
    }
  )";
  fuzz::OracleConfig Config;
  Config.CountDeallocationReads = true;
  Config.Semantics = false;
  Config.Invariance = false;
  fuzz::OracleOutcome Out = fuzz::runOracles(Source, Config);
  ASSERT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "soundness");
  EXPECT_NE(Out.Detail.find("Holder::buf"), std::string::npos)
      << Out.Detail;
  // Without the fault the same program is clean.
  EXPECT_TRUE(fuzz::runOracles(Source).Passed);
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(FuzzShrinker, MinimizesToTheFailingLine) {
  std::string Doc;
  for (int I = 0; I < 40; ++I)
    Doc += "filler line " + std::to_string(I) + "\n";
  Doc += "NEEDLE\n";
  for (int I = 40; I < 80; ++I)
    Doc += "filler line " + std::to_string(I) + "\n";

  fuzz::ShrinkStats Stats;
  std::string Min = fuzz::shrinkProgram(
      Doc,
      [](const std::string &S) {
        return S.find("NEEDLE") != std::string::npos;
      },
      4000, &Stats);
  EXPECT_EQ(Min, "NEEDLE\n");
  EXPECT_EQ(Stats.LinesAfter, 1u);
  EXPECT_GT(Stats.Accepted, 0u);
}

TEST(FuzzShrinker, RespectsTheAttemptBudget) {
  std::string Doc;
  for (int I = 0; I < 64; ++I)
    Doc += "line " + std::to_string(I) + "\n";
  unsigned Calls = 0;
  fuzz::ShrinkStats Stats;
  fuzz::shrinkProgram(
      Doc,
      [&](const std::string &S) {
        ++Calls;
        return S.find("line 63") != std::string::npos;
      },
      /*MaxAttempts=*/10, &Stats);
  // The ddmin loop spends at most the budget; only the final
  // blank-line packing re-check may add one more evaluation.
  EXPECT_LE(Calls, 11u);
}

//===----------------------------------------------------------------------===//
// Eliminator fixpoint (ISSUE 3 satellite)
//===----------------------------------------------------------------------===//

class EliminatorFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(EliminatorFixpoint, ReachesAFixedPointWithNoRemovableDeadLeft) {
  // Elimination can *create* dead members: an `RhsOnly` rewrite deletes
  // the read of member B inside `deadA = b;`. Re-analyzing and
  // re-eliminating must therefore converge — and at the fixed point the
  // eliminator finds nothing left to remove, while the program still
  // runs identically to the original.
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  std::string Source = Gen.generate();

  auto C0 = compileOK(Source);
  ExecResult Original = runOK(*C0);

  std::string Current = Source;
  std::set<std::string> LastRemoved;
  int Rounds = 0;
  for (; Rounds < 8; ++Rounds) {
    auto C = compileOK(Current);
    ASSERT_TRUE(C->Success) << "round " << Rounds
                            << " output does not compile:\n" << Current;
    DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
    DeadMemberResult R = A.run(C->mainFunction());
    EliminationResult E =
        eliminateDeadMembers(C->context(), R, A.callGraph());
    if (E.Removed.empty())
      break;
    Current = E.Source;
  }
  ASSERT_LT(Rounds, 8) << "elimination did not converge";

  // At the fixed point: re-analysis agrees nothing removable remains,
  // and behaviour is still that of the original program.
  auto CF = compileOK(Current);
  DeadMemberAnalysis A(CF->context(), CF->hierarchy(), {});
  DeadMemberResult R = A.run(CF->mainFunction());
  EliminationResult E = eliminateDeadMembers(CF->context(), R,
                                             A.callGraph());
  EXPECT_TRUE(E.Removed.empty());
  for (const FieldDecl *F : R.deadMembers())
    EXPECT_TRUE(E.Kept.count(F))
        << F->qualifiedName()
        << " dead at the fixed point yet not marked kept";

  ExecResult Final = runOK(*CF);
  EXPECT_EQ(Final.Output, Original.Output);
  EXPECT_EQ(Final.ExitCode, Original.ExitCode);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminatorFixpoint,
                         ::testing::Range(1, 16));

//===----------------------------------------------------------------------===//
// Liveness-driven generation (ISSUE 8)
//===----------------------------------------------------------------------===//

TEST(FuzzSeedStability, BlindGenerationIsByteStableAcrossSeeds) {
  // The liveness-driven extension must not move a single byte of the
  // historical blind corpus: the default FeatureWeights equal the old
  // hard-coded literals, and every planning draw is gated behind
  // TargetDeadRatio >= 0. Fused hash over seeds 1..200; an intentional
  // generator change must update this constant (and re-vet the CI
  // smoke seeds with it).
  Hasher H;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed)
    H.str(fuzz::ProgramGenerator(Seed).generate());
  EXPECT_EQ(H.value(), 0x9f372c8d2e83ea17ULL);
}

TEST(FuzzSeedStability, ExplicitDefaultOptionsMatchImplicitDefaults) {
  fuzz::GeneratorOptions Explicit;
  Explicit.Weights = fuzz::FeatureWeights{};
  Explicit.TargetDeadRatio = -1.0;
  for (uint64_t Seed : {1, 7, 42, 199})
    EXPECT_EQ(fuzz::ProgramGenerator(Seed, Explicit).generate(),
              fuzz::ProgramGenerator(Seed).generate())
        << "seed " << Seed;
}

class LivenessTarget : public ::testing::TestWithParam<double> {};

TEST_P(LivenessTarget, AchievedDeadRatioTracksTheTarget) {
  // ISSUE 8 acceptance: requested dead ratios hit within +/-0.1. The
  // measured (static analysis) classification must also agree exactly
  // with the generator's plan, program by program — any drift means a
  // planned-dead member was resurrected or a planned-live one starved.
  const double Target = GetParam();
  fuzz::GeneratorOptions Opts;
  Opts.TargetDeadRatio = Target;
  double Sum = 0.0;
  unsigned N = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    fuzz::ProgramGenerator Gen(Seed, Opts);
    fuzz::ProgramMeasurement M = fuzz::measureProgram(Gen.generate());
    ASSERT_TRUE(M.Valid) << "seed " << Seed << ": " << M.Error;
    EXPECT_EQ(M.DeadMembers, Gen.plannedDeadMembers()) << "seed " << Seed;
    EXPECT_EQ(M.ClassifiableMembers, Gen.plannedTotalMembers())
        << "seed " << Seed;
    Sum += M.AchievedDeadRatio;
    ++N;
  }
  EXPECT_NEAR(Sum / N, Target, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Targets, LivenessTarget,
                         ::testing::Values(0.1, 0.5, 0.9));

TEST(LivenessKeepAlive, RareLivenessCausesSurviveLiveDrivenMode) {
  // The analysis records the *first* liveness cause it finds, and main
  // calls sum() before any address-taken / pointer-to-member / cast
  // site — so a planned-live member that is also read would always be
  // classified `read`. planKeepAlive() reserves members that are live
  // through their mechanism only; the rare causes must therefore stay
  // observable even when every member is planned live.
  fuzz::GeneratorOptions Opts;
  Opts.TargetDeadRatio = 0.0;
  std::set<std::string> Keys;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    fuzz::ProgramMeasurement M =
        fuzz::measureProgram(fuzz::ProgramGenerator(Seed, Opts).generate());
    ASSERT_TRUE(M.Valid) << "seed " << Seed << ": " << M.Error;
    Keys.insert(M.Keys.begin(), M.Keys.end());
  }
  EXPECT_TRUE(Keys.count("cause.read"));
  EXPECT_TRUE(Keys.count("cause.address_taken"));
  EXPECT_TRUE(Keys.count("cause.pointer_to_member"));
  EXPECT_TRUE(Keys.count("cause.unsafe_cast"));
  EXPECT_TRUE(Keys.count("cause.volatile_write"));
}

TEST(FuzzCoverage, RatioBucketsPartitionTheUnitInterval) {
  EXPECT_EQ(fuzz::ratioBucket(0.0), 0u);
  EXPECT_EQ(fuzz::ratioBucket(-0.5), 0u);
  EXPECT_EQ(fuzz::ratioBucket(1.0), fuzz::kRatioBuckets - 1);
  for (unsigned B = 0; B != fuzz::kRatioBuckets; ++B)
    EXPECT_EQ(fuzz::ratioBucket(fuzz::ratioBucketCenter(B)), B);
}

TEST(FuzzCoverage, MeasureProgramEmitsTheExpectedBoundaryKeys) {
  // Hand-built program with a known classification: K::used live by
  // read, K::unused dead, K::own dead via the deallocation exemption
  // (the differential ablation must light up), Payload::pv dead.
  const char *Source = R"(
    class Payload {
    public:
      int pv;
      Payload() { pv = 1; }
    };
    class K {
    public:
      int used;
      int unused;
      Payload *own;
      K() { used = 1; unused = 2; own = new Payload(); }
      ~K() { delete own; }
    };
    int main() {
      K k;
      print_int(k.used);
      return 0;
    }
  )";
  fuzz::ProgramMeasurement M = fuzz::measureProgram(Source);
  ASSERT_TRUE(M.Valid) << M.Error;
  EXPECT_EQ(M.ClassifiableMembers, 4u);
  EXPECT_EQ(M.DeadMembers, 3u);
  EXPECT_DOUBLE_EQ(M.AchievedDeadRatio, 0.75);

  std::set<std::string> Keys(M.Keys.begin(), M.Keys.end());
  EXPECT_TRUE(Keys.count("cause.read"));
  EXPECT_TRUE(Keys.count("dead_adjacent.read"));
  EXPECT_TRUE(Keys.count("boundary.dealloc_exemption"));
  EXPECT_TRUE(Keys.count("profiler.never_read"));
  EXPECT_TRUE(Keys.count("profiler.dead_space"));
  EXPECT_TRUE(Keys.count("elim.removed_members"));
  EXPECT_TRUE(
      Keys.count("ratio.b" + std::to_string(fuzz::ratioBucket(0.75))));
  // 0.75 is below the sparse regime: no .sparse variants.
  for (const std::string &K : Keys)
    EXPECT_EQ(K.find(".sparse"), std::string::npos) << K;
}

TEST(FuzzCoverage, SparseRegimeDoublesKeysAboveTheThreshold) {
  // Achieved ratio 6/7 ~ 0.857 >= 0.85: every non-ratio key gains a
  // .sparse twin. Blind generation tops out near 0.83 on the smoke
  // seeds, so this family is what the coverage-sweep unlocks.
  const char *Source = R"(
    class K {
    public:
      int a; int b; int c; int d; int e; int f;
      int used;
      K() { a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; used = 7; }
    };
    int main() {
      K k;
      print_int(k.used);
      return 0;
    }
  )";
  fuzz::ProgramMeasurement M = fuzz::measureProgram(Source);
  ASSERT_TRUE(M.Valid) << M.Error;
  EXPECT_GE(M.AchievedDeadRatio, 0.85);
  std::set<std::string> Keys(M.Keys.begin(), M.Keys.end());
  EXPECT_TRUE(Keys.count("cause.read"));
  EXPECT_TRUE(Keys.count("cause.read.sparse"));
  EXPECT_TRUE(Keys.count("dead_adjacent.read.sparse"));
  EXPECT_FALSE(Keys.count("ratio.b" +
                          std::to_string(fuzz::ratioBucket(6.0 / 7.0)) +
                          ".sparse"));
}

TEST(FuzzCoverage, InvalidProgramsComeBackInvalid) {
  fuzz::ProgramMeasurement M = fuzz::measureProgram("int main( {");
  EXPECT_FALSE(M.Valid);
  EXPECT_NE(M.Error.find("compile"), std::string::npos);
  EXPECT_TRUE(M.Keys.empty());
}

TEST(FuzzDistill, GreedySetCoverPicksByGainWithEarliestTieBreak) {
  std::vector<fuzz::DistillCandidate> C(5);
  C[0].Keys = {"a", "b"};
  C[1].Keys = {"a", "b", "c"}; // Strict superset of 0: picked first.
  C[2].Keys = {"d"};           // Redundant once 4 is in.
  C[3].Keys = {"a"};           // Adds nothing once 1 is in.
  C[4].Keys = {"d", "e"};      // Beats 2 (gain 2 vs 1).
  std::vector<size_t> Picks = fuzz::distillCorpus(C, 10);
  ASSERT_EQ(Picks.size(), 2u);
  EXPECT_EQ(Picks[0], 1u);
  EXPECT_EQ(Picks[1], 4u);
}

TEST(FuzzDistill, StopsWhenNothingAddsCoverageAndHonorsTheCap) {
  std::vector<fuzz::DistillCandidate> C(3);
  C[0].Keys = {"a", "b"};
  C[1].Keys = {"b"};
  C[2].Keys = {"c"};
  std::vector<size_t> All = fuzz::distillCorpus(C, 10);
  ASSERT_EQ(All.size(), 2u); // 1 is redundant.
  EXPECT_EQ(All[0], 0u);
  EXPECT_EQ(All[1], 2u);
  EXPECT_EQ(fuzz::distillCorpus(C, 1).size(), 1u);
  EXPECT_TRUE(fuzz::distillCorpus({}, 4).empty());
}

TEST(FuzzFeedback, SteeringPolaritySeparatesCoverage) {
  // ISSUE 8 satellite: on the same seed budget the inverted loop must
  // land measurably below neutral, and closed at or above it — proof
  // the feedback signal is live, not decorative.
  auto Run = [](fuzz::Steering Mode) {
    fuzz::FeedbackLoop Loop({}, Mode, /*FixedTarget=*/-1.0,
                            /*Sweep=*/true);
    unsigned InBatch = 0;
    for (uint64_t Seed = 1; Seed <= 120; ++Seed) {
      fuzz::ProgramGenerator Gen(Seed, Loop.batchOptions());
      Loop.observe(fuzz::measureProgram(Gen.generate()));
      if (++InBatch == 8) {
        Loop.endBatch();
        InBatch = 0;
      }
    }
    Loop.endBatch();
    return Loop;
  };
  fuzz::FeedbackLoop Closed = Run(fuzz::Steering::Closed);
  fuzz::FeedbackLoop Neutral = Run(fuzz::Steering::Neutral);
  fuzz::FeedbackLoop Inverted = Run(fuzz::Steering::Inverted);

  size_t NC = Closed.coverage().entries();
  size_t NN = Neutral.coverage().entries();
  size_t NI = Inverted.coverage().entries();
  EXPECT_LT(NI, NN) << "inverted " << NI << " vs neutral " << NN;
  EXPECT_GE(NC, NN) << "closed " << NC << " vs neutral " << NN;
  EXPECT_EQ(Closed.measuredPrograms(), 120u);
  EXPECT_FALSE(Closed.batches().empty());
}

TEST(FuzzFeedback, FixedTargetLoopConvergesOnTheRequest) {
  fuzz::FeedbackLoop Loop({}, fuzz::Steering::Closed,
                          /*FixedTarget=*/0.5, /*Sweep=*/false);
  unsigned InBatch = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    fuzz::ProgramGenerator Gen(Seed, Loop.batchOptions());
    Loop.observe(fuzz::measureProgram(Gen.generate()));
    if (++InBatch == 8) {
      Loop.endBatch();
      InBatch = 0;
    }
  }
  Loop.endBatch();
  EXPECT_NEAR(Loop.achievedMean(), 0.5, 0.1);
  EXPECT_LE(Loop.achievedMax(), 1.0);
  EXPECT_GE(Loop.achievedMin(), 0.0);
}

class LivenessOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(LivenessOracleSweep, LiveDrivenProgramsPassAllOracles) {
  // The planner's rewiring (retargeted address-taken/pointer-to-member
  // sites, suppressed reads, cast gating) must never produce a program
  // the six oracles reject.
  for (double Target : {0.0, 0.5, 0.9}) {
    fuzz::GeneratorOptions Opts;
    Opts.TargetDeadRatio = Target;
    fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()), Opts);
    fuzz::OracleOutcome Out = fuzz::runOracles(Gen.generate());
    EXPECT_TRUE(Out.Passed)
        << Out.FailedOracle << ": " << Out.Detail << "\nseed "
        << GetParam() << " target " << Target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivenessOracleSweep,
                         ::testing::Range(1, 9));

} // namespace
