//===-- tests/FuzzTest.cpp - The fuzzing subsystem's own tests ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Exercises src/fuzz end to end: the generator's feature coverage and
// determinism, the three oracles over a clean corpus, the harness'
// self-validation (an injected eliminator defect must be caught by the
// differential-semantics oracle and shrunk to a small reproducer), the
// generic ddmin shrinker, and the eliminator fixpoint property (running
// the eliminator to a fixed point leaves no removable dead member
// behind). See docs/TESTING.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fuzz/Oracles.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Shrinker.h"

using namespace dmm;
using namespace dmm::test;

namespace {

unsigned nonBlankLines(const std::string &S) {
  unsigned N = 0;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t NL = S.find('\n', Pos);
    std::string Line = S.substr(Pos, NL == std::string::npos
                                         ? std::string::npos
                                         : NL - Pos);
    if (Line.find_first_not_of(" \t\r") != std::string::npos)
      ++N;
    if (NL == std::string::npos)
      break;
    Pos = NL + 1;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, CoversThePaperFeatureMatrix) {
  // Across a modest seed range the corpus must collectively exercise
  // every analysis-relevant language feature (paper §2.3's hard cases).
  std::string Corpus;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed)
    Corpus += fuzz::ProgramGenerator(Seed).generate();

  EXPECT_NE(Corpus.find("union "), std::string::npos);
  EXPECT_NE(Corpus.find("virtual "), std::string::npos);
  EXPECT_NE(Corpus.find("::*"), std::string::npos); // pointer-to-member
  EXPECT_NE(Corpus.find(".*"), std::string::npos);
  EXPECT_NE(Corpus.find("absorb(&"), std::string::npos); // address-taken
  EXPECT_NE(Corpus.find("delete "), std::string::npos);
  EXPECT_NE(Corpus.find("free("), std::string::npos);
  EXPECT_NE(Corpus.find("volatile "), std::string::npos);
  EXPECT_NE(Corpus.find("sizeof("), std::string::npos);
  EXPECT_NE(Corpus.find("reinterpret_cast<"), std::string::npos);
  EXPECT_NE(Corpus.find("static_cast<"), std::string::npos); // downcasts
  EXPECT_NE(Corpus.find("::sum()"), std::string::npos); // qualified call
  EXPECT_NE(Corpus.find("new Payload"), std::string::npos);
}

TEST(FuzzGenerator, TogglesSuppressFeaturesWithoutBreakingPrograms) {
  fuzz::GeneratorOptions Opts;
  Opts.Unions = false;
  Opts.UnsafeCasts = false;
  Opts.Sizeof = false;
  Opts.PointerToMember = false;
  Opts.VolatileMembers = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::string Source = fuzz::ProgramGenerator(Seed, Opts).generate();
    EXPECT_EQ(Source.find("union "), std::string::npos);
    EXPECT_EQ(Source.find("reinterpret_cast<"), std::string::npos);
    EXPECT_EQ(Source.find("sizeof("), std::string::npos);
    EXPECT_EQ(Source.find("::*"), std::string::npos);
    EXPECT_EQ(Source.find("volatile "), std::string::npos);
    auto C = compileOK(Source);
    EXPECT_TRUE(runOK(*C).Completed);
  }
}

TEST(FuzzGenerator, GenerateIsIdempotent) {
  fuzz::ProgramGenerator Gen(11);
  std::string First = Gen.generate();
  // A second generate() on the same object re-seeds and reproduces.
  EXPECT_EQ(First, Gen.generate());
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

class FuzzOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzOracleSweep, CleanPipelinePassesAllOracles) {
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  fuzz::OracleOutcome Out = fuzz::runOracles(Gen.generate());
  EXPECT_TRUE(Out.Passed)
      << Out.FailedOracle << ": " << Out.Detail << "\nseed "
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleSweep, ::testing::Range(1, 26));

TEST(FuzzOracles, RejectNonCompilingInput) {
  fuzz::OracleOutcome Out = fuzz::runOracles("int main( { return 0 }");
  EXPECT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "frontend");
}

TEST(FuzzOracles, InjectedEliminatorFaultIsCaughtAndShrunk) {
  // ISSUE 3 acceptance: a deliberately buggy eliminator (live member
  // stores dropped) must fail the differential-semantics oracle, and
  // the shrinker must boil the witness down to a tiny reproducer.
  fuzz::OracleConfig Config;
  Config.Fault.DropLiveMemberStores = true;
  Config.Invariance = false; // Isolate the semantics oracle.

  std::string Source = fuzz::ProgramGenerator(1).generate();
  fuzz::OracleOutcome Out = fuzz::runOracles(Source, Config);
  ASSERT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "semantics");

  fuzz::ShrinkStats Stats;
  std::string Reproducer = fuzz::shrinkProgram(
      Source,
      [&](const std::string &Candidate) {
        return fuzz::runOracles(Candidate, Config).FailedOracle ==
               "semantics";
      },
      /*MaxAttempts=*/4000, &Stats);

  EXPECT_LE(nonBlankLines(Reproducer), 25u)
      << "reproducer not minimal:\n" << Reproducer;
  EXPECT_LT(Stats.LinesAfter, Stats.LinesBefore);
  // The reproducer still witnesses the same failure...
  EXPECT_EQ(fuzz::runOracles(Reproducer, Config).FailedOracle,
            "semantics");
  // ...and the *correct* eliminator passes on it.
  EXPECT_TRUE(fuzz::runOracles(Reproducer).Passed);
}

TEST(FuzzOracles, InjectedExemptionFaultFailsSoundness) {
  // Interpreter-side fault: counting the pointer read that only feeds
  // delete/free breaks the two-sided deallocation exemption, so a
  // member that is dead per the paper's rule shows up in the dynamic
  // read set.
  const char *Source = R"(
    class Holder {
    public:
      int *buf;
      Holder() { buf = new int; }
      ~Holder() { delete buf; }
    };
    int main() {
      Holder h;
      print_int(1);
      return 0;
    }
  )";
  fuzz::OracleConfig Config;
  Config.CountDeallocationReads = true;
  Config.Semantics = false;
  Config.Invariance = false;
  fuzz::OracleOutcome Out = fuzz::runOracles(Source, Config);
  ASSERT_FALSE(Out.Passed);
  EXPECT_EQ(Out.FailedOracle, "soundness");
  EXPECT_NE(Out.Detail.find("Holder::buf"), std::string::npos)
      << Out.Detail;
  // Without the fault the same program is clean.
  EXPECT_TRUE(fuzz::runOracles(Source).Passed);
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(FuzzShrinker, MinimizesToTheFailingLine) {
  std::string Doc;
  for (int I = 0; I < 40; ++I)
    Doc += "filler line " + std::to_string(I) + "\n";
  Doc += "NEEDLE\n";
  for (int I = 40; I < 80; ++I)
    Doc += "filler line " + std::to_string(I) + "\n";

  fuzz::ShrinkStats Stats;
  std::string Min = fuzz::shrinkProgram(
      Doc,
      [](const std::string &S) {
        return S.find("NEEDLE") != std::string::npos;
      },
      4000, &Stats);
  EXPECT_EQ(Min, "NEEDLE\n");
  EXPECT_EQ(Stats.LinesAfter, 1u);
  EXPECT_GT(Stats.Accepted, 0u);
}

TEST(FuzzShrinker, RespectsTheAttemptBudget) {
  std::string Doc;
  for (int I = 0; I < 64; ++I)
    Doc += "line " + std::to_string(I) + "\n";
  unsigned Calls = 0;
  fuzz::ShrinkStats Stats;
  fuzz::shrinkProgram(
      Doc,
      [&](const std::string &S) {
        ++Calls;
        return S.find("line 63") != std::string::npos;
      },
      /*MaxAttempts=*/10, &Stats);
  // The ddmin loop spends at most the budget; only the final
  // blank-line packing re-check may add one more evaluation.
  EXPECT_LE(Calls, 11u);
}

//===----------------------------------------------------------------------===//
// Eliminator fixpoint (ISSUE 3 satellite)
//===----------------------------------------------------------------------===//

class EliminatorFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(EliminatorFixpoint, ReachesAFixedPointWithNoRemovableDeadLeft) {
  // Elimination can *create* dead members: an `RhsOnly` rewrite deletes
  // the read of member B inside `deadA = b;`. Re-analyzing and
  // re-eliminating must therefore converge — and at the fixed point the
  // eliminator finds nothing left to remove, while the program still
  // runs identically to the original.
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  std::string Source = Gen.generate();

  auto C0 = compileOK(Source);
  ExecResult Original = runOK(*C0);

  std::string Current = Source;
  std::set<std::string> LastRemoved;
  int Rounds = 0;
  for (; Rounds < 8; ++Rounds) {
    auto C = compileOK(Current);
    ASSERT_TRUE(C->Success) << "round " << Rounds
                            << " output does not compile:\n" << Current;
    DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
    DeadMemberResult R = A.run(C->mainFunction());
    EliminationResult E =
        eliminateDeadMembers(C->context(), R, A.callGraph());
    if (E.Removed.empty())
      break;
    Current = E.Source;
  }
  ASSERT_LT(Rounds, 8) << "elimination did not converge";

  // At the fixed point: re-analysis agrees nothing removable remains,
  // and behaviour is still that of the original program.
  auto CF = compileOK(Current);
  DeadMemberAnalysis A(CF->context(), CF->hierarchy(), {});
  DeadMemberResult R = A.run(CF->mainFunction());
  EliminationResult E = eliminateDeadMembers(CF->context(), R,
                                             A.callGraph());
  EXPECT_TRUE(E.Removed.empty());
  for (const FieldDecl *F : R.deadMembers())
    EXPECT_TRUE(E.Kept.count(F))
        << F->qualifiedName()
        << " dead at the fixed point yet not marked kept";

  ExecResult Final = runOK(*CF);
  EXPECT_EQ(Final.Output, Original.Output);
  EXPECT_EQ(Final.ExitCode, Original.ExitCode);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminatorFixpoint,
                         ::testing::Range(1, 16));

} // namespace
