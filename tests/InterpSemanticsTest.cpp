//===-- tests/InterpSemanticsTest.cpp - C++ semantics fidelity ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Construction/destruction ordering, virtual-base sharing, dispatch
// during destruction, global object lifetime, and other C++ semantics
// the paper's measurements implicitly depend on.
//
// Every case runs on BOTH execution engines — the tree-walking
// Interpreter and the bytecode VM (docs/VM.md) — via the EngineKind
// test parameter: the expected output, exit code, and (for the
// runtime-error cases) the output prefix written before the abort are
// engine-independent contracts.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

class InterpSemantics : public ::testing::TestWithParam<EngineKind> {
protected:
  std::string outputOf(const std::string &Source) {
    auto C = compileOK(Source);
    return runWithOK(*C, GetParam()).Output;
  }

  /// Runs a program expected to abort; checks the error message and the
  /// output prefix written before the engine stopped. Both are
  /// engine-independent: the VM must fail at the same event index as
  /// the tree-walker, having produced the same partial output.
  void expectRuntimeError(const std::string &Source,
                          const std::string &ErrorNeedle,
                          const std::string &OutputPrefix) {
    auto C = compileOK(Source);
    ExecResult R = runWith(*C, GetParam());
    EXPECT_FALSE(R.Completed)
        << engineName(GetParam()) << " unexpectedly completed with exit "
        << R.ExitCode;
    EXPECT_NE(R.Error.find(ErrorNeedle), std::string::npos)
        << engineName(GetParam()) << " error was: " << R.Error;
    EXPECT_EQ(R.Output, OutputPrefix) << engineName(GetParam());
  }
};

TEST_P(InterpSemantics, ConstructionOrderBasesThenMembersThenBody) {
  EXPECT_EQ(outputOf(R"(
    class Base { public: int b; Base() { print_int(1); } };
    class Member { public: int m; Member() { print_int(2); } };
    class Outer : public Base {
    public:
      Member member;
      Outer() { print_int(3); }
    };
    int main() { Outer o; return o.b + o.member.m; }
  )"),
            "1\n2\n3\n");
}

TEST_P(InterpSemantics, VirtualBaseConstructedOnceAndFirst) {
  EXPECT_EQ(outputOf(R"(
    class Top { public: int t; Top() { print_int(0); } };
    class L : public virtual Top { public: int l; L() { print_int(1); } };
    class R : public virtual Top { public: int r; R() { print_int(2); } };
    class B : public L, public R {
    public:
      int b;
      B() { print_int(3); }
    };
    int main() { B x; return 0; }
  )"),
            "0\n1\n2\n3\n"); // Top once, most-derived first.
}

TEST_P(InterpSemantics, DestructionIsReverseOfConstruction) {
  EXPECT_EQ(outputOf(R"(
    class Base { public: int b; Base() { print_int(1); } ~Base() { print_int(-1); } };
    class Member { public: int m; Member() { print_int(2); } ~Member() { print_int(-2); } };
    class Outer : public Base {
    public:
      Member member;
      Outer() { print_int(3); }
      ~Outer() { print_int(-3); }
    };
    int main() { Outer o; return 0; }
  )"),
            "1\n2\n3\n-3\n-2\n-1\n");
}

TEST_P(InterpSemantics, DispatchDuringDestructionUsesStaticType) {
  EXPECT_EQ(outputOf(R"(
    class B {
    public:
      int x;
      virtual int tag() { return 1; }
      virtual ~B() { print_int(tag()); }
    };
    class D : public B {
    public:
      virtual int tag() { return 2; }
      ~D() { print_int(tag()); }
    };
    int main() {
      B *p = new D();
      delete p;
      return 0;
    }
  )"),
            "2\n1\n"); // D's dtor sees D::tag, B's dtor sees B::tag.
}

TEST_P(InterpSemantics, GlobalObjectsConstructedBeforeMainDestroyedAfter) {
  EXPECT_EQ(outputOf(R"(
    class G {
    public:
      int v;
      G(int anId) : v(anId) { print_int(v); }
      ~G() { print_int(-v); }
    };
    G first(1);
    G second(2);
    int main() { print_int(0); return 0; }
  )"),
            "1\n2\n0\n-2\n-1\n");
}

TEST_P(InterpSemantics, MemberArrayElementsConstructedInOrder) {
  EXPECT_EQ(outputOf(R"(
    int nextId = 0;
    class Elem {
    public:
      int id;
      Elem() { nextId = nextId + 1; id = nextId; }
    };
    class Holder { public: Elem cells[3]; };
    int main() {
      Holder h;
      print_int(h.cells[0].id);
      print_int(h.cells[2].id);
      return 0;
    }
  )"),
            "1\n3\n");
}

TEST_P(InterpSemantics, BlockScopedObjectsDestroyedAtBlockExit) {
  EXPECT_EQ(outputOf(R"(
    class Noisy {
    public:
      int id;
      Noisy(int i) : id(i) {}
      ~Noisy() { print_int(id); }
    };
    int main() {
      Noisy outer(1);
      {
        Noisy inner(2);
      }
      print_int(0);
      return 0;
    }
  )"),
            "2\n0\n1\n");
}

TEST_P(InterpSemantics, LoopBodyObjectsDestroyedEachIteration) {
  EXPECT_EQ(outputOf(R"(
    class Tick {
    public:
      int n;
      Tick(int i) : n(i) {}
      ~Tick() { print_int(n); }
    };
    int main() {
      for (int i = 0; i < 2; i = i + 1) {
        Tick t(i);
      }
      return 0;
    }
  )"),
            "0\n1\n");
}

TEST_P(InterpSemantics, EarlyReturnStillDestroysLocals) {
  EXPECT_EQ(outputOf(R"(
    class Noisy {
    public:
      int id;
      Noisy(int i) : id(i) {}
      ~Noisy() { print_int(id); }
    };
    int f(bool early) {
      Noisy a(1);
      if (early) {
        Noisy b(2);
        return 10;
      }
      return 20;
    }
    int main() { print_int(f(true)); return 0; }
  )"),
            "2\n1\n10\n");
}

TEST_P(InterpSemantics, CtorInitializerOrderFollowsDeclarationOrder) {
  // As in C++: member initialization order is declaration order, not
  // initializer-list order.
  EXPECT_EQ(outputOf(R"(
    int trace(int v) { print_int(v); return v; }
    class A {
    public:
      int first;
      int second;
      A() : second(trace(2)), first(trace(1)) {}
    };
    int main() { A a; return a.first + a.second; }
  )"),
            "1\n2\n");
}

TEST_P(InterpSemantics, SharedVirtualBaseStateIsVisibleThroughBothPaths) {
  EXPECT_EQ(outputOf(R"(
    class Top { public: int t; };
    class L : public virtual Top { public: int l; };
    class R : public virtual Top { public: int r; };
    class B : public L, public R { public: int b; };
    int main() {
      B x;
      L *lp = &x;
      R *rp = &x;
      lp->t = 41;
      rp->t = rp->t + 1;
      print_int(x.t);
      return 0;
    }
  )"),
            "42\n");
}

TEST_P(InterpSemantics, FunctionPointersCompareAndSwap) {
  EXPECT_EQ(outputOf(R"(
    int one() { return 1; }
    int two() { return 2; }
    int main() {
      int (*f)() = &one;
      int (*g)() = &two;
      if (f == &one) { print_int(f()); }
      f = g;
      if (f != &one) { print_int(f()); }
      return 0;
    }
  )"),
            "1\n2\n");
}

TEST_P(InterpSemantics, PointerEqualityAndOrderingInArrays) {
  EXPECT_EQ(outputOf(R"(
    int main() {
      int a[4];
      int *p = &a[1];
      int *q = &a[3];
      print_bool(p < q);
      print_bool(p == q - 2);
      print_int((int)(q - p));
      return 0;
    }
  )"),
            "true\ntrue\n2\n");
}

TEST_P(InterpSemantics, MemberPointersAreReseatable) {
  EXPECT_EQ(outputOf(R"(
    class P { public: int x; int y; };
    int main() {
      P p;
      p.x = 10;
      p.y = 20;
      int P::* pm = &P::x;
      print_int(p.*pm);
      pm = &P::y;
      print_int(p.*pm);
      return 0;
    }
  )"),
            "10\n20\n");
}

TEST_P(InterpSemantics, WritesThroughMemberPointerAttributeMember) {
  auto C = compileOK(R"(
    class P { public: int x; };
    int main() {
      P p;
      int P::* pm = &P::x;
      p.*pm = 5;
      return p.x;
    }
  )");
  std::set<const FieldDecl *> Writes;
  InterpOptions IO;
  IO.WriteSet = &Writes;
  ExecResult R = runWithOK(*C, GetParam(), IO);
  EXPECT_EQ(R.ExitCode, 5);
  EXPECT_TRUE(Writes.count(findField(*C, "P", "x")));
}

TEST_P(InterpSemantics, UnionMembersHaveIndependentStorageInThisModel) {
  // Documented divergence from real C++ (see interp/Interpreter.h):
  // union alternatives do not alias. The analysis' union closure is what
  // makes this safe for dead-member classification.
  EXPECT_EQ(outputOf(R"(
    union U { public: int a; int b; };
    int main() {
      U u;
      u.a = 7;
      u.b = 9;
      print_int(u.a);
      return 0;
    }
  )"),
            "7\n");
}

TEST_P(InterpSemantics, QualifiedBaseCallFromOverride) {
  EXPECT_EQ(outputOf(R"(
    class B { public: int bv; virtual int f() { return 10; } };
    class D : public B {
    public:
      virtual int f() { return this->B::f() + 1; }
    };
    int main() {
      D d;
      B *p = &d;
      print_int(p->f());
      return 0;
    }
  )"),
            "11\n");
}

TEST_P(InterpSemantics, FreeDoesNotRunDestructors) {
  EXPECT_EQ(outputOf(R"(
    class Loud { public: int v; ~Loud() { print_int(v); } };
    int main() {
      Loud *a = new Loud();
      a->v = 1;
      free(a);       // No destructor output.
      Loud *b = new Loud();
      b->v = 2;
      delete b;      // Destructor runs.
      return 0;
    }
  )"),
            "2\n");
}

//===----------------------------------------------------------------------===//
// Runtime errors: both engines stop at the same event with the same
// message, having produced the same output prefix.
//===----------------------------------------------------------------------===//

TEST_P(InterpSemantics, NullDereferenceStopsMidProgram) {
  expectRuntimeError(R"(
    int main() {
      print_int(1);
      print_int(2);
      int *p = 0;
      print_int(*p);
      print_int(3);
      return 0;
    }
  )",
                     "null pointer", "1\n2\n");
}

TEST_P(InterpSemantics, DoubleDeleteIsDiagnosedAfterFirstDelete) {
  expectRuntimeError(R"(
    class C { public: int v; ~C() { print_int(v); } };
    int main() {
      C *p = new C();
      p->v = 7;
      delete p;
      delete p;
      return 0;
    }
  )",
                     "double destruction", "7\n");
}

TEST_P(InterpSemantics, UndefinedFunctionCallAbortsAtTheCall) {
  expectRuntimeError(R"(
    int missing(int x);
    int main() {
      print_int(9);
      return missing(1);
    }
  )",
                     "undefined function", "9\n");
}

TEST_P(InterpSemantics, RunawayRecursionOverflowsTheGuestStack) {
  expectRuntimeError(R"(
    int spin(int n) { print_int(n); return spin(n + 1); }
    int main() { return spin(-3); }
  )",
                     "stack overflow", [] {
                       // The guest frame limit is engine-independent:
                       // 1024 frames counting main, so spin prints
                       // -3..1019 before the 1024th call is refused.
                       std::string S;
                       for (int I = -3; I <= 1019; ++I)
                         S += std::to_string(I) + "\n";
                       return S;
                     }());
}

TEST_P(InterpSemantics, MemberAccessThroughNullObjectPointer) {
  expectRuntimeError(R"(
    class B { public: int x; virtual int f() { return 1; } };
    int main() {
      print_int(5);
      B *p = 0;
      return p->f();
    }
  )",
                     "null", "5\n");
}

INSTANTIATE_TEST_SUITE_P(
    Engines, InterpSemantics,
    ::testing::Values(EngineKind::Tree, EngineKind::Vm),
    [](const ::testing::TestParamInfo<EngineKind> &I) {
      return std::string(engineName(I.param));
    });

} // namespace
