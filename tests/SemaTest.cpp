//===-- tests/SemaTest.cpp - Semantic analysis tests ----------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/ASTWalker.h"

using namespace dmm;
using namespace dmm::test;

namespace {

/// Finds the first expression matching a predicate anywhere in a
/// function body.
template <typename Pred>
const Expr *findExpr(Compilation &C, const std::string &FnName, Pred P) {
  for (const FunctionDecl *FD : C.context().functions()) {
    if (FD->name() != FnName)
      continue;
    const Expr *Found = nullptr;
    forEachExprInFunction(FD, [&](const Expr *E) {
      if (!Found && P(E))
        Found = E;
    });
    return Found;
  }
  return nullptr;
}

TEST(Sema, UndeclaredIdentifierIsAnError) {
  std::string Err = compileError("int main() { return nothere; }");
  EXPECT_NE(Err.find("undeclared identifier"), std::string::npos);
}

TEST(Sema, UnknownMemberIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int x; };
    int main() { A a; return a.nope; }
  )");
  EXPECT_NE(Err.find("no member named"), std::string::npos);
}

TEST(Sema, MemberAccessOnNonClassIsAnError) {
  std::string Err = compileError("int main() { int i; return i.x; }");
  EXPECT_NE(Err.find("non-class"), std::string::npos);
}

TEST(Sema, ArrowOnValueIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int x; };
    int main() { A a; return a->x; }
  )");
  EXPECT_NE(Err.find("'->'"), std::string::npos);
}

TEST(Sema, ArgumentCountMismatchIsAnError) {
  std::string Err = compileError(R"(
    int f(int a, int b) { return a + b; }
    int main() { return f(1); }
  )");
  EXPECT_NE(Err.find("expects 2 arguments"), std::string::npos);
}

TEST(Sema, MissingMainIsAnError) {
  std::string Err = compileError("int notmain() { return 0; }");
  EXPECT_NE(Err.find("no defined 'main'"), std::string::npos);
}

TEST(Sema, DuplicateLocalIsAnError) {
  std::string Err = compileError(R"(
    int main() { int x; int x; return 0; }
  )");
  EXPECT_NE(Err.find("redefinition of variable"), std::string::npos);
}

TEST(Sema, ShadowingInNestedScopeIsAllowed) {
  compileOK(R"(
    int main() {
      int x = 1;
      { int x = 2; if (x != 2) { return 9; } }
      return x;
    }
  )");
}

TEST(Sema, NoDefaultConstructorIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int v; A(int x) : v(x) {} };
    int main() { A a; return 0; }
  )");
  EXPECT_NE(Err.find("no default constructor"), std::string::npos);
}

TEST(Sema, WrongCtorArityIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int v; A(int x) : v(x) {} };
    int main() { A a(1, 2); return 0; }
  )");
  EXPECT_NE(Err.find("takes 2 arguments"), std::string::npos);
}

TEST(Sema, CtorInitializerMustNameMemberOrBase) {
  std::string Err = compileError(R"(
    class A {
    public:
      int v;
      A() : nothere(1) {}
    };
    int main() { A a; return 0; }
  )");
  EXPECT_NE(Err.find("not a member or base"), std::string::npos);
}

TEST(Sema, AmbiguousMemberLookupIsAnError) {
  std::string Err = compileError(R"(
    class L { public: int m; };
    class R { public: int m; };
    class B : public L, public R { public: int other; };
    int main() { B b; return b.m; }
  )");
  EXPECT_NE(Err.find("ambiguous"), std::string::npos);
}

TEST(Sema, DiamondThroughVirtualBasesIsNotAmbiguous) {
  compileOK(R"(
    class Top { public: int m; };
    class L : public virtual Top { public: int l; };
    class R : public virtual Top { public: int r; };
    class B : public L, public R { public: int b; };
    int main() { B x; return x.m; }
  )");
}

TEST(Sema, DerivedMemberHidesBase) {
  auto C = compileOK(R"(
    class A { public: int m; };
    class B : public A { public: int m; };
    int main() { B b; return b.m; }
  )");
  const Expr *Access = findExpr(*C, "main", [](const Expr *E) {
    return isa<MemberExpr>(E);
  });
  ASSERT_NE(Access, nullptr);
  const auto *ME = cast<MemberExpr>(Access);
  EXPECT_EQ(cast<FieldDecl>(ME->member())->parent()->name(), "B");
}

TEST(Sema, VirtualnessPropagatesToOverrides) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 1; } };
    class B : public A { public: int f() { return 2; } };
    int main() { B b; return b.f(); }
  )");
  // B::f is virtual even without the keyword.
  EXPECT_TRUE(findClass(*C, "B")->findMethod("f")->isVirtual());
}

TEST(Sema, VirtualDestructorPropagates) {
  auto C = compileOK(R"(
    class A { public: int a; virtual ~A() {} };
    class B : public A { public: int b; ~B() {} };
    int main() { A *p = new B(); delete p; return 0; }
  )");
  EXPECT_TRUE(findClass(*C, "B")->destructor()->isVirtual());
}

TEST(Sema, VirtualCallFlagIsSet) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 1; } int g() { return 2; } };
    int main() {
      A a;
      A *p = &a;
      return p->f() + p->g();
    }
  )");
  const Expr *VirtCall = findExpr(*C, "main", [](const Expr *E) {
    const auto *Call = dyn_cast<CallExpr>(E);
    return Call && Call->directCallee() &&
           Call->directCallee()->name() == "f";
  });
  const Expr *PlainCall = findExpr(*C, "main", [](const Expr *E) {
    const auto *Call = dyn_cast<CallExpr>(E);
    return Call && Call->directCallee() &&
           Call->directCallee()->name() == "g";
  });
  ASSERT_NE(VirtCall, nullptr);
  ASSERT_NE(PlainCall, nullptr);
  EXPECT_TRUE(cast<CallExpr>(VirtCall)->isVirtualCall());
  EXPECT_FALSE(cast<CallExpr>(PlainCall)->isVirtualCall());
}

TEST(Sema, QualifiedCallIsNotVirtual) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 1; } };
    class B : public A { public: virtual int f() { return 2; } };
    int main() { B b; return b.A::f(); }
  )");
  const Expr *Call = findExpr(*C, "main", [](const Expr *E) {
    return isa<CallExpr>(E);
  });
  ASSERT_NE(Call, nullptr);
  EXPECT_FALSE(cast<CallExpr>(Call)->isVirtualCall());
  EXPECT_EQ(cast<CallExpr>(Call)->directCallee()->qualifiedName(), "A::f");
}

TEST(Sema, CastSafetyClassification) {
  auto C = compileOK(R"(
    class A { public: int a; };
    class B : public A { public: int b; };
    class X { public: int x; };
    int main() {
      B b;
      A *up = (A*)&b;
      B *down = (B*)up;
      X *far = reinterpret_cast<X*>(up);
      int n = (int)2.5;
      return n;
    }
  )");
  std::vector<CastSafety> Seen;
  for (const FunctionDecl *FD : C->context().functions())
    if (FD->name() == "main")
      forEachExprInFunction(FD, [&](const Expr *E) {
        if (const auto *CE = dyn_cast<CastExpr>(E))
          Seen.push_back(CE->safety());
      });
  ASSERT_EQ(Seen.size(), 4u);
  EXPECT_EQ(Seen[0], CastSafety::Safe);      // up-cast
  EXPECT_EQ(Seen[1], CastSafety::Downcast);  // down-cast
  EXPECT_EQ(Seen[2], CastSafety::Unrelated); // reinterpret
  EXPECT_EQ(Seen[3], CastSafety::Safe);      // numeric
}

TEST(Sema, NullptrToPointerCastIsSafe) {
  auto C = compileOK(R"(
    class A { public: int a; };
    int main() { A *p = (A*)nullptr; return p == nullptr ? 0 : 1; }
  )");
  const Expr *Cast = findExpr(*C, "main", [](const Expr *E) {
    return isa<CastExpr>(E);
  });
  ASSERT_NE(Cast, nullptr);
  EXPECT_EQ(cast<CastExpr>(Cast)->safety(), CastSafety::Safe);
}

TEST(Sema, VoidPointerConversionsAreSafe) {
  auto C = compileOK(R"(
    class A { public: int a; };
    int main() {
      A a;
      void *v = (void*)&a;
      A *back = (A*)v;
      return back != nullptr ? 0 : 1;
    }
  )");
  for (const FunctionDecl *FD : C->context().functions()) {
    if (FD->name() != "main")
      continue;
    forEachExprInFunction(FD, [&](const Expr *E) {
      if (const auto *CE = dyn_cast<CastExpr>(E)) {
        EXPECT_EQ(CE->safety(), CastSafety::Safe);
      }
    });
  }
}

TEST(Sema, ExpressionTypesAreAssigned) {
  auto C = compileOK(R"(
    class A { public: int x; double d; };
    int main() { A a; a.x = 1; a.d = 2.0; return a.x; }
  )");
  unsigned Untyped = 0;
  for (const FunctionDecl *FD : C->context().functions())
    forEachExprInFunction(FD, [&](const Expr *E) {
      if (!E->type())
        ++Untyped;
    });
  EXPECT_EQ(Untyped, 0u);
}

TEST(Sema, ThisOutsideMethodIsAnError) {
  std::string Err = compileError("int main() { return this != nullptr; }");
  EXPECT_NE(Err.find("'this'"), std::string::npos);
}

TEST(Sema, MemberPointerOfUnknownMemberIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int x; };
    int main() { int A::* pm = &A::nope; return 0; }
  )");
  EXPECT_NE(Err.find("no data member"), std::string::npos);
}

TEST(Sema, GlobalsVisibleInAllFunctions) {
  compileOK(R"(
    int counter = 5;
    int readIt() { return counter; }
    int main() { counter = counter + 1; return readIt(); }
  )");
}

TEST(Sema, BuiltinsAreAvailable) {
  compileOK(R"(
    int main() {
      print_int(1);
      print_char('c');
      print_double(1.5);
      print_str("s");
      print_bool(true);
      int *p = new int[2];
      free(p);
      return 0;
    }
  )");
}

TEST(Sema, MemberLookupThroughDeepBaseChain) {
  auto C = compileOK(R"(
    class A { public: int deep; };
    class B : public A { public: int b; };
    class D : public B { public: int d; };
    int main() { D x; return x.deep; }
  )");
  const Expr *Access = findExpr(*C, "main", [](const Expr *E) {
    return isa<MemberExpr>(E);
  });
  ASSERT_NE(Access, nullptr);
  EXPECT_EQ(cast<FieldDecl>(cast<MemberExpr>(Access)->member())
                ->parent()
                ->name(),
            "A");
}

TEST(Sema, SubscriptRequiresPointerOrArray) {
  std::string Err = compileError("int main() { int i; return i[0]; }");
  EXPECT_NE(Err.find("subscripted"), std::string::npos);
}

TEST(Sema, IndirectCallArityIsChecked) {
  std::string Err = compileError(R"(
    int f(int a) { return a; }
    int main() {
      int (*fp)(int) = &f;
      return fp(1, 2);
    }
  )");
  EXPECT_NE(Err.find("indirect call expects 1"), std::string::npos);
}

} // namespace
