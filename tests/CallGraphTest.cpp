//===-- tests/CallGraphTest.cpp - Call graph construction tests -----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

CallGraph build(Compilation &C, CallGraphKind Kind) {
  return buildCallGraph(C.context(), C.hierarchy(), C.mainFunction(), Kind);
}

const FunctionDecl *findFn(Compilation &C, const std::string &Qualified) {
  for (const FunctionDecl *FD : C.context().functions())
    if (FD->qualifiedName() == Qualified)
      return FD;
  ADD_FAILURE() << "no function " << Qualified;
  return nullptr;
}

TEST(CallGraph, DirectCallsAreReachable) {
  auto C = compileOK(R"(
    int leaf() { return 1; }
    int mid() { return leaf(); }
    int unreached() { return 2; }
    int main() { return mid(); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "mid")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "leaf")));
  EXPECT_FALSE(G.isReachable(findFn(*C, "unreached")));
}

TEST(CallGraph, TrivialMarksEverythingDefined) {
  auto C = compileOK(R"(
    int unreached() { return 2; }
    int main() { return 0; }
  )");
  CallGraph G = build(*C, CallGraphKind::Trivial);
  EXPECT_TRUE(G.isReachable(findFn(*C, "unreached")));
}

TEST(CallGraph, RecursionDoesNotLoopForever) {
  auto C = compileOK(R"(
    int odd(int n);
    int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
    int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
    int main() { return even(4); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "odd")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "even")));
}

TEST(CallGraph, RTARestrictsVirtualTargetsToInstantiated) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 0; } };
    class B : public A { public: virtual int f() { return 1; } };
    class CC : public A { public: virtual int f() { return 2; } };
    int main() {
      A *p = new B();
      return p->f();
    }
  )");
  CallGraph RTA = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(RTA.isReachable(findFn(*C, "B::f")));
  EXPECT_FALSE(RTA.isReachable(findFn(*C, "CC::f")));

  CallGraph CHA = build(*C, CallGraphKind::CHA);
  EXPECT_TRUE(CHA.isReachable(findFn(*C, "B::f")));
  EXPECT_TRUE(CHA.isReachable(findFn(*C, "CC::f")));
}

TEST(CallGraph, RTAWorklistHandlesLateInstantiation) {
  // CC is instantiated only inside a function that becomes reachable
  // through a virtual call; the pending-site re-resolution must pick the
  // override up.
  auto C = compileOK(R"(
    class A { public: virtual A *spawn() { return this; } };
    class B : public A {
    public:
      virtual A *spawn();
    };
    class CC : public A { public: virtual A *spawn() { return this; } };
    A *B::spawn() { return new CC(); }
    int main() {
      A *p = new B();
      A *q = p->spawn();   // B::spawn creates a CC.
      A *r = q->spawn();   // Must dispatch to CC::spawn under RTA.
      return r != nullptr ? 0 : 1;
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "CC::spawn")));
}

TEST(CallGraph, ConstructorsOfLocalsAndNews) {
  auto C = compileOK(R"(
    class A { public: int v; A() : v(1) {} };
    class B { public: int w; B(int x) : w(x) {} };
    int main() {
      A onStack;
      B *onHeap = new B(2);
      int r = onStack.v + onHeap->w;
      delete onHeap;
      return r;
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "A::A")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "B::B")));
  EXPECT_EQ(G.instantiatedClasses().size(), 2u);
}

TEST(CallGraph, DestructorsOfLocalsAndDeletes) {
  auto C = compileOK(R"(
    class A { public: int v; ~A() { v = 0; } };
    class B { public: int w; ~B() { w = 0; } };
    int main() {
      A onStack;
      B *onHeap = new B();
      delete onHeap;
      return 0;
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "A::~A")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "B::~B")));
}

TEST(CallGraph, VirtualDestructorDispatchesToSubclasses) {
  auto C = compileOK(R"(
    class A { public: int a; virtual ~A() {} };
    class B : public A { public: int b; ~B() { b = 0; } };
    int main() {
      A *p = new B();
      delete p;
      return 0;
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "B::~B")));
}

TEST(CallGraph, ImplicitBaseAndMemberConstruction) {
  auto C = compileOK(R"(
    class Base { public: int b; Base() : b(1) {} };
    class Member { public: int m; Member() : m(2) {} };
    class Outer : public Base {
    public:
      Member member;
      int o;
    };
    int main() { Outer x; return x.b + x.member.m; }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  // Outer has no user constructor: implicit construction still calls
  // Base::Base and Member::Member.
  EXPECT_TRUE(G.isReachable(findFn(*C, "Base::Base")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "Member::Member")));
  EXPECT_TRUE(G.instantiatedClasses().count(findClass(*C, "Member")));
}

TEST(CallGraph, CtorInitializerSelectsBaseCtor) {
  auto C = compileOK(R"(
    class Base {
    public:
      int b;
      Base() : b(0) {}
      Base(int v) : b(v) {}
    };
    class D : public Base {
    public:
      D() : Base(7) {}
    };
    int main() { D d; return d.b; }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  const ClassDecl *Base = findClass(*C, "Base");
  const ConstructorDecl *OneArg = nullptr;
  for (const ConstructorDecl *Ctor : Base->constructors())
    if (Ctor->params().size() == 1)
      OneArg = Ctor;
  ASSERT_NE(OneArg, nullptr);
  EXPECT_TRUE(G.isReachable(OneArg));
}

TEST(CallGraph, AddressTakenFunctionIsReachable) {
  // Paper 3.3: "if the address of a function f is taken in reachable
  // code, we assume f to be reachable".
  auto C = compileOK(R"(
    int callback(int x) { return x; }
    int main() {
      int (*fp)(int) = &callback;
      return fp != nullptr ? 0 : 1;
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  const FunctionDecl *CB = findFn(*C, "callback");
  EXPECT_TRUE(G.isReachable(CB));
  EXPECT_TRUE(G.addressTaken().count(CB));
}

TEST(CallGraph, AddressTakenInUnreachableCodeDoesNotCount) {
  auto C = compileOK(R"(
    int callback(int x) { return x; }
    int unreached() {
      int (*fp)(int) = &callback;
      return fp(1);
    }
    int main() { return 0; }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_FALSE(G.isReachable(findFn(*C, "callback")));
}

TEST(CallGraph, IndirectCallLinksByArity) {
  auto C = compileOK(R"(
    int unary(int x) { return x; }
    int binary(int x, int y) { return x + y; }
    int main() {
      int (*fp)(int) = &unary;
      int (*fp2)(int, int) = &binary;
      return fp(1) + fp2(1, 2);
    }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  // Both address-taken; both arities have call sites.
  EXPECT_TRUE(G.isReachable(findFn(*C, "unary")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "binary")));
}

TEST(CallGraph, LibraryCallbackRuleMarksOverrides) {
  std::vector<SourceFile> Files;
  Files.push_back({"lib.mcc", R"(
    class Widget {
    public:
      int w;
      virtual int onDraw() { return 0; }
    };
  )", true});
  Files.push_back({"app.mcc", R"(
    class MyWidget : public Widget {
    public:
      int state;
      virtual int onDraw() { return state; }
    };
    int main() { MyWidget m; return 0; }
  )", false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                               C->mainFunction(), CallGraphKind::RTA);
  // No user code calls onDraw, but the library might.
  EXPECT_TRUE(G.isReachable(findFn(*C, "MyWidget::onDraw")));
}

TEST(CallGraph, GlobalInitializersRunFromMain) {
  auto C = compileOK(R"(
    class G { public: int v; G() : v(5) {} ~G() { v = 0; } };
    G g;
    int main() { return g.v; }
  )");
  CallGraph Graph = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(Graph.isReachable(findFn(*C, "G::G")));
  EXPECT_TRUE(Graph.isReachable(findFn(*C, "G::~G")));
}

TEST(CallGraph, ReachableFunctionsAreSortedAndStable) {
  auto C = compileOK(R"(
    int a() { return 1; }
    int b() { return a(); }
    int main() { return b() + a(); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  auto Fns = G.reachableFunctions();
  for (size_t I = 1; I < Fns.size(); ++I)
    EXPECT_LT(Fns[I - 1]->declID(), Fns[I]->declID());
}

TEST(CallGraph, EdgeCountsAreDeduplicated) {
  auto C = compileOK(R"(
    int f() { return 1; }
    int main() { return f() + f() + f(); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_EQ(G.callees(C->mainFunction()).size(), 1u);
}

TEST(CallGraph, MethodCallsThroughImplicitThis) {
  auto C = compileOK(R"(
    class A {
    public:
      int v;
      int outer() { return inner(); }
      int inner() { return v; }
    };
    int main() { A a; return a.outer(); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "A::inner")));
}

TEST(CallGraph, KindNamesAreStable) {
  EXPECT_STREQ(callGraphKindName(CallGraphKind::Trivial), "trivial");
  EXPECT_STREQ(callGraphKindName(CallGraphKind::CHA), "CHA");
  EXPECT_STREQ(callGraphKindName(CallGraphKind::RTA), "RTA");
}

} // namespace

namespace {

TEST(CallGraph, GlobalInitializerCallsAreReachable) {
  // Global initializer expressions run before main; functions they call
  // (and function addresses they take) must be reachable.
  auto C = compileOK(R"(
    class A { public: int hidden; };
    A theA;
    int seed() { return theA.hidden; }
    int taken(int x) { return x; }
    int g1 = seed();
    int (*g2)(int) = &taken;
    int main() { return g1 + g2(1); }
  )");
  CallGraph G = build(*C, CallGraphKind::RTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "seed")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "taken")));

  // And the member read inside seed() must make A::hidden live.
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "hidden")));
}

} // namespace
