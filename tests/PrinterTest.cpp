//===-- tests/PrinterTest.cpp - Source printer round-trip tests -----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The printer's contract: its output re-parses, and the reparsed program
// is observationally identical (same interpreter output and exit code)
// and analytically identical (same dead-member set) to the original.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"
#include "TestUtil.h"

#include "ast/SourcePrinter.h"
#include "benchgen/Synthesizer.h"

using namespace dmm;
using namespace dmm::test;

namespace {

/// Round-trips: compile Source, print, recompile; checks behaviour and
/// analysis results agree.
void expectRoundTrip(const std::string &Source) {
  auto C1 = compileOK(Source);
  SourcePrinter Printer;
  std::string Printed = Printer.print(C1->context());

  std::ostringstream Diag;
  auto C2 = compileString(Printed, &Diag);
  ASSERT_TRUE(C2->Success) << "printed source does not reparse:\n"
                           << Diag.str() << "\n--- printed ---\n"
                           << Printed;

  ExecResult E1 = runOK(*C1);
  ExecResult E2 = runOK(*C2);
  EXPECT_EQ(E1.Output, E2.Output) << "--- printed ---\n" << Printed;
  EXPECT_EQ(E1.ExitCode, E2.ExitCode);

  EXPECT_EQ(deadNames(analyze(*C1)), deadNames(analyze(*C2)));
}

TEST(Printer, MinimalProgram) {
  expectRoundTrip("int main() { return 42; }");
}

TEST(Printer, PaperFigure1) {
  expectRoundTrip(R"(
    class N { public: int mn1; int mn2; };
    class A {
    public:
      virtual int f() { return ma1; }
      int ma1; int ma2; int ma3;
    };
    class B : public A {
    public:
      virtual int f() { return mb1; }
      int mb1; N mb2; int mb3; int mb4;
    };
    class CC : public A {
    public:
      virtual int f() { return mc1; }
      int mc1;
    };
    int foo(int *x) { return (*x) + 1; }
    int main() {
      A a; B b; CC c;
      A *ap;
      a.ma3 = b.mb3 + 1;
      int i = 10;
      if (i < 20) { ap = &a; } else { ap = &b; }
      print_int(ap->f() + b.mb2.mn1 + foo(&b.mb4));
      return 0;
    }
  )");
}

TEST(Printer, OperatorZoo) {
  expectRoundTrip(R"(
    int main() {
      int a = 3; int b = 7;
      int c = a + b * 2 - (b % a) / 1;
      c = c << 2 >> 1;
      c = (c & 12) | (a ^ b);
      bool p = a < b && b <= 7 || !(a == b) && a != b;
      c += 2; c -= 1; c *= 3; c /= 2; c %= 100;
      int d = p ? ++c : --c;
      d = c++ + c--;
      double e = 2.5 * 4.0;
      char ch = 'x';
      print_int(c + d + (int)e + (int)ch);
      return p ? 0 : 1;
    }
  )");
}

TEST(Printer, PointersArraysStrings) {
  expectRoundTrip(R"(
    int sum(int *data, int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + data[i]; }
      return s;
    }
    int main() {
      int local[5];
      for (int i = 0; i < 5; i = i + 1) { local[i] = i * i; }
      int *heap = new int[3];
      heap[0] = 7;
      print_str("total=");
      print_int(sum(local, 5) + sum(heap, 3) + *(heap + 0));
      delete[] heap;
      return 0;
    }
  )");
}

TEST(Printer, ClassFeatures) {
  expectRoundTrip(R"(
    class Top { public: int t; Top() : t(1) {} virtual ~Top() {} };
    class L : public virtual Top { public: int l; L() : l(2) {} };
    class R : public virtual Top { public: int r; R() : r(3) {} };
    class B : public L, public R {
    public:
      int b;
      B(int v) : b(v) {}
      virtual int sum() { return t + l + r + b; }
    };
    union U { public: int raw; double wide; };
    int main() {
      B *x = new B(4);
      int s = x->sum();
      U u;
      u.raw = 1;
      s = s + u.raw;
      int B::* pm = &B::b;
      s = s + x->*pm;
      delete x;
      print_int(s);
      return 0;
    }
  )");
}

TEST(Printer, FunctionPointersAndCasts) {
  expectRoundTrip(R"(
    class A { public: int a; };
    class B : public A { public: int b; };
    int twice(int v) { return v * 2; }
    int apply(int (*fn)(int), int v) { return fn(v); }
    int main() {
      int (*fp)(int) = &twice;
      B b;
      b.a = 3;
      A *up = (A*)&b;
      B *down = static_cast<B*>(up);
      print_int(apply(fp, down->a));
      return 0;
    }
  )");
}

TEST(Printer, RichardsRoundTrips) {
  expectRoundTrip(richardsSource());
}

TEST(Printer, DeltaBlueRoundTrips) {
  expectRoundTrip(deltablueSource());
}

class PrinterRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrinterRandomRoundTrip, RoundTrips) {
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()) + 1000);
  expectRoundTrip(Gen.generate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRandomRoundTrip,
                         ::testing::Range(1, 17));

TEST(Printer, SynthesizedBenchmarkRoundTrips) {
  GeneratedBenchmark G =
      synthesizeBenchmark(benchmarkByName("hotwire"), 0.05);
  expectRoundTrip(G.Files[0].Text);
}

} // namespace
