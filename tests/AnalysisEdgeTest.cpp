//===-- tests/AnalysisEdgeTest.cpp - Analysis corner cases ----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(AnalysisEdge, QualifiedAddressOfIsLive) {
  // `&e.Y::m` (paper Fig. 2 lines 23-25).
  auto C = compileOK(R"(
    class A { public: int m; };
    class B : public A { public: int other; };
    int main() {
      B b;
      int *p = &b.A::m;
      return 0;
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "A", "m")),
            LivenessReason::AddressTaken);
}

TEST(AnalysisEdge, WriteThroughExplicitThisDerefIsAWrite) {
  auto C = compileOK(R"(
    class A {
    public:
      int m;
      void set(int v) { (*this).m = v; }
    };
    int main() { A a; a.set(1); return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "m")));
}

TEST(AnalysisEdge, ReadThroughReferenceParameter) {
  auto C = compileOK(R"(
    class A { public: int m; };
    int peek(A &a) { return a.m; }
    int main() { A a; return peek(a); }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "m")));
}

TEST(AnalysisEdge, AssignmentResultUseStillNotARead) {
  // `x = (a.m = 3);` uses the assignment's value, but the member's
  // stored value is never *read back*: m stays dead (the value x gets
  // is the RHS, not the member).
  auto C = compileOK(R"(
    class A { public: int m; };
    int main() {
      A a;
      int x = (a.m = 3);
      return x - 3;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "m")));
}

TEST(AnalysisEdge, ChainedAssignmentsOnlyWriteTargets) {
  auto C = compileOK(R"(
    class A { public: int m1; int m2; };
    int main() {
      A a;
      a.m1 = (a.m2 = 7);
      return 0;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "m1")));
  EXPECT_TRUE(R.isDead(findField(*C, "A", "m2")));
}

TEST(AnalysisEdge, MemberReadInLoopConditionIsLive) {
  auto C = compileOK(R"(
    class A { public: int n; A() : n(3) {} };
    int main() {
      A a;
      int s = 0;
      while (a.n > 0) { a.n = a.n - 1; s = s + 1; }
      for (int i = 0; i < a.n + 1; i = i + 1) { s = s + 1; }
      return s;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "n")));
}

TEST(AnalysisEdge, MemberReadInReturnedConditional) {
  auto C = compileOK(R"(
    class A { public: int lhs; int rhs; int sel; };
    int main() {
      A a;
      return a.sel != 0 ? a.lhs : a.rhs;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(deadNames(R).empty());
}

TEST(AnalysisEdge, DeadMemberInArrayOfObjects) {
  auto C = compileOK(R"(
    class Cell { public: int value; int spare; };
    int main() {
      Cell grid[4];
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) {
        grid[i].value = i;
        s = s + grid[i].value;
      }
      return s;
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(deadNames(R), std::set<std::string>{"Cell::spare"});
}

TEST(AnalysisEdge, HeapArrayMembers) {
  auto C = compileOK(R"(
    class Cell { public: int value; int spare; };
    int main() {
      Cell *cells = new Cell[3];
      cells[1].value = 5;
      int r = cells[1].value;
      delete[] cells;
      return r;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "Cell", "value")));
  EXPECT_TRUE(R.isDead(findField(*C, "Cell", "spare")));
}

TEST(AnalysisEdge, VirtualCallThroughReferenceKeepsOverrideReachable) {
  auto C = compileOK(R"(
    class B { public: int bm; virtual int f() { return 0; } };
    class D : public B {
    public:
      int dm;
      virtual int f() { return dm; }
    };
    int touch(B &b) { return b.f(); }
    int main() { D d; return touch(d); }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "D", "dm")));
  EXPECT_TRUE(R.isDead(findField(*C, "B", "bm")));
}

TEST(AnalysisEdge, DestructorReadsCountWhenReachable) {
  auto C = compileOK(R"(
    class A {
    public:
      int logged;
      ~A() { print_int(logged); }
    };
    int main() { A a; a.logged = 3; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "logged")));
}

TEST(AnalysisEdge, UnusedClassMembersAreStillClassified) {
  // Members of classes that are never instantiated are classified (the
  // stats layer excludes them from Table 1 percentages, but the raw
  // analysis sees them).
  auto C = compileOK(R"(
    class Never { public: int n1; };
    int main() { return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "Never", "n1")));
}

TEST(AnalysisEdge, SelfReferentialWriteIsARead) {
  // `m = m + 1` reads m (a counter is live even if nobody else reads
  // it — the paper's conservatism).
  auto C = compileOK(R"(
    class A { public: int counter; };
    int main() { A a; a.counter = a.counter + 1; return 0; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "A", "counter")));
}

TEST(AnalysisEdge, CommaExpressionSidesAreProcessed) {
  auto C = compileOK(R"(
    class A { public: int l; int r; };
    int main() {
      A a;
      int x = (a.l = 1, a.r);
      return x;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "A", "l")));
  EXPECT_TRUE(R.isLive(findField(*C, "A", "r")));
}

TEST(AnalysisEdge, MultipleUnionsCascadeThroughClosure) {
  // Closing one union can enliven a member of another union (a class
  // contained in the first union has a member of the second union's
  // class); the fixed-point loop must propagate.
  auto C = compileOK(R"(
    class Inner { public: int ia; };
    union U2 { public: Inner boxed; int u2raw; };
    class Holder { public: U2 u2field; };
    union U1 { public: Holder held; int u1raw; };
    int main() {
      U1 u;
      return u.u1raw;
    }
  )");
  auto R = analyze(*C);
  // u1raw read -> U1 closes -> held live -> U2 (contained via Holder)
  // contains Inner::ia etc.
  EXPECT_TRUE(R.isLive(findField(*C, "U1", "held")));
  EXPECT_TRUE(R.isLive(findField(*C, "Holder", "u2field")));
  EXPECT_TRUE(R.isLive(findField(*C, "U2", "boxed")));
  EXPECT_TRUE(R.isLive(findField(*C, "Inner", "ia")));
}

TEST(AnalysisEdge, VolatileReadIsAlsoLive) {
  auto C = compileOK(R"(
    class A { public: volatile int reg; };
    int main() { A a; return a.reg; }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "A", "reg")), LivenessReason::Read);
}

TEST(AnalysisEdge, SizeofExprOperandConservativePolicy) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int main() { A a; return sizeof(a); }
  )");
  AnalysisOptions Opts;
  Opts.Sizeof = SizeofPolicy::Conservative;
  auto R = analyze(*C, Opts);
  EXPECT_EQ(R.reason(findField(*C, "A", "x")),
            LivenessReason::SizeofConservative);
}

TEST(AnalysisEdge, NewExprArgumentsAreReads) {
  auto C = compileOK(R"(
    class Src { public: int seed; };
    class Dst { public: int v; Dst(int x) : v(x) {} };
    int main() {
      Src s;
      Dst *d = new Dst(s.seed);
      int r = d->v;
      delete d;
      return r;
    }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "Src", "seed")));
}

TEST(AnalysisEdge, GlobalClassObjectInitializerArgsAreReads) {
  auto C = compileOK(R"(
    class Cfg { public: int level; Cfg(int l) : level(l) {} };
    int defaultLevel = 2;
    Cfg globalCfg(defaultLevel + 1);
    int main() { return globalCfg.level; }
  )");
  auto R = analyze(*C);
  EXPECT_TRUE(R.isLive(findField(*C, "Cfg", "level")));
}

TEST(AnalysisEdge, VolatileMemberWrittenOnlyIsLive) {
  // A volatile member that is only ever *written* must still be live:
  // the store is an observable effect (paper §2.3, hardware registers),
  // unlike a plain member's write-only traffic.
  auto C = compileOK(R"(
    class Device {
    public:
      volatile int ctl;
      int shadow;
    };
    int main() {
      Device d;
      d.ctl = 1;
      d.shadow = 1;
      return 0;
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "Device", "ctl")),
            LivenessReason::VolatileWrite);
  EXPECT_TRUE(R.isDead(findField(*C, "Device", "shadow")));
}

TEST(AnalysisEdge, MemberPassedOnlyToDeallocationIsDead) {
  // The deallocation exemption (paper §3.2): reading a pointer member
  // solely to delete/free it does not make it live — but turning the
  // exemption off must flip both members to live.
  const char *Source = R"(
    class Owner {
    public:
      int *viaDelete;
      int *viaFree;
      Owner() {
        viaDelete = new int;
        viaFree = new int;
      }
      ~Owner() {
        delete viaDelete;
        free(viaFree);
      }
    };
    int main() { Owner o; return 0; }
  )";
  auto C = compileOK(Source);
  auto R = analyze(*C);
  EXPECT_TRUE(R.isDead(findField(*C, "Owner", "viaDelete")));
  EXPECT_TRUE(R.isDead(findField(*C, "Owner", "viaFree")));

  AnalysisOptions NoExempt;
  NoExempt.ExemptDeallocationArgs = false;
  auto R2 = analyze(*C, NoExempt);
  EXPECT_TRUE(R2.isLive(findField(*C, "Owner", "viaDelete")));
  EXPECT_TRUE(R2.isLive(findField(*C, "Owner", "viaFree")));
}

TEST(AnalysisEdge, QualifiedBaseMemberReadIsLive) {
  // `e.Y::m` value reads (paper Fig. 2 line 23 reads the member, not
  // its address): liveness lands on the base class' member, and the
  // derived homonym stays independent.
  auto C = compileOK(R"(
    class Y { public: int m; int other; };
    class E : public Y { public: int m; };
    int main() {
      E e;
      e.m = 1;
      int v = e.Y::m;
      return v;
    }
  )");
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "Y", "m")), LivenessReason::Read);
  EXPECT_TRUE(R.isDead(findField(*C, "E", "m")));
  EXPECT_TRUE(R.isDead(findField(*C, "Y", "other")));
}

TEST(AnalysisEdge, UnionClosureLiftsSiblingsUnlessDisabled) {
  // One live union member lifts its siblings (storage overlap, paper
  // §3.3) — and the UnionClosure toggle isolates exactly that rule.
  const char *Source = R"(
    union Packet { public: int word; char tag; double wide; };
    int main() {
      Packet p;
      p.word = 7;
      return p.word;
    }
  )";
  auto C = compileOK(Source);
  auto R = analyze(*C);
  EXPECT_EQ(R.reason(findField(*C, "Packet", "word")),
            LivenessReason::Read);
  EXPECT_EQ(R.reason(findField(*C, "Packet", "tag")),
            LivenessReason::UnionClosure);
  EXPECT_EQ(R.reason(findField(*C, "Packet", "wide")),
            LivenessReason::UnionClosure);

  AnalysisOptions NoClosure;
  NoClosure.UnionClosure = false;
  auto R2 = analyze(*C, NoClosure);
  EXPECT_TRUE(R2.isLive(findField(*C, "Packet", "word")));
  EXPECT_TRUE(R2.isDead(findField(*C, "Packet", "tag")));
  EXPECT_TRUE(R2.isDead(findField(*C, "Packet", "wide")));
}

} // namespace
