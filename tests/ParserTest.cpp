//===-- tests/ParserTest.cpp - Parser tests -------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/ASTWalker.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Parser, EmptyProgramNeedsMain) {
  compileError("");
}

TEST(Parser, MinimalProgram) {
  auto C = compileOK("int main() { return 0; }");
  EXPECT_EQ(C->context().classes().size(), 0u);
}

TEST(Parser, ClassWithFieldsAndMethods) {
  auto C = compileOK(R"(
    class A {
    public:
      int x;
      double d;
      char c;
      int getX() { return x; }
    };
    int main() { A a; return a.getX(); }
  )");
  const ClassDecl *A = findClass(*C, "A");
  EXPECT_EQ(A->fields().size(), 3u);
  EXPECT_EQ(A->methods().size(), 1u);
  EXPECT_EQ(A->fields()[1]->type()->str(), "double");
}

TEST(Parser, ForwardDeclarationThenDefinition) {
  auto C = compileOK(R"(
    class B;
    class A { public: B *link; };
    class B { public: int v; };
    int main() { A a; B b; b.v = 1; a.link = &b; return a.link->v; }
  )");
  EXPECT_TRUE(findClass(*C, "B")->isComplete());
}

TEST(Parser, MultipleInheritanceAndVirtualBases) {
  auto C = compileOK(R"(
    class Top { public: int t; };
    class L : public virtual Top { public: int l; };
    class R : public virtual Top { public: int r; };
    class B : public L, public R { public: int b; };
    int main() { B x; return x.t + x.l + x.r + x.b; }
  )");
  const ClassDecl *B = findClass(*C, "B");
  ASSERT_EQ(B->bases().size(), 2u);
  EXPECT_FALSE(B->bases()[0].IsVirtual);
  const ClassDecl *L = findClass(*C, "L");
  ASSERT_EQ(L->bases().size(), 1u);
  EXPECT_TRUE(L->bases()[0].IsVirtual);
}

TEST(Parser, AccessSpecifiersAreAcceptedAndIgnored) {
  compileOK(R"(
    class A {
    public:
      int a;
    private:
      int b;
    protected:
      int c;
    public:
      int sum() { return a + b + c; }
    };
    int main() { A x; return x.sum(); }
  )");
}

TEST(Parser, OutOfLineMethodDefinition) {
  auto C = compileOK(R"(
    class A {
    public:
      int v;
      int get(int bias);
    };
    int A::get(int bias) { return v + bias; }
    int main() { A a; a.v = 40; return a.get(2); }
  )");
  const ClassDecl *A = findClass(*C, "A");
  EXPECT_TRUE(A->findMethod("get")->isDefined());
}

TEST(Parser, OutOfLineConstructorAndDestructor) {
  auto C = compileOK(R"(
    class A {
    public:
      int v;
      A(int x);
      ~A();
    };
    A::A(int x) : v(x) {}
    A::~A() {}
    int main() { A a(3); return a.v; }
  )");
  const ClassDecl *A = findClass(*C, "A");
  ASSERT_EQ(A->constructors().size(), 1u);
  EXPECT_TRUE(A->constructors()[0]->isDefined());
  EXPECT_TRUE(A->destructor()->isDefined());
}

TEST(Parser, ConstructorOverloadingByArity) {
  auto C = compileOK(R"(
    class A {
    public:
      int v;
      A() : v(1) {}
      A(int x) : v(x) {}
      A(int x, int y) : v(x + y) {}
    };
    int main() { A a; A b(5); A c(2, 3); return a.v + b.v + c.v; }
  )");
  EXPECT_EQ(findClass(*C, "A")->constructors().size(), 3u);
}

TEST(Parser, PureVirtualMethod) {
  auto C = compileOK(R"(
    class Shape {
    public:
      virtual int area() = 0;
    };
    class Box : public Shape {
    public:
      int s;
      virtual int area() { return s * s; }
    };
    int main() { Box b; b.s = 2; Shape *p = &b; return p->area(); }
  )");
  EXPECT_FALSE(findClass(*C, "Shape")->findMethod("area")->isDefined());
}

TEST(Parser, UnionDeclaration) {
  auto C = compileOK(R"(
    union U { public: int i; double d; };
    int main() { U u; u.i = 1; return u.i; }
  )");
  EXPECT_TRUE(findClass(*C, "U")->isUnion());
}

TEST(Parser, ArrayMembersAndLocals) {
  auto C = compileOK(R"(
    class A { public: int grid[3][4]; };
    int main() {
      int local[8];
      local[0] = 1;
      A a;
      a.grid[1][2] = 5;
      return a.grid[1][2] + local[0];
    }
  )");
  const FieldDecl *Grid = findField(*C, "A", "grid");
  EXPECT_EQ(Grid->type()->str(), "int[3][4]");
}

TEST(Parser, FunctionPointerDeclarations) {
  compileOK(R"(
    int inc(int x) { return x + 1; }
    int (*global_fp)(int) = &inc;
    int apply(int (*fn)(int), int v) { return fn(v); }
    int main() {
      int (*local_fp)(int) = &inc;
      return apply(local_fp, 1) + global_fp(2);
    }
  )");
}

TEST(Parser, MemberPointerDeclaration) {
  compileOK(R"(
    class A { public: int x; };
    int main() {
      int A::* pm = &A::x;
      A a;
      a.x = 5;
      return a.*pm;
    }
  )");
}

TEST(Parser, CommaSeparatedDeclarators) {
  compileOK(R"(
    class A { public: int x, y, z; };
    int g1 = 1, g2 = 2;
    int main() { int a = 3, b = 4; A s; s.x = a; return s.x + g1 + g2 + b; }
  )");
}

TEST(Parser, QualifiedMemberAccessSyntax) {
  compileOK(R"(
    class A { public: int m; };
    class B : public A { public: int m2; };
    int main() {
      B b;
      b.A::m = 1;
      B *p = &b;
      return p->A::m;
    }
  )");
}

TEST(Parser, NewDeleteForms) {
  compileOK(R"(
    class A { public: int v; A() : v(1) {} };
    int main() {
      A *single = new A();
      A *many = new A[3];
      int *ints = new int[10];
      int r = single->v + many[2].v;
      delete single;
      delete[] many;
      delete[] ints;
      return r;
    }
  )");
}

TEST(Parser, CStyleAndNamedCasts) {
  compileOK(R"(
    class A { public: int v; };
    class B : public A { public: int w; };
    int main() {
      double d = 3.7;
      int i = (int)d;
      B b;
      A *a = static_cast<A*>(&b);
      B *back = (B*)a;
      A *r = reinterpret_cast<A*>(back);
      return i + (r != nullptr ? 1 : 0);
    }
  )");
}

TEST(Parser, SizeofForms) {
  compileOK(R"(
    class A { public: int v; };
    int main() {
      A a;
      return sizeof(A) + sizeof(int) + sizeof(a.v);
    }
  )");
}

TEST(Parser, ConditionalAndCommaOperators) {
  compileOK(R"(
    int main() {
      int a = 1 < 2 ? 3 : 4;
      int b;
      for (b = 0, a = 0; b < 3; b = b + 1, a = a + 2) { }
      return a;
    }
  )");
}

TEST(Parser, VolatileFieldSpecifier) {
  auto C = compileOK(R"(
    class Dev { public: volatile int reg; int plain; };
    int main() { Dev d; d.reg = 1; return d.plain; }
  )");
  EXPECT_TRUE(findField(*C, "Dev", "reg")->isVolatile());
  EXPECT_FALSE(findField(*C, "Dev", "plain")->isVolatile());
}

TEST(Parser, StructAndClassTagKinds) {
  auto C = compileOK(R"(
    struct S { int a; };
    class K { public: int b; };
    int main() { S s; K k; s.a = 1; k.b = 2; return s.a + k.b; }
  )");
  EXPECT_EQ(findClass(*C, "S")->tagKind(), TagKind::Struct);
  EXPECT_EQ(findClass(*C, "K")->tagKind(), TagKind::Class);
}

//===----------------------------------------------------------------------===//
// Syntax errors
//===----------------------------------------------------------------------===//

TEST(Parser, MissingSemicolonAfterClass) {
  std::string Err = compileError("class A { public: int x; } int main() "
                                 "{ return 0; }");
  EXPECT_NE(Err.find("expected ';'"), std::string::npos);
}

TEST(Parser, UnknownTypeName) {
  std::string Err = compileError("int main() { Unknown u; return 0; }");
  EXPECT_NE(Err.find("expected"), std::string::npos);
}

TEST(Parser, ClassRedefinitionIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int x; };
    class A { public: int y; };
    int main() { return 0; }
  )");
  EXPECT_NE(Err.find("redefinition"), std::string::npos);
}

TEST(Parser, DuplicateMemberIsAnError) {
  std::string Err = compileError(R"(
    class A { public: int x; int x; };
    int main() { return 0; }
  )");
  EXPECT_NE(Err.find("duplicate member"), std::string::npos);
}

TEST(Parser, OutOfLineDefinitionWithoutDeclaration) {
  std::string Err = compileError(R"(
    class A { public: int x; };
    int A::phantom() { return 0; }
    int main() { return 0; }
  )");
  EXPECT_NE(Err.find("does not match"), std::string::npos);
}

TEST(Parser, RecoveryContinuesAfterBadStatement) {
  // Both errors should be reported, not just the first.
  std::ostringstream Diag;
  auto C = compileString(R"(
    int main() {
      int x = ;
      int y = ;
      return 0;
    }
  )", &Diag);
  EXPECT_FALSE(C->Success);
  EXPECT_GE(C->Diags.errorCount(), 2u);
}

TEST(Parser, ExpressionStatementAmbiguityResolvedByTypeName) {
  // `a * b;` where a is a class → declaration of pointer b; where a is a
  // variable → multiplication.
  auto C = compileOK(R"(
    class a { public: int v; };
    int main() {
      a * b;         // declares b : a*
      a obj;
      b = &obj;
      return b->v;
    }
  )");
  (void)C;
}

TEST(Parser, TranslationUnitOrderIsPreserved) {
  auto C = compileOK(R"(
    class A { public: int x; };
    int helper() { return 0; }
    class B { public: int y; };
    int main() { A a; B b; a.x = 0; b.y = 0; return helper(); }
  )");
  const auto &Decls = C->context().translationUnit()->decls();
  ASSERT_GE(Decls.size(), 4u);
  EXPECT_EQ(Decls[0]->name(), "A");
  EXPECT_EQ(Decls[1]->name(), "helper");
  EXPECT_EQ(Decls[2]->name(), "B");
}

} // namespace

namespace {

TEST(Parser, MemberPointerTypedDataMember) {
  // A data member whose type is itself a pointer-to-member.
  auto C = compileOK(R"(
    class Target { public: int x; int y; };
    class Selector {
    public:
      int Target::* which;
      Selector() { which = &Target::y; }
    };
    int main() {
      Target t;
      t.y = 9;
      Selector s;
      return t.*(s.which);
    }
  )");
  ExecResult R = runOK(*C);
  EXPECT_EQ(R.ExitCode, 9);
}

} // namespace
