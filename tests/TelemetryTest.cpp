//===-- tests/TelemetryTest.cpp - Telemetry & provenance tests ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the telemetry registry (spans, counters, scope
/// install/restore, disabled-path no-op), the span tree across
/// ThreadPool fan-out, per-span memory accounting, the Chrome
/// trace-event JSON emitter, and liveness provenance: direct marks
/// carry a source location, propagated marks carry the propagation
/// edge, and the --explain report renders the full cause chain.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Report.h"
#include "support/ThreadPool.h"
#include "telemetry/MemoryAccounting.h"
#include "telemetry/Telemetry.h"

#include <atomic>
#include <vector>

using namespace dmm;
using namespace dmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Telemetry, CountersAccumulateAndReadBackZeroWhenAbsent) {
  Telemetry Tel;
  TelemetryScope Scope(Tel);
  Telemetry::count("x.a");
  Telemetry::count("x.a", 4);
  Telemetry::count("x.b", 7);
  EXPECT_EQ(Tel.counter("x.a"), 5u);
  EXPECT_EQ(Tel.counter("x.b"), 7u);
  EXPECT_EQ(Tel.counter("never.touched"), 0u);
}

TEST(Telemetry, SpansAggregateInvocationsInActivationOrder) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    for (int I = 0; I < 3; ++I) {
      Span Timer("alpha");
    }
    Span Timer("beta");
  }
  ASSERT_EQ(Tel.phases().size(), 2u);
  EXPECT_EQ(Tel.phases()[0].Name, "alpha");
  EXPECT_EQ(Tel.phases()[1].Name, "beta");
  const PhaseStat *Alpha = Tel.phase("alpha");
  ASSERT_NE(Alpha, nullptr);
  EXPECT_EQ(Alpha->Invocations, 3u);
  EXPECT_EQ(Tel.phase("gamma"), nullptr);
  EXPECT_EQ(Tel.spans().size(), 4u);
}

TEST(Telemetry, NestedSpansRecordDepthAndParentLinks) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Span Outer("outer");
    {
      Span Inner("inner");
      EXPECT_EQ(Inner.id(), Telemetry::currentSpanId());
    }
    EXPECT_EQ(Outer.id(), Telemetry::currentSpanId());
  }
  EXPECT_EQ(Telemetry::currentSpanId(), 0u);
  const PhaseStat *Outer = Tel.phase("outer");
  const PhaseStat *Inner = Tel.phase("inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Depth, 0u);
  EXPECT_EQ(Inner->Depth, 1u);

  // Span records: ids are dense begin-ordered, parents precede
  // children, both spans closed.
  ASSERT_EQ(Tel.spans().size(), 2u);
  const SpanRecord &OuterRec = Tel.spans()[0];
  const SpanRecord &InnerRec = Tel.spans()[1];
  EXPECT_EQ(OuterRec.Id, 1u);
  EXPECT_EQ(OuterRec.Parent, 0u);
  EXPECT_EQ(InnerRec.Parent, OuterRec.Id);
  EXPECT_TRUE(OuterRec.Closed);
  EXPECT_TRUE(InnerRec.Closed);
  EXPECT_GE(OuterRec.DurNanos, InnerRec.DurNanos);
}

TEST(Telemetry, SpanArgsAreRecorded) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Span S("tagged");
    S.arg("file", std::string("a.mcc"));
    S.arg("bytes", uint64_t(123));
  }
  ASSERT_EQ(Tel.spans().size(), 1u);
  const SpanRecord &R = Tel.spans()[0];
  ASSERT_EQ(R.Args.size(), 2u);
  EXPECT_EQ(R.Args[0].Key, "file");
  EXPECT_TRUE(R.Args[0].IsString);
  EXPECT_EQ(R.Args[0].StrValue, "a.mcc");
  EXPECT_EQ(R.Args[1].Key, "bytes");
  EXPECT_FALSE(R.Args[1].IsString);
  EXPECT_EQ(R.Args[1].IntValue, 123u);
}

TEST(Telemetry, SpanIdsSurviveParallelForFanOut) {
  Telemetry Tel;
  uint64_t OuterId = 0;
  {
    TelemetryScope Scope(Tel);
    ThreadPool Pool(4);
    Span Outer("fanout");
    OuterId = Outer.id();
    Pool.parallelFor(16, [&](size_t) {
      Span Task("task");
      (void)Task;
    });
  }
  ASSERT_NE(OuterId, 0u);
  size_t Tasks = 0;
  for (const SpanRecord &R : Tel.spans()) {
    if (R.Name != "task")
      continue;
    ++Tasks;
    // Every worker task attaches to the spawning span, at depth 1 —
    // no orphans, regardless of which pool thread ran it.
    EXPECT_EQ(R.Parent, OuterId);
    EXPECT_EQ(R.Depth, 1u);
  }
  EXPECT_EQ(Tasks, 16u);
  const PhaseStat *Task = Tel.phase("task");
  ASSERT_NE(Task, nullptr);
  EXPECT_EQ(Task->Invocations, 16u);
}

TEST(Telemetry, WorkerContextIsRestoredAfterLoop) {
  Telemetry Tel;
  TelemetryScope Scope(Tel);
  ThreadPool Pool(2);
  {
    Span Outer("first");
    Pool.parallelFor(4, [&](size_t) { Span Task("one"); });
  }
  // No span open now; tasks of a second loop must be roots, not
  // children of a stale context left installed on the workers.
  Pool.parallelFor(4, [&](size_t) { Span Task("two"); });
  for (const SpanRecord &R : Tel.spans()) {
    if (R.Name == "two") {
      EXPECT_EQ(R.Parent, 0u);
    }
  }
}

TEST(Telemetry, SpanLimitDropsRecordsButKeepsAggregates) {
  Telemetry Tel;
  Tel.setSpanLimit(2);
  {
    TelemetryScope Scope(Tel);
    for (int I = 0; I < 5; ++I) {
      Span S("capped");
    }
  }
  EXPECT_EQ(Tel.spans().size(), 2u);
  EXPECT_EQ(Tel.counter("telemetry.spans_dropped"), 3u);
  const PhaseStat *P = Tel.phase("capped");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Invocations, 5u);
}

TEST(Telemetry, MergeFoldsCountersPhasesAndRemapsSpanIds) {
  Telemetry A;
  {
    TelemetryScope Scope(A);
    Span S("shared");
    Telemetry::count("c.x", 1);
  }
  Telemetry B;
  {
    TelemetryScope Scope(B);
    Span Outer("shared");
    Span Inner("extra");
    Telemetry::count("c.x", 2);
  }
  A.merge(B);
  EXPECT_EQ(A.counter("c.x"), 3u);
  const PhaseStat *Shared = A.phase("shared");
  ASSERT_NE(Shared, nullptr);
  EXPECT_EQ(Shared->Invocations, 2u);
  ASSERT_EQ(A.spans().size(), 3u);
  // Merged spans keep dense ids and intra-registry parent links.
  EXPECT_EQ(A.spans()[1].Id, 2u);
  EXPECT_EQ(A.spans()[1].Parent, 0u);
  EXPECT_EQ(A.spans()[2].Id, 3u);
  EXPECT_EQ(A.spans()[2].Parent, 2u);
}

TEST(Telemetry, MemoryAccountingReportsAllocationPeak) {
  if (!memacct::available())
    GTEST_SKIP() << "usable-size accounting unavailable on this platform";
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Span S("alloc_heavy");
    std::vector<std::string> Hog;
    for (int I = 0; I < 256; ++I)
      Hog.emplace_back(1024, 'x');
  }
  ASSERT_EQ(Tel.spans().size(), 1u);
  const SpanRecord &R = Tel.spans()[0];
  // 256 KiB of strings were live inside the span; the peak must see
  // at least that much, and the hog was freed before the span closed,
  // so net is below peak.
  EXPECT_GE(R.MemPeakBytes, 256 * 1024);
  EXPECT_LT(R.MemNetBytes, R.MemPeakBytes);
}

TEST(Telemetry, ScopeRestoresPreviousSinkAndInactiveIsNoOp) {
  EXPECT_EQ(Telemetry::active(), nullptr);
  Telemetry::count("dropped"); // No sink installed: must not crash.
  {
    Span Timer("dropped_phase");
    EXPECT_FALSE(Timer.active());
    EXPECT_EQ(Timer.id(), 0u);
  }
  Telemetry OuterTel;
  {
    TelemetryScope OuterScope(OuterTel);
    EXPECT_EQ(Telemetry::active(), &OuterTel);
    Telemetry InnerTel;
    {
      TelemetryScope InnerScope(InnerTel);
      EXPECT_EQ(Telemetry::active(), &InnerTel);
      Telemetry::count("seen");
    }
    EXPECT_EQ(Telemetry::active(), &OuterTel);
    EXPECT_EQ(InnerTel.counter("seen"), 1u);
    EXPECT_EQ(OuterTel.counter("seen"), 0u);
  }
  EXPECT_EQ(Telemetry::active(), nullptr);
}

TEST(Telemetry, MetricsTableListsPhasesAndCounters) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Span Timer("demo");
    Telemetry::count("demo.items", 42);
  }
  std::ostringstream OS;
  Tel.printMetrics(OS);
  EXPECT_NE(OS.str().find("demo"), std::string::npos);
  EXPECT_NE(OS.str().find("demo.items"), std::string::npos);
  EXPECT_NE(OS.str().find("42"), std::string::npos);
}

TEST(Telemetry, MetricsRowsSortedByNamespaceThenKey) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    // Activation order deliberately differs from sorted order.
    Span Z("zeta");
    Span A("alpha.late");
    Telemetry::count("z.first", 1);
    Telemetry::count("a.second", 2);
  }
  std::ostringstream OS;
  Tel.printMetrics(OS);
  const std::string Out = OS.str();
  EXPECT_LT(Out.find("alpha.late"), Out.find("zeta"));
  EXPECT_LT(Out.find("a.second"), Out.find("z.first"));
  // phases() itself stays in activation order for programmatic use.
  ASSERT_EQ(Tel.phases().size(), 2u);
  EXPECT_EQ(Tel.phases()[0].Name, "zeta");
}

//===----------------------------------------------------------------------===//
// Chrome trace JSON
//===----------------------------------------------------------------------===//

/// Minimal JSON syntax check: braces/brackets balance outside string
/// literals, strings terminate, and the trailing content is exhausted.
bool isBalancedJson(const std::string &S) {
  std::vector<char> Stack;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I; // Skip the escaped character.
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack.push_back(C);
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty();
}

TEST(Telemetry, ChromeTraceIsWellFormed) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Span Outer("outer");
    {
      Span Inner("inner");
    }
    Telemetry::count("outer.things", 3);
  }
  std::ostringstream OS;
  Tel.printChromeTrace(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(isBalancedJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"inner\""), std::string::npos);
  // Counters ride along on a final instant event.
  EXPECT_NE(Json.find("\"ph\": \"I\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer.things\""), std::string::npos);
}

TEST(Telemetry, ChromeTraceEscapesNamesSafely) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    Telemetry::count("weird\"name\\with\ncontrols");
  }
  std::ostringstream OS;
  Tel.printChromeTrace(OS);
  EXPECT_TRUE(isBalancedJson(OS.str())) << OS.str();
}

//===----------------------------------------------------------------------===//
// Pipeline integration: phase names are a stable interface
//===----------------------------------------------------------------------===//

TEST(Telemetry, PipelinePopulatesStablePhaseNames) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    auto C = compileOK("class P { public: int x; };\n"
                       "int main() { P p; p.x = 1; return p.x; }\n");
    analyze(*C);
    runOK(*C);
  }
  for (const char *Phase :
       {"lex", "parse", "sema", "callgraph", "analysis", "interp"}) {
    const PhaseStat *P = Tel.phase(Phase);
    ASSERT_NE(P, nullptr) << "missing phase " << Phase;
    EXPECT_GT(P->Invocations, 0u) << Phase;
  }
  EXPECT_GT(Tel.counter("lex.tokens"), 0u);
  EXPECT_GT(Tel.counter("sema.classes"), 0u);
  EXPECT_GT(Tel.counter("analysis.exprs_visited"), 0u);
  EXPECT_GT(Tel.counter("interp.steps"), 0u);
}

//===----------------------------------------------------------------------===//
// Liveness provenance
//===----------------------------------------------------------------------===//

const char *ProvenanceProgram = R"(union Blob {
public:
  int word;
  double wide;
};
class Holder {
public:
  int kept;
  int lost;
};
int main() {
  Blob b;
  b.wide = 2.0;
  Holder h;
  h.kept = 3;
  int *p = reinterpret_cast<int*>(&h);
  return b.word;
}
)";

AnalysisOptions withProvenance() {
  AnalysisOptions Options;
  Options.RecordProvenance = true;
  return Options;
}

TEST(Provenance, DirectReadCarriesMarkingLocation) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  const FieldDecl *Word = findField(*C, "Blob", "word");
  ASSERT_TRUE(R.isLive(Word));
  const LivenessProvenance *Prov = R.provenance(Word);
  ASSERT_NE(Prov, nullptr);
  EXPECT_EQ(Prov->Reason, LivenessReason::Read);
  EXPECT_TRUE(Prov->Loc.isValid());
  EXPECT_FALSE(Prov->isPropagated());
}

TEST(Provenance, UnsafeCastSweepRecordsSourceClassAndCastLocation) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  // The cast's *source* type (Holder) is swept, members live or not.
  const FieldDecl *Lost = findField(*C, "Holder", "lost");
  ASSERT_TRUE(R.isLive(Lost));
  const LivenessProvenance *Prov = R.provenance(Lost);
  ASSERT_NE(Prov, nullptr);
  EXPECT_EQ(Prov->Reason, LivenessReason::UnsafeCast);
  ASSERT_NE(Prov->Via, nullptr);
  EXPECT_EQ(Prov->Via->name(), "Holder");
  EXPECT_TRUE(Prov->Loc.isValid());
  EXPECT_TRUE(Prov->isPropagated());
}

TEST(Provenance, UnionClosureChainsToTriggeringMember) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  const FieldDecl *Wide = findField(*C, "Blob", "wide");
  ASSERT_TRUE(R.isLive(Wide));
  const LivenessProvenance *Prov = R.provenance(Wide);
  ASSERT_NE(Prov, nullptr);
  EXPECT_EQ(Prov->Reason, LivenessReason::UnionClosure);
  ASSERT_NE(Prov->Via, nullptr);
  EXPECT_EQ(Prov->Via->name(), "Blob");
  ASSERT_NE(Prov->Trigger, nullptr);
  EXPECT_EQ(Prov->Trigger->qualifiedName(), "Blob::word");
  // The trigger's own provenance roots the chain at a source location.
  const LivenessProvenance *Root = R.provenance(Prov->Trigger);
  ASSERT_NE(Root, nullptr);
  EXPECT_TRUE(Root->Loc.isValid());
}

TEST(Provenance, NotRecordedWithoutOptIn) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C);
  const FieldDecl *Word = findField(*C, "Blob", "word");
  ASSERT_TRUE(R.isLive(Word));
  EXPECT_EQ(R.provenance(Word), nullptr);
}

//===----------------------------------------------------------------------===//
// --explain report rendering
//===----------------------------------------------------------------------===//

TEST(Explain, DirectMarkEndsAtSourceLocation) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  std::ostringstream OS;
  ASSERT_TRUE(printExplainReport(OS, C->context(), R, "Blob::word", &C->SM));
  EXPECT_NE(OS.str().find("Blob::word: live"), std::string::npos);
  EXPECT_NE(OS.str().find("at "), std::string::npos) << OS.str();
}

TEST(Explain, UnsafeCastShowsPropagationEdge) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  std::ostringstream OS;
  ASSERT_TRUE(
      printExplainReport(OS, C->context(), R, "Holder::lost", &C->SM));
  EXPECT_NE(OS.str().find("swept: transitively contained in 'Holder'"),
            std::string::npos)
      << OS.str();
  EXPECT_NE(OS.str().find("unsafe cast"), std::string::npos);
  EXPECT_NE(OS.str().find("at "), std::string::npos);
}

TEST(Explain, UnionClosureChainReachesRootCause) {
  auto C = compileOK(ProvenanceProgram);
  DeadMemberResult R = analyze(*C, withProvenance());
  std::ostringstream OS;
  ASSERT_TRUE(printExplainReport(OS, C->context(), R, "Blob::wide", &C->SM));
  std::string Out = OS.str();
  EXPECT_NE(Out.find("swept: closing union 'Blob'"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("triggered by live member 'Blob::word'"),
            std::string::npos);
  // The chain bottoms out at the trigger's marking expression.
  EXPECT_NE(Out.find("Blob::word: live"), std::string::npos);
  EXPECT_NE(Out.find("at "), std::string::npos);
}

TEST(Explain, DeadMemberAndUnknownQuery) {
  auto C = compileOK("class Q { public: int unused; };\n"
                     "int main() { Q q; return 0; }\n");
  DeadMemberResult R = analyze(*C, withProvenance());
  std::ostringstream OS;
  ASSERT_TRUE(printExplainReport(OS, C->context(), R, "Q::unused", &C->SM));
  EXPECT_NE(OS.str().find("dead"), std::string::npos);
  std::ostringstream OS2;
  EXPECT_FALSE(printExplainReport(OS2, C->context(), R, "Q::missing", &C->SM));
}

} // namespace
