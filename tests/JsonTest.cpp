//===-- tests/JsonTest.cpp - JSON parser hardening tests ------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Malformed-input coverage for the strict JSON parser (telemetry/
/// Json.h): nesting-depth limits, truncated escapes, invalid UTF-8,
/// number-grammar edge cases including double overflow, and duplicate
/// object keys. The happy-path and surrogate-pair tests live in
/// StatsSchemaTest.cpp; this file is the adversarial half.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace dmm;

namespace {

json::Value parseOK(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Text << ": " << Error;
  return V;
}

bool parseFails(const std::string &Text) {
  json::Value V;
  std::string Error;
  return !json::parse(Text, V, Error);
}

std::string nested(size_t Depth) {
  std::string S;
  S.reserve(Depth * 2 + 1);
  S.append(Depth, '[');
  S += '1';
  S.append(Depth, ']');
  return S;
}

TEST(JsonHardening, NestingDepthIsCapped) {
  // The cap is 200 levels; one under parses, well past it fails
  // cleanly instead of overflowing the stack.
  EXPECT_FALSE(parseFails(nested(199)));
  EXPECT_TRUE(parseFails(nested(201)));
  EXPECT_TRUE(parseFails(nested(5000)));
  // Mixed nesting counts the same.
  std::string Mixed;
  for (size_t I = 0; I != 150; ++I)
    Mixed += "{\"k\":[";
  Mixed += "1";
  for (size_t I = 0; I != 150; ++I)
    Mixed += "]}";
  EXPECT_TRUE(parseFails(Mixed));
}

TEST(JsonHardening, TruncatedEscapesAreRejected) {
  EXPECT_TRUE(parseFails("\"\\"));
  EXPECT_TRUE(parseFails("\"\\u\""));
  EXPECT_TRUE(parseFails("\"\\u12\""));
  EXPECT_TRUE(parseFails("\"\\u12g4\""));
  EXPECT_TRUE(parseFails("\"\\ud83d\\u\""));    // Truncated low surrogate.
  EXPECT_TRUE(parseFails("\"\\ud83d\\n\""));    // High surrogate then \n.
  EXPECT_TRUE(parseFails("\"\\ud83d\\u0041\"")); // Low half out of range.
  EXPECT_TRUE(parseFails("\"\\udc00\""));        // Lone low surrogate.
}

TEST(JsonHardening, InvalidUtf8IsRejected) {
  // Stray continuation byte, overlong lead, and out-of-range leads.
  EXPECT_TRUE(parseFails("\"\x80\""));
  EXPECT_TRUE(parseFails("\"\xC1\xBF\"")); // Overlong 2-byte form.
  EXPECT_TRUE(parseFails("\"\xF5\x80\x80\x80\""));
  EXPECT_TRUE(parseFails("\"\xFF\""));
  // Truncated sequences (lead promises more bytes than exist).
  EXPECT_TRUE(parseFails("\"\xC3\""));
  EXPECT_TRUE(parseFails("\"\xE2\x82\""));
  EXPECT_TRUE(parseFails("\"\xF0\x9F\x98\""));
  // Bad continuation bytes.
  EXPECT_TRUE(parseFails("\"\xC3\x41\""));
  EXPECT_TRUE(parseFails("\"\xE2\x82\xC0\""));
  // Overlong 3- and 4-byte forms and UTF-16 surrogates as raw UTF-8.
  EXPECT_TRUE(parseFails("\"\xE0\x80\xA0\""));
  EXPECT_TRUE(parseFails("\"\xED\xA0\x80\"")); // U+D800.
  EXPECT_TRUE(parseFails("\"\xF0\x80\x90\x80\""));
  EXPECT_TRUE(parseFails("\"\xF4\x90\x80\x80\"")); // Above U+10FFFF.
}

TEST(JsonHardening, ValidUtf8RoundTrips) {
  EXPECT_EQ(parseOK("\"\xC3\xA9\"").str(), "\xC3\xA9");         // é
  EXPECT_EQ(parseOK("\"\xE2\x82\xAC\"").str(), "\xE2\x82\xAC"); // €
  EXPECT_EQ(parseOK("\"\xF0\x9F\x98\x80\"").str(),
            "\xF0\x9F\x98\x80"); // 😀
  // Boundary leads: U+0080, U+0800, U+FFFD, U+10FFFF.
  EXPECT_EQ(parseOK("\"\xC2\x80\"").str(), "\xC2\x80");
  EXPECT_EQ(parseOK("\"\xE0\xA0\x80\"").str(), "\xE0\xA0\x80");
  EXPECT_EQ(parseOK("\"\xEF\xBF\xBD\"").str(), "\xEF\xBF\xBD");
  EXPECT_EQ(parseOK("\"\xF4\x8F\xBF\xBF\"").str(), "\xF4\x8F\xBF\xBF");
}

TEST(JsonHardening, NumberGrammarEdgeCases) {
  // Grammar-valid values, including ones that need the full production.
  EXPECT_EQ(parseOK("0").number(), 0.0);
  EXPECT_EQ(parseOK("-0").number(), 0.0);
  EXPECT_EQ(parseOK("1e3").number(), 1000.0);
  EXPECT_EQ(parseOK("-2.5E-1").number(), -0.25);
  EXPECT_EQ(parseOK("9007199254740991").number(), 9007199254740991.0);

  // Grammar violations.
  EXPECT_TRUE(parseFails("+1"));
  EXPECT_TRUE(parseFails("01"));
  EXPECT_TRUE(parseFails("-01"));
  EXPECT_TRUE(parseFails(".5"));
  EXPECT_TRUE(parseFails("1."));
  EXPECT_TRUE(parseFails("1.e3"));
  EXPECT_TRUE(parseFails("1e"));
  EXPECT_TRUE(parseFails("1e+"));
  EXPECT_TRUE(parseFails("-"));
  EXPECT_TRUE(parseFails("NaN"));
  EXPECT_TRUE(parseFails("Infinity"));

  // Grammar-valid but overflowing double: storing infinity would emit
  // non-JSON on the way back out, so the parser rejects it.
  EXPECT_TRUE(parseFails("1e999"));
  EXPECT_TRUE(parseFails("-1e999"));
  EXPECT_TRUE(parseFails("{\"a\": [1e400]}"));
  // Underflow to zero is fine — zero is representable.
  EXPECT_EQ(parseOK("1e-999").number(), 0.0);
}

TEST(JsonHardening, DuplicateObjectKeysAreRejected) {
  EXPECT_TRUE(parseFails("{\"a\": 1, \"a\": 2}"));
  EXPECT_TRUE(parseFails("{\"a\": 1, \"b\": {\"c\": 1, \"c\": 2}}"));
  // Escapes that decode to the same key collide too.
  EXPECT_TRUE(parseFails("{\"a\": 1, \"\\u0061\": 2}"));
  // Distinct keys at the same level, or the same key at different
  // levels, are fine.
  EXPECT_FALSE(parseFails("{\"a\": 1, \"b\": 2}"));
  EXPECT_FALSE(parseFails("{\"a\": {\"a\": 1}}"));
}

} // namespace
