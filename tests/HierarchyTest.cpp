//===-- tests/HierarchyTest.cpp - Class hierarchy tests -------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

const char *DiamondProgram = R"(
  class Top { public: int t; virtual int tag() { return 0; } };
  class L : public virtual Top { public: int l; virtual int tag() { return 1; } };
  class R : public virtual Top { public: int r; };
  class B : public L, public R { public: int b; virtual int tag() { return 3; } };
  int main() { B x; return x.tag(); }
)";

TEST(Hierarchy, IsDerivedFromIsReflexiveAndTransitive) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  const ClassDecl *Top = findClass(*C, "Top");
  const ClassDecl *L = findClass(*C, "L");
  const ClassDecl *B = findClass(*C, "B");
  EXPECT_TRUE(H.isDerivedFrom(Top, Top));
  EXPECT_TRUE(H.isDerivedFrom(L, Top));
  EXPECT_TRUE(H.isDerivedFrom(B, Top));
  EXPECT_TRUE(H.isDerivedFrom(B, L));
  EXPECT_FALSE(H.isDerivedFrom(Top, B));
  EXPECT_FALSE(H.isDerivedFrom(L, B));
}

TEST(Hierarchy, DirectSubclasses) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  auto Subs = H.directSubclasses(findClass(*C, "Top"));
  EXPECT_EQ(Subs.size(), 2u);
}

TEST(Hierarchy, SelfAndSubclassesCoversWholeSubtree) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  auto All = H.selfAndSubclasses(findClass(*C, "Top"));
  EXPECT_EQ(All.size(), 4u); // Top, L, R, B.
}

TEST(Hierarchy, TransitiveBasesDeduplicatesDiamond) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  auto Bases = H.transitiveBases(findClass(*C, "B"));
  EXPECT_EQ(Bases.size(), 3u); // L, R, Top (once).
}

TEST(Hierarchy, VirtualBasesCollectsSharedTop) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  auto VBs = H.virtualBases(findClass(*C, "B"));
  ASSERT_EQ(VBs.size(), 1u);
  EXPECT_EQ(VBs[0]->name(), "Top");
  EXPECT_TRUE(H.virtualBases(findClass(*C, "Top")).empty());
}

TEST(Hierarchy, LookupFieldWithHiding) {
  auto C = compileOK(R"(
    class A { public: int m; int onlyA; };
    class B : public A { public: int m; };
    int main() { B b; b.m = 1; b.onlyA = 2; return 0; }
  )");
  const ClassHierarchy &H = C->hierarchy();
  const ClassDecl *B = findClass(*C, "B");
  FieldDecl *M = H.lookupField(B, "m");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->parent()->name(), "B");
  FieldDecl *OnlyA = H.lookupField(B, "onlyA");
  ASSERT_NE(OnlyA, nullptr);
  EXPECT_EQ(OnlyA->parent()->name(), "A");
}

TEST(Hierarchy, LookupReportsAmbiguity) {
  auto C = compileOK(R"(
    class L { public: int m; };
    class R { public: int m; };
    class B : public L, public R { public: int own; };
    int main() { B b; b.own = 1; return 0; }
  )");
  const ClassHierarchy &H = C->hierarchy();
  bool Ambiguous = false;
  FieldDecl *M = H.lookupField(findClass(*C, "B"), "m", &Ambiguous);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Ambiguous);
}

TEST(Hierarchy, LookupMissingMemberReturnsNull) {
  auto C = compileOK(R"(
    class A { public: int m; };
    int main() { A a; return a.m; }
  )");
  bool Ambiguous = true;
  EXPECT_EQ(C->hierarchy().lookupField(findClass(*C, "A"), "zzz",
                                       &Ambiguous),
            nullptr);
  EXPECT_FALSE(Ambiguous);
}

TEST(Hierarchy, ResolveVirtualCallFindsMostDerivedOverride) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  MethodDecl *TopTag = findClass(*C, "Top")->findMethod("tag");
  MethodDecl *Resolved = H.resolveVirtualCall(findClass(*C, "B"), TopTag);
  ASSERT_NE(Resolved, nullptr);
  EXPECT_EQ(Resolved->parent()->name(), "B");
}

TEST(Hierarchy, ResolveVirtualCallFallsBackToInherited) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  // R does not override tag; Top's version runs (through R there is no
  // closer override).
  MethodDecl *TopTag = findClass(*C, "Top")->findMethod("tag");
  MethodDecl *Resolved = H.resolveVirtualCall(findClass(*C, "R"), TopTag);
  ASSERT_NE(Resolved, nullptr);
  EXPECT_EQ(Resolved->parent()->name(), "Top");
}

TEST(Hierarchy, ResolveVirtualCallOnUnrelatedClassIsNull) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 1; } };
    class X { public: int unrelated; };
    int main() { A a; X x; x.unrelated = 0; return a.f(); }
  )");
  const ClassHierarchy &H = C->hierarchy();
  MethodDecl *F = findClass(*C, "A")->findMethod("f");
  EXPECT_EQ(H.resolveVirtualCall(findClass(*C, "X"), F), nullptr);
}

TEST(Hierarchy, OverridersEnumeratesSubtreeOverrides) {
  auto C = compileOK(DiamondProgram);
  const ClassHierarchy &H = C->hierarchy();
  MethodDecl *TopTag = findClass(*C, "Top")->findMethod("tag");
  auto Overrides = H.overriders(TopTag);
  // L::tag and B::tag.
  EXPECT_EQ(Overrides.size(), 2u);
}

TEST(Hierarchy, IsVirtualMethodWithoutKeyword) {
  auto C = compileOK(R"(
    class A { public: virtual int f() { return 1; } };
    class B : public A { public: int f() { return 2; } };
    int main() { B b; return b.f(); }
  )");
  const ClassHierarchy &H = C->hierarchy();
  EXPECT_TRUE(H.isVirtualMethod(findClass(*C, "B")->findMethod("f")));
}

TEST(Hierarchy, NonVirtualMethodStaysNonVirtual) {
  auto C = compileOK(R"(
    class A { public: int f() { return 1; } };
    class B : public A { public: int f() { return 2; } };
    int main() { B b; return b.f(); }
  )");
  const ClassHierarchy &H = C->hierarchy();
  EXPECT_FALSE(H.isVirtualMethod(findClass(*C, "B")->findMethod("f")));
  EXPECT_FALSE(H.isPolymorphic(findClass(*C, "B")));
}

TEST(Hierarchy, PolymorphismFromVirtualDtor) {
  auto C = compileOK(R"(
    class A { public: int a; virtual ~A() {} };
    int main() { A x; return x.a; }
  )");
  EXPECT_TRUE(C->hierarchy().isPolymorphic(findClass(*C, "A")));
}

} // namespace
