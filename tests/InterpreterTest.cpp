//===-- tests/InterpreterTest.cpp - MiniC++ interpreter tests -------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

long long exitOf(const std::string &Source) {
  auto C = compileOK(Source);
  ExecResult R = runOK(*C);
  return R.ExitCode;
}

std::string outputOf(const std::string &Source) {
  auto C = compileOK(Source);
  ExecResult R = runOK(*C);
  return R.Output;
}

//===----------------------------------------------------------------------===//
// Scalars, operators, control flow
//===----------------------------------------------------------------------===//

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_EQ(exitOf("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(exitOf("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(exitOf("int main() { return 17 % 5 + 20 / 4; }"), 7);
  EXPECT_EQ(exitOf("int main() { return 1 << 4; }"), 16);
  EXPECT_EQ(exitOf("int main() { return (6 & 3) | (8 ^ 12); }"), 6);
}

TEST(Interp, ComparisonAndLogical) {
  EXPECT_EQ(exitOf("int main() { if (3 < 4 && 4 <= 4) { return 1; } "
                   "return 0; }"),
            1);
  EXPECT_EQ(exitOf("int main() { if (3 > 4 || 4 != 4) { return 1; } "
                   "return 0; }"),
            0);
  EXPECT_EQ(exitOf("int main() { return !false == true ? 7 : 8; }"), 7);
}

TEST(Interp, ShortCircuitEvaluation) {
  // The second operand must not run (it would divide by zero).
  EXPECT_EQ(exitOf("int main() { int z = 0; "
                   "if (z != 0 && 10 / z > 0) { return 1; } return 2; }"),
            2);
}

TEST(Interp, DoubleArithmetic) {
  EXPECT_EQ(exitOf("int main() { double d = 1.5; d = d * 4.0; "
                   "return (int)d; }"),
            6);
  EXPECT_EQ(outputOf("int main() { print_double(2.5); return 0; }"),
            "2.5\n");
}

TEST(Interp, CharsAndStrings) {
  EXPECT_EQ(exitOf("int main() { char c = 'A'; return (int)c; }"), 65);
  EXPECT_EQ(outputOf(R"(int main() { print_str("hi\n"); return 0; })"),
            "hi\n");
  EXPECT_EQ(outputOf("int main() { print_char('x'); print_char('y'); "
                     "return 0; }"),
            "xy");
}

TEST(Interp, WhileAndForLoops) {
  EXPECT_EQ(exitOf("int main() { int s = 0; int i = 0; "
                   "while (i < 5) { s = s + i; i = i + 1; } return s; }"),
            10);
  EXPECT_EQ(exitOf("int main() { int s = 0; "
                   "for (int i = 0; i < 5; i = i + 1) { s = s + i; } "
                   "return s; }"),
            10);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_EQ(exitOf("int main() { int s = 0; "
                   "for (int i = 0; i < 10; i = i + 1) { "
                   "if (i == 3) { continue; } "
                   "if (i == 6) { break; } s = s + i; } return s; }"),
            0 + 1 + 2 + 4 + 5);
}

TEST(Interp, IncrementDecrementSemantics) {
  EXPECT_EQ(exitOf("int main() { int i = 5; int a = i++; return a * 10 + "
                   "i; }"),
            56);
  EXPECT_EQ(exitOf("int main() { int i = 5; int a = ++i; return a * 10 + "
                   "i; }"),
            66);
  EXPECT_EQ(exitOf("int main() { int i = 5; return i--; }"), 5);
}

TEST(Interp, CompoundAssignments) {
  EXPECT_EQ(exitOf("int main() { int x = 10; x += 5; x -= 3; x *= 2; "
                   "x /= 4; x %= 5; return x; }"),
            1);
}

TEST(Interp, ConditionalAndComma) {
  EXPECT_EQ(exitOf("int main() { int a = 1 < 2 ? 10 : 20; return a; }"),
            10);
  EXPECT_EQ(exitOf("int main() { int a; int b; a = (b = 3, b + 1); "
                   "return a * 10 + b; }"),
            43);
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

TEST(Interp, RecursionAndPrototypes) {
  EXPECT_EQ(exitOf(R"(
    int fib(int n);
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); }
  )"),
            55);
}

TEST(Interp, MutualRecursionViaPrototype) {
  EXPECT_EQ(exitOf(R"(
    int isOdd(int n);
    int isEven(int n) { if (n == 0) { return 1; } return isOdd(n - 1); }
    int isOdd(int n) { if (n == 0) { return 0; } return isEven(n - 1); }
    int main() { return isEven(10) * 10 + isOdd(7); }
  )"),
            11);
}

TEST(Interp, ReferenceParametersMutateCaller) {
  EXPECT_EQ(exitOf(R"(
    void bump(int &x) { x = x + 1; }
    int main() { int v = 41; bump(v); return v; }
  )"),
            42);
}

TEST(Interp, FunctionPointers) {
  EXPECT_EQ(exitOf(R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int apply(int (*op)(int, int), int x, int y) { return op(x, y); }
    int main() { return apply(&add, 3, 4) * 10 + apply(&mul, 3, 4); }
  )"),
            82);
}

TEST(Interp, GlobalVariablesAndInitOrder) {
  EXPECT_EQ(exitOf(R"(
    int base = 10;
    int derived = base + 5;
    int main() { return derived; }
  )"),
            15);
}

//===----------------------------------------------------------------------===//
// Objects, constructors, destructors
//===----------------------------------------------------------------------===//

TEST(Interp, ConstructorInitializerList) {
  EXPECT_EQ(exitOf(R"(
    class A {
    public:
      int x; int y;
      A(int v) : x(v), y(v * 2) {}
    };
    int main() { A a(21); return a.y - a.x; }
  )"),
            21);
}

TEST(Interp, BaseConstructorChaining) {
  EXPECT_EQ(exitOf(R"(
    class Base {
    public:
      int b;
      Base(int v) : b(v) {}
    };
    class Derived : public Base {
    public:
      int d;
      Derived(int v) : Base(v + 1), d(v) {}
    };
    int main() { Derived x(10); return x.b * 100 + x.d; }
  )"),
            1110);
}

TEST(Interp, MemberObjectConstruction) {
  EXPECT_EQ(exitOf(R"(
    class Inner {
    public:
      int v;
      Inner() : v(7) {}
    };
    class Outer {
    public:
      Inner inner;
      int w;
      Outer() : w(3) {}
    };
    int main() { Outer o; return o.inner.v * 10 + o.w; }
  )"),
            73);
}

TEST(Interp, DestructorOrderIsReverse) {
  EXPECT_EQ(outputOf(R"(
    class Noisy {
    public:
      int id;
      Noisy(int i) : id(i) {}
      ~Noisy() { print_int(id); }
    };
    int main() {
      Noisy a(1);
      Noisy b(2);
      return 0;
    }
  )"),
            "2\n1\n");
}

TEST(Interp, MemberAndBaseDestructorChain) {
  EXPECT_EQ(outputOf(R"(
    class Member {
    public:
      int id;
      Member() : id(10) {}
      ~Member() { print_int(id); }
    };
    class Base {
    public:
      int b;
      ~Base() { print_int(1); }
    };
    class Derived : public Base {
    public:
      Member m;
      ~Derived() { print_int(2); }
    };
    int main() { Derived d; return d.b + d.m.id * 0; }
  )"),
            "2\n10\n1\n"); // Own dtor, then members, then bases.
}

TEST(Interp, VirtualDispatchThroughBasePointer) {
  EXPECT_EQ(exitOf(R"(
    class Shape { public: virtual int area() { return 0; } };
    class Square : public Shape {
    public:
      int side;
      Square(int s) : side(s) {}
      virtual int area() { return side * side; }
    };
    int main() {
      Shape *s = new Square(6);
      int a = s->area();
      delete s;
      return a;
    }
  )"),
            36);
}

TEST(Interp, VirtualDispatchOnReferenceParameter) {
  EXPECT_EQ(exitOf(R"(
    class B { public: virtual int id() { return 1; } };
    class D : public B { public: virtual int id() { return 2; } };
    int probe(B &b) { return b.id(); }
    int main() { D d; return probe(d); }
  )"),
            2);
}

TEST(Interp, QualifiedCallBypassesDispatch) {
  EXPECT_EQ(exitOf(R"(
    class B { public: virtual int id() { return 1; } };
    class D : public B { public: virtual int id() { return 2; } };
    int main() { D d; return d.id() * 10 + d.B::id(); }
  )"),
            21);
}

TEST(Interp, DispatchDuringConstructionUsesStaticType) {
  // As in C++: a virtual call from a base constructor runs the base
  // version, not the derived override.
  EXPECT_EQ(outputOf(R"(
    class B {
    public:
      int x;
      B() { print_int(tag()); }
      virtual int tag() { return 1; }
    };
    class D : public B {
    public:
      virtual int tag() { return 2; }
    };
    int main() { D d; print_int(d.tag()); return d.x; }
  )"),
            "1\n2\n");
}

TEST(Interp, VirtualDestructorRunsDerivedChain) {
  EXPECT_EQ(outputOf(R"(
    class B {
    public:
      int b;
      virtual ~B() { print_int(1); }
    };
    class D : public B {
    public:
      ~D() { print_int(2); }
    };
    int main() {
      B *p = new D();
      delete p;
      return 0;
    }
  )"),
            "2\n1\n");
}

TEST(Interp, VirtualInheritanceSharesOneBase) {
  EXPECT_EQ(exitOf(R"(
    class Top { public: int t; };
    class Left : public virtual Top { public: int l; };
    class Right : public virtual Top { public: int r; };
    class Bottom : public Left, public Right { public: int b; };
    int main() {
      Bottom x;
      x.t = 5;
      Left *lp = &x;
      Right *rp = &x;
      return lp->t + rp->t; // One shared Top subobject: 10.
    }
  )"),
            10);
}

TEST(Interp, ImplicitThisMemberAccess) {
  EXPECT_EQ(exitOf(R"(
    class Counter {
    public:
      int n;
      Counter() : n(0) {}
      void bump() { n = n + 1; }
      int get() { return n; }
    };
    int main() {
      Counter c;
      c.bump();
      c.bump();
      c.bump();
      return c.get();
    }
  )"),
            3);
}

TEST(Interp, ThisPointerExplicit) {
  EXPECT_EQ(exitOf(R"(
    class A {
    public:
      int v;
      A *self() { return this; }
    };
    int main() { A a; a.v = 9; return a.self()->v; }
  )"),
            9);
}

TEST(Interp, ClassAssignmentCopiesMembers) {
  EXPECT_EQ(exitOf(R"(
    class P { public: int x; int y; };
    int main() {
      P a; a.x = 3; a.y = 4;
      P b; b = a;
      a.x = 100;
      return b.x * 10 + b.y;
    }
  )"),
            34);
}

//===----------------------------------------------------------------------===//
// Pointers, arrays, new/delete
//===----------------------------------------------------------------------===//

TEST(Interp, PointerArithmeticOverArray) {
  EXPECT_EQ(exitOf(R"(
    int main() {
      int a[5];
      for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
      int *p = &a[1];
      p = p + 2;
      return *p; // a[3] == 9
    }
  )"),
            9);
}

TEST(Interp, HeapArrayOfObjects) {
  EXPECT_EQ(exitOf(R"(
    class Cell {
    public:
      int v;
      Cell() : v(5) {}
    };
    int main() {
      Cell *cells = new Cell[4];
      int s = 0;
      for (int i = 0; i < 4; i = i + 1) { s = s + cells[i].v; }
      delete[] cells;
      return s;
    }
  )"),
            20);
}

TEST(Interp, LinkedListTraversal) {
  EXPECT_EQ(exitOf(R"(
    class Node {
    public:
      int value;
      Node *next;
      Node(int v, Node *n) : value(v), next(n) {}
    };
    int main() {
      Node *head = nullptr;
      for (int i = 1; i <= 4; i = i + 1) { head = new Node(i, head); }
      int sum = 0;
      Node *cur = head;
      while (cur != nullptr) { sum = sum + cur->value; cur = cur->next; }
      while (head != nullptr) { Node *n = head->next; delete head; head = n; }
      return sum;
    }
  )"),
            10);
}

TEST(Interp, MemberPointerAccess) {
  EXPECT_EQ(exitOf(R"(
    class A { public: int x; int y; };
    int main() {
      A a; a.x = 11; a.y = 22;
      int A::* pm = &A::y;
      return a.*pm;
    }
  )"),
            22);
}

TEST(Interp, DeleteNullIsNoOp) {
  EXPECT_EQ(exitOf(R"(
    class A { public: int v; };
    int main() { A *p = nullptr; delete p; return 7; }
  )"),
            7);
}

TEST(Interp, SizeofMatchesLayout) {
  auto C = compileOK(R"(
    class A { public: int x; double d; };
    int main() { return sizeof(A); }
  )");
  ExecResult R = runOK(*C);
  LayoutEngine L(C->hierarchy());
  const ClassDecl *A = findClass(*C, "A");
  EXPECT_EQ(static_cast<uint64_t>(R.ExitCode), L.layout(A).CompleteSize);
}

//===----------------------------------------------------------------------===//
// Runtime errors
//===----------------------------------------------------------------------===//

TEST(Interp, NullDereferenceIsAnError) {
  auto C = compileOK(R"(
    class A { public: int v; };
    int main() { A *p = nullptr; return p->v; }
  )");
  Interpreter I(C->context(), C->hierarchy(), {});
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("null"), std::string::npos);
}

TEST(Interp, DivisionByZeroIsAnError) {
  auto C = compileOK("int main() { int z = 0; return 5 / z; }");
  Interpreter I(C->context(), C->hierarchy(), {});
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
}

TEST(Interp, StepLimitTerminatesInfiniteLoop) {
  auto C = compileOK("int main() { while (true) { } return 0; }");
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  Interpreter I(C->context(), C->hierarchy(), Opts);
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(Interp, UseAfterDeleteIsAnError) {
  auto C = compileOK(R"(
    class A { public: int v; };
    int main() {
      A *p = new A();
      delete p;
      return p->v;
    }
  )");
  Interpreter I(C->context(), C->hierarchy(), {});
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
}

TEST(Interp, ArrayIndexOutOfBoundsIsAnError) {
  auto C = compileOK(R"(
    int main() { int a[3]; return a[5]; }
  )");
  Interpreter I(C->context(), C->hierarchy(), {});
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
}

//===----------------------------------------------------------------------===//
// Instrumentation: trace and read/write sets
//===----------------------------------------------------------------------===//

TEST(Interp, TraceRecordsAllocationsAndFrees) {
  auto C = compileOK(R"(
    class A { public: int v; };
    int main() {
      A stack;
      A *heap = new A();
      delete heap;
      return 0;
    }
  )");
  AllocationTrace T;
  InterpOptions Opts;
  Opts.Trace = &T;
  runOK(*C, Opts);
  // stack alloc + free, heap alloc + free.
  EXPECT_EQ(T.events().size(), 4u);
  EXPECT_EQ(T.numLeaked(), 0u);
}

TEST(Interp, TraceDetectsLeaks) {
  auto C = compileOK(R"(
    class A { public: int v; };
    int main() { A *leaked = new A(); return 0; }
  )");
  AllocationTrace T;
  InterpOptions Opts;
  Opts.Trace = &T;
  runOK(*C, Opts);
  EXPECT_EQ(T.numLeaked(), 1u);
}

TEST(Interp, StackTracingCanBeDisabled) {
  auto C = compileOK(R"(
    class A { public: int v; };
    int main() { A onStack; return 0; }
  )");
  AllocationTrace T;
  InterpOptions Opts;
  Opts.Trace = &T;
  Opts.TraceStackObjects = false;
  runOK(*C, Opts);
  EXPECT_TRUE(T.events().empty());
}

TEST(Interp, ReadSetCapturesOnlyReadMembers) {
  auto C = compileOK(R"(
    class A { public: int readMe; int writeMe; };
    int main() { A a; a.writeMe = 1; return a.readMe; }
  )");
  std::set<const FieldDecl *> Reads, Writes;
  InterpOptions Opts;
  Opts.ReadSet = &Reads;
  Opts.WriteSet = &Writes;
  runOK(*C, Opts);
  EXPECT_TRUE(Reads.count(findField(*C, "A", "readMe")));
  EXPECT_FALSE(Reads.count(findField(*C, "A", "writeMe")));
  EXPECT_TRUE(Writes.count(findField(*C, "A", "writeMe")));
}

TEST(Interp, ReadThroughTakenAddressAttributesMember) {
  // Reads through a pointer to a member's storage are still attributed
  // to the member (the instrumented-trace precision the analysis lacks).
  auto C = compileOK(R"(
    class A { public: int x; };
    int deref(int *p) { return *p; }
    int main() { A a; a.x = 5; return deref(&a.x); }
  )");
  std::set<const FieldDecl *> Reads;
  InterpOptions Opts;
  Opts.ReadSet = &Reads;
  runOK(*C, Opts);
  EXPECT_TRUE(Reads.count(findField(*C, "A", "x")));
}

TEST(Interp, OutputAndExitCodeArePropagated) {
  auto C = compileOK(R"(
    int main() {
      print_str("value=");
      print_int(42);
      print_bool(true);
      return 3;
    }
  )");
  ExecResult R = runOK(*C);
  EXPECT_EQ(R.Output, "value=42\ntrue\n");
  EXPECT_EQ(R.ExitCode, 3);
}

} // namespace
