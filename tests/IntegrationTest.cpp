//===-- tests/IntegrationTest.cpp - Whole-pipeline integration ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// End-to-end scenarios over a "kitchen sink" program that exercises every
// MiniC++ feature at once, plus multi-file compilation and the complete
// measure pipeline.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ProgramStats.h"
#include "telemetry/Telemetry.h"

using namespace dmm;
using namespace dmm::test;

namespace {

const char *KitchenSink = R"(
// A device-driver-flavoured program touching every language feature.
class Register {
public:
  volatile int control;   // live: volatile write
  int shadow;             // dead: write-only mirror
  Register() : control(0), shadow(0) {}
};

class Buffer {
public:
  char bytes[16];
  int used;
  int capacity;           // dead: set, never consulted
  Buffer() : used(0), capacity(16) {}
  void put(char c) {
    bytes[used] = c;
    used = used + 1;
  }
  int checksum() {
    int acc = 0;
    for (int i = 0; i < used; i = i + 1) {
      acc = acc + (int)bytes[i];
    }
    return acc;
  }
};

class Device {
public:
  Register reg;
  Buffer *queue;
  int id;
  int *dmaScratch;        // dead: allocated, freed, never read
  Device(int anId) : id(anId) {
    queue = new Buffer();
    dmaScratch = new int[8];
  }
  virtual ~Device() {
    delete queue;
    free(dmaScratch);
  }
  virtual int service() { return queue->checksum() + id; }
};

class TurboDevice : public Device {
public:
  int boost;
  TurboDevice(int anId, int aBoost) : Device(anId), boost(aBoost) {}
  virtual int service() { return this->Device::service() * boost; }
};

union Packet {
public:
  int word;
  char raw[4];
};

int pump(Device *d, int n) {
  for (int i = 0; i < n; i = i + 1) {
    d->queue->put('a');
    d->reg.control = i; // volatile write
  }
  return d->service();
}

int main() {
  Device base(1);
  TurboDevice *turbo = new TurboDevice(2, 3);

  int total = pump(&base, 3) + pump(turbo, 2);

  Packet p;
  p.word = 256;
  total = total + (int)p.raw[0];

  int Device::* idPtr = &Device::id;
  total = total + base.*idPtr;

  Device *devices[2];
  devices[0] = &base;
  devices[1] = turbo;
  for (int i = 0; i < 2; i = i + 1) {
    total = total + devices[i]->service();
  }

  delete turbo;
  print_str("total=");
  print_int(total);
  return 0;
}
)";

TEST(Integration, KitchenSinkRunsAndAnalyzes) {
  auto C = compileOK(KitchenSink);

  // Execute with full instrumentation.
  AllocationTrace Trace;
  std::set<const FieldDecl *> Reads;
  InterpOptions IO;
  IO.Trace = &Trace;
  IO.ReadSet = &Reads;
  ExecResult E = runOK(*C, IO);
  EXPECT_EQ(E.ExitCode, 0);
  EXPECT_NE(E.Output.find("total="), std::string::npos);
  EXPECT_EQ(Trace.numLeaked(), 0u);

  // Analyze and check the expected classification.
  auto R = analyze(*C);
  auto Dead = deadNames(R);
  EXPECT_TRUE(Dead.count("Register::shadow"));
  EXPECT_TRUE(Dead.count("Buffer::capacity"));
  EXPECT_TRUE(Dead.count("Device::dmaScratch"));
  EXPECT_FALSE(Dead.count("Register::control")); // volatile write
  EXPECT_FALSE(Dead.count("Device::id"));        // pointer-to-member
  EXPECT_FALSE(Dead.count("TurboDevice::boost"));
  // Union closure: word read makes raw live too.
  EXPECT_FALSE(Dead.count("Packet::raw"));

  // Soundness on this program.
  for (const FieldDecl *F : Reads)
    EXPECT_FALSE(R.isDead(F)) << F->qualifiedName();

  // Dynamic metrics come out consistent.
  LayoutEngine L(C->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(Trace, L, R.deadSet());
  EXPECT_GT(M.ObjectSpace, 0u);
  EXPECT_GT(M.DeadMemberSpace, 0u);
  EXPECT_LE(M.HighWaterMarkNoDead, M.HighWaterMark);
}

TEST(Integration, MetricsTableCoversStablePhaseNames) {
  // The phase names in the --metrics table are part of the tool's
  // observable interface (docs/CLI.md documents them; benches and
  // scripts grep for them). Run the full pipeline and pin them down.
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    auto C = compileOK(KitchenSink);
    analyze(*C);
    runOK(*C);
  }
  std::ostringstream OS;
  Tel.printMetrics(OS);
  std::string Table = OS.str();
  for (const char *Phase :
       {"lex", "parse", "sema", "callgraph", "analysis", "interp"})
    EXPECT_NE(Table.find(Phase), std::string::npos)
        << "metrics table lost phase '" << Phase << "':\n"
        << Table;
  EXPECT_NE(Table.find("lex.tokens"), std::string::npos);
  EXPECT_NE(Table.find("interp.steps"), std::string::npos);
}

TEST(Integration, MultiFileProgramWithLibraryBoundary) {
  std::vector<SourceFile> Files;
  Files.push_back({"vendor/widgets.mcc", R"(
    class Widget {
    public:
      int handle;
      int themeCache;
      virtual void onPaint() { themeCache = handle; }
    };
  )", /*IsLibrary=*/true});
  Files.push_back({"src/app.mcc", R"(
    class Button : public Widget {
    public:
      int clicks;
      int tooltipId;     // dead in app code
      virtual void onPaint() { clicks = clicks + 1; }
    };
  )", /*IsLibrary=*/false});
  Files.push_back({"src/main.mcc", R"(
    int main() {
      Button b;
      b.clicks = 0;
      b.onPaint();
      return b.clicks;
    }
  )", /*IsLibrary=*/false});

  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();

  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  auto R = A.run(C->mainFunction());

  // Library members unclassified; app members classified normally.
  EXPECT_FALSE(R.canClassify(findField(*C, "Widget", "themeCache")));
  EXPECT_TRUE(R.isDead(findField(*C, "Button", "tooltipId")));
  EXPECT_TRUE(R.isLive(findField(*C, "Button", "clicks")));

  // Stats cover only app files and classes.
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_EQ(St.NumClasses, 1u);

  // Per-file LoC counting saw both app buffers.
  EXPECT_EQ(C->UserFileIDs.size(), 2u);
}

TEST(Integration, DiagnosticsCarryFileNames) {
  std::vector<SourceFile> Files;
  Files.push_back({"good.mcc", "int helper() { return 1; }", false});
  Files.push_back({"bad.mcc", "int main() { return oops; }", false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  EXPECT_FALSE(C->Success);
  EXPECT_NE(Diag.str().find("bad.mcc:"), std::string::npos);
}

TEST(Integration, AnalysisIsIdempotentOnSameCompilation) {
  auto C = compileOK(KitchenSink);
  auto R1 = analyze(*C);
  auto R2 = analyze(*C);
  EXPECT_EQ(deadNames(R1), deadNames(R2));
}

TEST(Integration, AllCallGraphKindsAgreeOnKitchenSinkSoundness) {
  auto C = compileOK(KitchenSink);
  std::set<const FieldDecl *> Reads;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  runOK(*C, IO);
  for (CallGraphKind Kind : {CallGraphKind::Trivial, CallGraphKind::CHA,
                             CallGraphKind::RTA}) {
    AnalysisOptions Opts;
    Opts.CallGraph = Kind;
    auto R = analyze(*C, Opts);
    for (const FieldDecl *F : Reads)
      EXPECT_FALSE(R.isDead(F))
          << F->qualifiedName() << " under " << callGraphKindName(Kind);
  }
}

} // namespace
