//===-- tests/PointsToTest.cpp - Points-to & PTA call graph tests ---------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/PointsTo.h"

using namespace dmm;
using namespace dmm::test;

namespace {

CallGraph build(Compilation &C, CallGraphKind Kind) {
  return buildCallGraph(C.context(), C.hierarchy(), C.mainFunction(), Kind);
}

const FunctionDecl *findFn(Compilation &C, const std::string &Qualified) {
  for (const FunctionDecl *FD : C.context().functions())
    if (FD->qualifiedName() == Qualified)
      return FD;
  ADD_FAILURE() << "no function " << Qualified;
  return nullptr;
}

TEST(PointsTo, PaperFigure1RefinementKillsC) {
  // The paper's own sec. 3.1 example: "a simple alias/points-to analysis
  // algorithm can determine that pointer ap never points to a C object
  // ... so that data member C::mc1 can be marked dead."
  auto C = compileOK(R"(
    class N { public: int mn1; int mn2; };
    class A {
    public:
      virtual int f() { return ma1; }
      int ma1; int ma2; int ma3;
    };
    class B : public A {
    public:
      virtual int f() { return mb1; }
      int mb1; N mb2; int mb3; int mb4;
    };
    class CC : public A {
    public:
      virtual int f() { return mc1; }
      int mc1;
    };
    int foo(int *x) { return (*x) + 1; }
    int main() {
      A a; B b; CC c;
      A *ap;
      a.ma3 = b.mb3 + 1;
      int i = 10;
      if (i < 20) { ap = &a; } else { ap = &b; }
      return ap->f() + b.mb2.mn1 + foo(&b.mb4);
    }
  )");

  AnalysisOptions RTA;
  RTA.CallGraph = CallGraphKind::RTA;
  auto R1 = analyze(*C, RTA);
  EXPECT_TRUE(R1.isLive(findField(*C, "CC", "mc1"))); // RTA cannot tell.

  AnalysisOptions PTA;
  PTA.CallGraph = CallGraphKind::PTA;
  auto R2 = analyze(*C, PTA);
  EXPECT_TRUE(R2.isDead(findField(*C, "CC", "mc1")));
  EXPECT_TRUE(R2.isLive(findField(*C, "B", "mb1"))); // ap may be &b.
  EXPECT_TRUE(R2.isLive(findField(*C, "A", "ma1")));

  CallGraph G = build(*C, CallGraphKind::PTA);
  EXPECT_FALSE(G.isReachable(findFn(*C, "CC::f")));
  EXPECT_TRUE(G.isReachable(findFn(*C, "B::f")));
}

TEST(PointsTo, DispatchThroughHeapPointers) {
  auto C = compileOK(R"(
    class Base { public: virtual int f() { return 1; } };
    class D1 : public Base { public: int x1; virtual int f() { return x1; } };
    class D2 : public Base { public: int x2; virtual int f() { return x2; } };
    Base *make() { return new D1(); }
    int main() {
      D2 *unusedPath = new D2(); // D2 instantiated but never dispatched.
      delete unusedPath;
      Base *p = make();
      int r = p->f();
      delete p;
      return r;
    }
  )");
  AnalysisOptions PTA;
  PTA.CallGraph = CallGraphKind::PTA;
  auto R = analyze(*C, PTA);
  EXPECT_TRUE(R.isLive(findField(*C, "D1", "x1")));
  // RTA keeps D2::f reachable (D2 is instantiated); PTA knows p never
  // points to a D2.
  EXPECT_TRUE(R.isDead(findField(*C, "D2", "x2")));

  AnalysisOptions RTA;
  RTA.CallGraph = CallGraphKind::RTA;
  auto R2 = analyze(*C, RTA);
  EXPECT_TRUE(R2.isLive(findField(*C, "D2", "x2")));
}

TEST(PointsTo, FlowThroughFieldsIsTracked) {
  auto C = compileOK(R"(
    class Impl1 { public: int a1; };
    class Holder { public: Impl1 *stored; };
    int main() {
      Holder h;
      h.stored = new Impl1();
      Impl1 *back = h.stored;
      int r = back->a1;
      delete back;
      return r;
    }
  )");
  PointsToAnalysis PTA(C->context(), C->hierarchy());
  PTA.run();
  // Find the DeclRef `back` inside main's return? Simpler: the member
  // read `back->a1` proves flow worked if analysis is still sound;
  // check via receiver-style query on the stored field's pointee — the
  // public API only exposes expression queries, so assert through the
  // end-to-end analysis instead.
  AnalysisOptions Opts;
  Opts.CallGraph = CallGraphKind::PTA;
  auto R = analyze(*C, Opts);
  EXPECT_TRUE(R.isLive(findField(*C, "Impl1", "a1")));
}

TEST(PointsTo, FunctionPointerTargetsRefined) {
  auto C = compileOK(R"(
    class A { public: int viaUsed; int viaUnused; };
    A g;
    int used(int v) { return g.viaUsed + v; }
    int unused(int v) { return g.viaUnused + v; }
    int main() {
      int (*fp)(int) = &used;
      int (*other)(int) = &unused; // Address taken, never called.
      if (other == fp) { return 2; }
      return fp(1);
    }
  )");
  // Under RTA, any address-taken function of matching arity is a
  // possible target: viaUnused stays live. PTA knows fp only holds
  // &used... but `unused` is still address-taken-reachable per the
  // paper's rule, so its body keeps viaUnused live in both modes. The
  // refinement shows up in the call graph's *edges* instead.
  CallGraph RTA = build(*C, CallGraphKind::RTA);
  CallGraph PTA = build(*C, CallGraphKind::PTA);
  const FunctionDecl *Main = C->mainFunction();
  auto CalleesOf = [&](const CallGraph &G) {
    std::set<std::string> Names;
    for (const FunctionDecl *FD : G.callees(Main))
      Names.insert(FD->qualifiedName());
    return Names;
  };
  EXPECT_TRUE(CalleesOf(RTA).count("unused"));
  EXPECT_FALSE(CalleesOf(PTA).count("unused"));
  EXPECT_TRUE(CalleesOf(PTA).count("used"));
}

TEST(PointsTo, UntrackableReceiverFallsBackToRTA) {
  // A receiver loaded through a pointer-to-member access is untrackable:
  // PTA must fall back to RTA's instantiated-classes dispatch rather
  // than claiming "no targets".
  auto C = compileOK(R"(
    class Base { public: virtual int f() { return 1; } };
    class D : public Base {
    public:
      int dm;
      virtual int f() { return dm; }
    };
    class Box { public: Base *slot; };
    int main() {
      Box b;
      b.slot = new D();
      Base * Box::* pm = &Box::slot;
      Base *p = b.*pm;
      int r = p->f();
      delete p;
      return r;
    }
  )");
  AnalysisOptions PTA;
  PTA.CallGraph = CallGraphKind::PTA;
  auto R = analyze(*C, PTA);
  EXPECT_TRUE(R.isLive(findField(*C, "D", "dm"))); // Fallback kept it.
}

TEST(PointsTo, ImplicitThisCallsUseReceiverSets) {
  auto C = compileOK(R"(
    class Base {
    public:
      virtual int hook() { return 1; }
      int run() { return hook(); }  // Implicit-this virtual call.
    };
    class Used : public Base {
    public:
      int um;
      virtual int hook() { return um; }
    };
    class Unused : public Base {
    public:
      int xm;
      virtual int hook() { return xm; }
    };
    int main() {
      Used u;
      Unused other;           // Instantiated, but run() never sees one.
      return u.run();
    }
  )");
  AnalysisOptions PTA;
  PTA.CallGraph = CallGraphKind::PTA;
  auto R = analyze(*C, PTA);
  EXPECT_TRUE(R.isLive(findField(*C, "Used", "um")));
  EXPECT_TRUE(R.isDead(findField(*C, "Unused", "xm")));
}

TEST(PointsTo, ReferenceParametersAliasArguments) {
  auto C = compileOK(R"(
    class Base { public: virtual int f() { return 0; } };
    class D1 : public Base { public: int a; virtual int f() { return a; } };
    class D2 : public Base { public: int b; virtual int f() { return b; } };
    int probe(Base &r) { return r.f(); }
    int main() {
      D1 d1;
      D2 d2;            // Never passed to probe.
      return probe(d1) + d2.b * 0;
    }
  )");
  // d2.b is read in main (so live); D2::f unreachable under PTA...
  // but b is read directly: both live. Check the call graph instead.
  CallGraph G = build(*C, CallGraphKind::PTA);
  EXPECT_TRUE(G.isReachable(findFn(*C, "D1::f")));
  EXPECT_FALSE(G.isReachable(findFn(*C, "D2::f")));
}

TEST(PointsTo, QueriesOnUnknownExpressionsSayUnknown) {
  auto C = compileOK(R"(
    class A { public: int m; };
    int main() { A a; return a.m; }
  )");
  PointsToAnalysis PTA(C->context(), C->hierarchy());
  PTA.run();
  auto Missing = PTA.receiverClasses(C->mainFunction());
  EXPECT_FALSE(Missing.second); // main has no receiver.
}

} // namespace
