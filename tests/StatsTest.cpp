//===-- tests/StatsTest.cpp - Program statistics tests --------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ProgramStats.h"
#include "analysis/Report.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Stats, UsedClassesRequireConstruction) {
  auto C = compileOK(R"(
    class Used { public: int a; };
    class ViaNew { public: int b; };
    class PointerOnly { public: int c; };
    class Untouched { public: int d; };
    int main() {
      Used u;
      ViaNew *p = new ViaNew();
      PointerOnly *q = nullptr;
      int r = u.a + p->b + (q == nullptr ? 1 : 0);
      delete p;
      return r;
    }
  )");
  auto Used = computeUsedClasses(C->context());
  EXPECT_TRUE(Used.count(findClass(*C, "Used")));
  EXPECT_TRUE(Used.count(findClass(*C, "ViaNew")));
  // A pointer declaration is not a constructor call.
  EXPECT_FALSE(Used.count(findClass(*C, "PointerOnly")));
  EXPECT_FALSE(Used.count(findClass(*C, "Untouched")));
}

TEST(Stats, MemberObjectClassesAreUsed) {
  auto C = compileOK(R"(
    class Inner { public: int i; };
    class Outer { public: Inner nested; };
    int main() { Outer o; return o.nested.i; }
  )");
  auto Used = computeUsedClasses(C->context());
  EXPECT_TRUE(Used.count(findClass(*C, "Inner")));
}

TEST(Stats, BaseClassesOfUsedClassesAreUsed) {
  auto C = compileOK(R"(
    class Base { public: int b; };
    class Derived : public Base { public: int d; };
    int main() { Derived x; return x.b + x.d; }
  )");
  auto Used = computeUsedClasses(C->context());
  EXPECT_TRUE(Used.count(findClass(*C, "Base")));
}

TEST(Stats, MembersInUnusedClassesAreIgnored) {
  // Paper 4.2: "Data members in unused classes are ignored ... since
  // eliminating such members does not affect the size of any objects".
  auto C = compileOK(R"(
    class Used { public: int live; int dead; };
    class Unused { public: int u1; int u2; int u3; };
    int main() { Used u; return u.live; }
  )");
  auto R = analyze(*C);
  ProgramStats St = computeProgramStats(C->context(), R);
  EXPECT_EQ(St.NumClasses, 2u);
  EXPECT_EQ(St.NumUsedClasses, 1u);
  EXPECT_EQ(St.NumMembersInUsedClasses, 2u);
  EXPECT_EQ(St.NumDeadMembersInUsedClasses, 1u);
  EXPECT_NEAR(St.percentDead(), 50.0, 0.01);
}

TEST(Stats, LinesOfCodeCountNonBlankLines) {
  auto C = compileOK("int main() {\n\n  return 0;\n}\n");
  auto R = analyze(*C);
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_EQ(St.LinesOfCode, 3u); // Blank line skipped.
}

TEST(Stats, LibraryClassesExcludedFromCounts) {
  std::vector<SourceFile> Files;
  Files.push_back({"lib.mcc",
                   "class Lib { public: int l1; int l2; };", true});
  Files.push_back({"app.mcc", R"(
    class App { public: Lib helper; int a; };
    int main() { App x; return x.a; }
  )", false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  auto R = A.run(C->mainFunction());
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_EQ(St.NumClasses, 1u); // Lib excluded.
  EXPECT_EQ(St.NumMembersInUsedClasses, 2u); // helper + a.
}

TEST(Stats, ZeroMembersYieldZeroPercent) {
  auto C = compileOK("int main() { return 0; }");
  auto R = analyze(*C);
  ProgramStats St = computeProgramStats(C->context(), R);
  EXPECT_EQ(St.percentDead(), 0.0);
}

TEST(Report, MemberReportListsDeadMembersWithLocations) {
  auto C = compileOK(R"(
    class A { public: int liveM; int deadM; };
    int main() { A a; return a.liveM; }
  )");
  auto R = analyze(*C);
  std::ostringstream OS;
  printMemberReport(OS, C->context(), R, &C->SM);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("deadM"), std::string::npos);
  EXPECT_EQ(Text.find("liveM :"), std::string::npos); // Not shown by default.
  EXPECT_NE(Text.find("1 of 2 data members are dead"), std::string::npos);
  EXPECT_NE(Text.find("<input>:"), std::string::npos); // Location shown.
}

TEST(Report, ShowLiveIncludesReasons) {
  auto C = compileOK(R"(
    class A { public: int liveM; };
    int main() { A a; return a.liveM; }
  )");
  auto R = analyze(*C);
  std::ostringstream OS;
  ReportOptions Opts;
  Opts.ShowLiveMembers = true;
  printMemberReport(OS, C->context(), R, &C->SM, Opts);
  EXPECT_NE(OS.str().find("value read"), std::string::npos);
}

TEST(Report, StatsReportFormatsTable1Row) {
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() { A a; return a.x; }
  )");
  auto R = analyze(*C);
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  std::ostringstream OS;
  printStatsReport(OS, St);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("classes:"), std::string::npos);
  EXPECT_NE(Text.find("(1 used)"), std::string::npos);
  EXPECT_NE(Text.find("50.0%"), std::string::npos);
}

} // namespace

namespace {

TEST(Report, JsonReportContainsMembersAndSummary) {
  auto C = dmm::test::compileOK(R"(
    class A { public: int liveM; int deadM; };
    int main() { A a; return a.liveM; }
  )");
  auto R = dmm::test::analyze(*C);
  std::ostringstream OS;
  printJsonReport(OS, C->context(), R, &C->SM);
  std::string J = OS.str();
  EXPECT_NE(J.find("\"class\": \"A\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"deadM\""), std::string::npos);
  EXPECT_NE(J.find("\"dead\": true"), std::string::npos);
  EXPECT_NE(J.find("\"reason\": \"value read\""), std::string::npos);
  EXPECT_NE(J.find("\"summary\": {\"total\": 2, \"dead\": 1"),
            std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  long Braces = 0, Brackets = 0;
  for (char Ch : J) {
    Braces += Ch == '{' ? 1 : Ch == '}' ? -1 : 0;
    Brackets += Ch == '[' ? 1 : Ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

TEST(Report, JsonEscapesSpecialCharacters) {
  // Member and class names cannot contain quotes in MiniC++, but type
  // spellings and file names can contain backslashes on some hosts; the
  // escaping routine must at least round-trip plain content and never
  // emit raw control characters.
  auto C = dmm::test::compileOK(R"(
    class A { public: int m; };
    int main() { A a; return a.m; }
  )");
  auto R = dmm::test::analyze(*C);
  std::ostringstream OS;
  printJsonReport(OS, C->context(), R, &C->SM);
  for (char Ch : OS.str())
    EXPECT_FALSE(static_cast<unsigned char>(Ch) < 0x20 && Ch != '\n')
        << "raw control character in JSON";
}

TEST(Report, LayoutReportShowsOffsetsAndDeadMarks) {
  auto C = dmm::test::compileOK(R"(
    class A { public: int live; double deadD; };
    int main() { A a; return a.live; }
  )");
  auto R = dmm::test::analyze(*C);
  std::ostringstream OS;
  printLayoutReport(OS, C->context(), C->hierarchy(), R);
  std::string T = OS.str();
  EXPECT_NE(T.find("class A (size 16, align 8)"), std::string::npos);
  EXPECT_NE(T.find("+0\tA::live"), std::string::npos);
  EXPECT_NE(T.find("+8\tA::deadD"), std::string::npos);
  EXPECT_NE(T.find("[dead]"), std::string::npos);
  EXPECT_NE(T.find("without dead members: 4 bytes"), std::string::npos);
}

} // namespace

namespace {

TEST(Report, DeadFunctionReportListsUnreachable) {
  auto C = dmm::test::compileOK(R"(
    int used() { return 1; }
    int ghost() { return 2; }
    class A {
    public:
      int m;
      int touched() { return m; }
      int phantom() { return m; }
    };
    int main() { A a; return used() + a.touched(); }
  )");
  CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                               C->mainFunction(), CallGraphKind::RTA);
  std::ostringstream OS;
  unsigned Dead = printDeadFunctionReport(OS, C->context(), G, &C->SM);
  EXPECT_EQ(Dead, 2u);
  EXPECT_NE(OS.str().find("dead function: ghost"), std::string::npos);
  EXPECT_NE(OS.str().find("dead function: A::phantom"),
            std::string::npos);
  EXPECT_EQ(OS.str().find("A::touched"), std::string::npos);
}

} // namespace
