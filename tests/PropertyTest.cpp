//===-- tests/PropertyTest.cpp - Property-based soundness tests -----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The central soundness invariant (DESIGN.md 6): for every program,
// every data member whose value is read during interpretation must be
// classified live by the analysis. Swept over randomly generated
// feature-mixing programs and over the synthesized benchmark suite, for
// every call-graph configuration.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ProgramStats.h"
#include "benchgen/Synthesizer.h"
#include "fuzz/ProgramGenerator.h"

using namespace dmm;
using namespace dmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Random-program sweep
//===----------------------------------------------------------------------===//

class RandomProgramSoundness
    : public ::testing::TestWithParam<std::tuple<int, CallGraphKind>> {};

TEST_P(RandomProgramSoundness, DynamicReadsAreLive) {
  auto [Seed, Kind] = GetParam();
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(Seed));
  std::string Source = Gen.generate();

  auto C = compileOK(Source);
  if (!C->Success)
    return; // compileOK already failed the test; avoid cascading.

  AnalysisOptions Opts;
  Opts.CallGraph = Kind;
  auto R = analyze(*C, Opts);

  std::set<const FieldDecl *> Reads;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  Interpreter I(C->context(), C->hierarchy(), IO);
  ExecResult E = I.run(C->mainFunction());
  ASSERT_TRUE(E.Completed) << "runtime error: " << E.Error
                           << "\nprogram:\n" << Source;

  for (const FieldDecl *F : Reads)
    EXPECT_FALSE(R.isDead(F))
        << F->qualifiedName()
        << " was read at run time but classified dead (callgraph="
        << callGraphKindName(Kind) << ")\nprogram:\n"
        << Source;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomProgramSoundness,
    ::testing::Combine(::testing::Range(1, 33),
                       ::testing::Values(CallGraphKind::Trivial,
                                         CallGraphKind::CHA,
                                         CallGraphKind::RTA,
                                         CallGraphKind::PTA)),
    [](const auto &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" +
             callGraphKindName(std::get<1>(Info.param));
    });

class RandomProgramProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramProperties, PrecisionIsMonotonic) {
  // A more precise call graph never classifies fewer members dead:
  // dead(RTA) >= dead(CHA) >= dead(Trivial), as inclusion of sets.
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  auto C = compileOK(Gen.generate());

  auto DeadWith = [&](CallGraphKind K) {
    AnalysisOptions Opts;
    Opts.CallGraph = K;
    return deadNames(analyze(*C, Opts));
  };
  auto Trivial = DeadWith(CallGraphKind::Trivial);
  auto CHA = DeadWith(CallGraphKind::CHA);
  auto RTA = DeadWith(CallGraphKind::RTA);
  auto PTA = DeadWith(CallGraphKind::PTA);

  for (const std::string &Name : Trivial)
    EXPECT_TRUE(CHA.count(Name)) << Name << " dead under Trivial but "
                                 << "live under CHA";
  for (const std::string &Name : CHA)
    EXPECT_TRUE(RTA.count(Name)) << Name << " dead under CHA but live "
                                 << "under RTA";
  for (const std::string &Name : RTA)
    EXPECT_TRUE(PTA.count(Name)) << Name << " dead under RTA but live "
                                 << "under PTA";
}

TEST_P(RandomProgramProperties, BaselineIsMoreConservative) {
  // The "accessed = live" baseline never finds more dead members than
  // the paper's algorithm.
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  auto C = compileOK(Gen.generate());
  auto Paper = deadNames(analyze(*C));
  AnalysisOptions BOpts;
  BOpts.TreatWritesAsLive = true;
  auto Baseline = deadNames(analyze(*C, BOpts));
  for (const std::string &Name : Baseline)
    EXPECT_TRUE(Paper.count(Name))
        << Name << " dead under baseline but live under the paper "
        << "algorithm";
}

TEST_P(RandomProgramProperties, GenerationAndAnalysisAreDeterministic) {
  fuzz::ProgramGenerator GenA(static_cast<uint64_t>(GetParam()));
  fuzz::ProgramGenerator GenB(static_cast<uint64_t>(GetParam()));
  std::string SrcA = GenA.generate();
  std::string SrcB = GenB.generate();
  EXPECT_EQ(SrcA, SrcB);

  auto CA = compileOK(SrcA);
  auto CB = compileOK(SrcB);
  EXPECT_EQ(deadNames(analyze(*CA)), deadNames(analyze(*CB)));
}

TEST_P(RandomProgramProperties, NeverCalledMethodReadsStayDeadUnderRTA) {
  // Every generated class has a `ghost` method that is never called;
  // fields read *only* there must be dead (unless another path reads
  // them or a conservative rule fires).
  fuzz::ProgramGenerator Gen(static_cast<uint64_t>(GetParam()));
  auto C = compileOK(Gen.generate());
  auto R = analyze(*C);
  // Sanity: the analysis classified something, and all dead members are
  // classifiable.
  for (const FieldDecl *F : R.deadMembers())
    EXPECT_TRUE(R.canClassify(F));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperties,
                         ::testing::Range(1, 25));

//===----------------------------------------------------------------------===//
// Synthesized benchmark sweep
//===----------------------------------------------------------------------===//

class BenchmarkSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSoundness, CompilesRunsAndIsSound) {
  BenchmarkSpec Spec = benchmarkByName(GetParam());
  GeneratedBenchmark G;
  if (Spec.HandWritten) {
    G.Spec = Spec;
    G.Files.push_back({Spec.Name + ".mcc",
                       Spec.Name == "richards" ? richardsSource()
                                               : deltablueSource(),
                       false});
  } else {
    G = synthesizeBenchmark(Spec, /*Scale=*/0.05);
  }

  std::ostringstream Diag;
  auto C = compileProgram(G.Files, &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();

  auto R = analyze(*C);

  std::set<const FieldDecl *> Reads;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  Interpreter I(C->context(), C->hierarchy(), IO);
  ExecResult E = I.run(C->mainFunction());
  ASSERT_TRUE(E.Completed) << E.Error;
  EXPECT_EQ(E.ExitCode, 0) << "benchmark self-check failed";

  for (const FieldDecl *F : Reads)
    EXPECT_FALSE(R.isDead(F))
        << F->qualifiedName() << " read at run time but classified dead";
}

TEST_P(BenchmarkSoundness, StaticDeadPercentageMatchesSpec) {
  BenchmarkSpec Spec = benchmarkByName(GetParam());
  GeneratedBenchmark G;
  if (Spec.HandWritten) {
    G.Spec = Spec;
    G.Files.push_back({Spec.Name + ".mcc",
                       Spec.Name == "richards" ? richardsSource()
                                               : deltablueSource(),
                       false});
  } else {
    G = synthesizeBenchmark(Spec, /*Scale=*/0.05);
  }
  std::ostringstream Diag;
  auto C = compileProgram(G.Files, &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  auto R = analyze(*C);
  ProgramStats St = computeProgramStats(C->context(), R, &C->SM,
                                        C->UserFileIDs);
  EXPECT_NEAR(St.percentDead(), Spec.TargetStaticDeadPct, 0.75)
      << "static dead percentage off target";
  if (!Spec.HandWritten) {
    EXPECT_EQ(St.NumClasses, Spec.NumClasses);
    EXPECT_EQ(St.NumUsedClasses, Spec.NumUsedClasses);
    EXPECT_EQ(St.NumMembersInUsedClasses, Spec.NumMembers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, BenchmarkSoundness,
    ::testing::Values("jikes", "idl", "npic", "lcom", "taldict", "ixx",
                      "simulate", "sched", "hotwire", "deltablue",
                      "richards"),
    [](const auto &Info) { return Info.param; });

} // namespace
