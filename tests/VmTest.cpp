//===-- tests/VmTest.cpp - Bytecode VM differential + unit tests ----------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode engine's correctness suite (docs/VM.md):
///
///  - unit tests over the compiled Module: constant-pool interning,
///    jump patching, and member-offset (slot color) resolution;
///  - differential tests running the same Compilation through the
///    tree-walking Interpreter and the VM, asserting byte-identical
///    output, exit code, error message, ReadTrace first-read order,
///    read/write sets, heat counts, allocation-trace events, and the
///    full shadow-profiler summary. ExecResult::Steps is deliberately
///    NOT compared: the VM counts bytecode instructions, the tree
///    counts AST visits.
///  - a sweep of the tests/corpus/ programs through both engines at
///    --jobs 1 and 4.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "profiler/ShadowProfiler.h"
#include "support/ThreadPool.h"
#include "vm/VM.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace dmm;
using namespace dmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Differential harness
//===----------------------------------------------------------------------===//

enum class Engine { Tree, Vm };

/// Everything one engine's execution makes observable.
struct EngineRun {
  ExecResult R;
  std::set<const FieldDecl *> Reads;
  std::vector<const FieldDecl *> ReadOrder;
  std::set<const FieldDecl *> Writes;
  FieldHeat Heat;
  std::vector<TraceEvent> Events;
  ProfileSummary Prof;
};

EngineRun runEngine(Compilation &C, Engine E, const FieldSet &Dead) {
  EngineRun Run;
  AllocationTrace Trace;
  ShadowProfiler Prof(C.hierarchy(), Dead);
  InterpOptions IO;
  IO.ReadSet = &Run.Reads;
  IO.ReadTrace = &Run.ReadOrder;
  IO.WriteSet = &Run.Writes;
  IO.Heat = &Run.Heat;
  IO.Trace = &Trace;
  IO.Profiler = &Prof;
  if (E == Engine::Vm) {
    vm::VM M(C.context(), C.hierarchy(), IO);
    Run.R = M.run(C.mainFunction());
  } else {
    Interpreter I(C.context(), C.hierarchy(), IO);
    Run.R = I.run(C.mainFunction());
  }
  Run.Events = Trace.events();
  Run.Prof = Prof.finalize(&C.SM);
  return Run;
}

/// Asserts that the tree-walker's run (\p T) and the VM's run (\p V)
/// are observationally identical (everything except Steps).
void expectSameRun(const EngineRun &T, const EngineRun &V) {
  EXPECT_EQ(T.R.Completed, V.R.Completed)
      << "tree error: " << T.R.Error << "\nvm error:   " << V.R.Error;
  EXPECT_EQ(T.R.Error, V.R.Error);
  EXPECT_EQ(T.R.ExitCode, V.R.ExitCode);
  EXPECT_EQ(T.R.Output, V.R.Output);

  EXPECT_EQ(T.Reads, V.Reads);
  EXPECT_EQ(T.Writes, V.Writes);
  ASSERT_EQ(T.ReadOrder.size(), V.ReadOrder.size());
  for (size_t I = 0; I != T.ReadOrder.size(); ++I)
    EXPECT_EQ(T.ReadOrder[I], V.ReadOrder[I])
        << "first-read order diverges at #" << I << ": tree read "
        << T.ReadOrder[I]->qualifiedName() << ", vm read "
        << V.ReadOrder[I]->qualifiedName();
  EXPECT_EQ(T.Heat.Reads, V.Heat.Reads);
  EXPECT_EQ(T.Heat.Writes, V.Heat.Writes);

  ASSERT_EQ(T.Events.size(), V.Events.size());
  for (size_t I = 0; I != T.Events.size(); ++I) {
    const TraceEvent &A = T.Events[I], &B = V.Events[I];
    EXPECT_EQ(A.Kind, B.Kind) << "trace event #" << I;
    EXPECT_EQ(A.ObjectID, B.ObjectID) << "trace event #" << I;
    EXPECT_EQ(A.Class, B.Class) << "trace event #" << I;
    EXPECT_EQ(A.Count, B.Count) << "trace event #" << I;
    EXPECT_EQ(A.Bytes, B.Bytes) << "trace event #" << I;
    EXPECT_EQ(A.Time, B.Time) << "trace event #" << I;
  }

  EXPECT_TRUE(T.Prof.Metrics == V.Prof.Metrics)
      << "profiler dynamic metrics diverge: object_space "
      << T.Prof.Metrics.ObjectSpace << " vs " << V.Prof.Metrics.ObjectSpace
      << ", hwm " << T.Prof.Metrics.HighWaterMark << " vs "
      << V.Prof.Metrics.HighWaterMark;
  EXPECT_EQ(T.Prof.AllocEvents, V.Prof.AllocEvents);
  EXPECT_EQ(T.Prof.FreeEvents, V.Prof.FreeEvents);
  EXPECT_EQ(T.Prof.LeakedObjects, V.Prof.LeakedObjects);
  EXPECT_EQ(T.Prof.PeakAllocEvent, V.Prof.PeakAllocEvent);
  EXPECT_EQ(T.Prof.SnapshotStride, V.Prof.SnapshotStride);
  EXPECT_EQ(T.Prof.ReadBytes, V.Prof.ReadBytes);
  EXPECT_EQ(T.Prof.WrittenBytes, V.Prof.WrittenBytes);
  EXPECT_EQ(T.Prof.AddrTakenBytes, V.Prof.AddrTakenBytes);
  EXPECT_EQ(T.Prof.NeverReadBytes, V.Prof.NeverReadBytes);
  ASSERT_EQ(T.Prof.Snapshots.size(), V.Prof.Snapshots.size());
  for (size_t I = 0; I != T.Prof.Snapshots.size(); ++I) {
    const ProfileSnapshot &A = T.Prof.Snapshots[I], &B = V.Prof.Snapshots[I];
    EXPECT_EQ(A.AllocEvent, B.AllocEvent) << "snapshot #" << I;
    EXPECT_EQ(A.LiveBytes, B.LiveBytes) << "snapshot #" << I;
    EXPECT_EQ(A.LiveBytesNoDead, B.LiveBytesNoDead) << "snapshot #" << I;
    EXPECT_EQ(A.LiveObjects, B.LiveObjects) << "snapshot #" << I;
  }
  ASSERT_EQ(T.Prof.Sites.size(), V.Prof.Sites.size());
  for (size_t I = 0; I != T.Prof.Sites.size(); ++I) {
    const ProfileSiteRow &A = T.Prof.Sites[I], &B = V.Prof.Sites[I];
    EXPECT_EQ(A.File, B.File) << "site row #" << I;
    EXPECT_EQ(A.Line, B.Line) << "site row #" << I;
    EXPECT_EQ(A.Class, B.Class) << "site row #" << I;
    EXPECT_EQ(A.Member, B.Member) << "site row #" << I;
    EXPECT_EQ(A.Objects, B.Objects) << "site row #" << I;
    EXPECT_EQ(A.AllocBytes, B.AllocBytes) << "site row #" << I;
    EXPECT_EQ(A.WrittenBytes, B.WrittenBytes) << "site row #" << I;
    EXPECT_EQ(A.ReadBytes, B.ReadBytes) << "site row #" << I;
    EXPECT_EQ(A.AddrTakenBytes, B.AddrTakenBytes) << "site row #" << I;
    EXPECT_EQ(A.NeverReadBytes, B.NeverReadBytes) << "site row #" << I;
    EXPECT_EQ(A.StaticDead, B.StaticDead) << "site row #" << I;
  }
}

/// Compiles once, runs both engines over the same Compilation, and
/// asserts the runs are identical. The program must complete.
void expectEnginesAgree(const std::string &Source) {
  auto C = compileOK(Source);
  if (!C->Success)
    return;
  DeadMemberResult Dead = analyze(*C);
  EngineRun T = runEngine(*C, Engine::Tree, Dead.deadSet());
  EngineRun V = runEngine(*C, Engine::Vm, Dead.deadSet());
  EXPECT_TRUE(T.R.Completed) << "tree-walker aborted: " << T.R.Error;
  expectSameRun(T, V);
}

/// As expectEnginesAgree, but the program must abort at run time with
/// an error containing \p ErrorNeedle; the output prefix written before
/// the abort must also be byte-identical.
void expectEnginesAgreeOnError(const std::string &Source,
                               const std::string &ErrorNeedle) {
  auto C = compileOK(Source);
  if (!C->Success)
    return;
  DeadMemberResult Dead = analyze(*C);
  EngineRun T = runEngine(*C, Engine::Tree, Dead.deadSet());
  EngineRun V = runEngine(*C, Engine::Vm, Dead.deadSet());
  EXPECT_FALSE(T.R.Completed) << "expected a runtime error, got exit "
                              << T.R.ExitCode;
  EXPECT_NE(T.R.Error.find(ErrorNeedle), std::string::npos)
      << "tree error was: " << T.R.Error;
  expectSameRun(T, V);
}

//===----------------------------------------------------------------------===//
// Bytecode-compiler unit tests
//===----------------------------------------------------------------------===//

TEST(VmBytecode, ConstantPoolInternsLiterals) {
  auto C = compileOK(R"(
    double half() { return 2.5; }
    int main() {
      int a = 42;
      int b = 42;
      int c = 42;
      double d = 2.5;
      return a + b + c + (int)(d + half());
    }
  )");
  vm::VM M(C->context(), C->hierarchy());
  const vm::Module &Mod = M.module();
  int Int42 = 0, Double25 = 0;
  for (const Value &V : Mod.Consts) {
    if (V.Kind == Value::VK::Int && V.IntVal == 42)
      ++Int42;
    if (V.Kind == Value::VK::Double && V.DoubleVal == 2.5)
      ++Double25;
  }
  EXPECT_EQ(Int42, 1) << "the literal 42 must be pooled once";
  EXPECT_EQ(Double25, 1) << "the literal 2.5 must be pooled once, even "
                            "across functions";
}

TEST(VmBytecode, JumpTargetsArePatchedAndInBounds) {
  auto C = compileOK(R"(
    class K { public: int v; K() { v = 0; } };
    int pick(int n) {
      if (n < 0) { return -1; } else { return 1; }
    }
    int main() {
      K k;
      int total = 0;
      for (int i = 0; i < 4; i = i + 1) {
        int j = 0;
        while (j < i) {
          total = total + pick(j - 1);
          j = j + 1;
        }
      }
      bool both = total > 0 && total < 100;
      bool either = total < 0 || both;
      return either ? total : 0;
    }
  )");
  vm::VM M(C->context(), C->hierarchy());
  size_t NumJumps = 0;
  for (const vm::FuncEntry &F : M.module().Functions) {
    for (const vm::Insn &I : F.Code) {
      switch (I.Opcode) {
      case vm::Op::Jmp:
      case vm::Op::JmpF:
      case vm::Op::JmpT:
      case vm::Op::JmpNMD:
      case vm::Op::JmpCmpII:
        ++NumJumps;
        EXPECT_NE(I.X, vm::NoTarget) << "unpatched jump in "
                                     << (F.Decl ? F.Decl->name()
                                                : "<global-init>");
        EXPECT_LT(I.X, F.Code.size())
            << "jump past end of " << (F.Decl ? F.Decl->name()
                                              : "<global-init>");
        break;
      default:
        break;
      }
    }
  }
  EXPECT_GT(NumJumps, 8u) << "the control-flow soup above must lower to "
                             "a healthy number of jumps";
}

TEST(VmBytecode, MemberOffsetsResolveToStableSlotColors) {
  auto C = compileOK(R"(
    class B { public: int b1; int b2; };
    class D : public B { public: int d1; };
    class Unrelated { public: int u1; };
    int main() {
      D d;
      d.b1 = 1; d.b2 = 2; d.d1 = 3;
      Unrelated u;
      u.u1 = 4;
      return d.b1 + d.b2 + d.d1 + u.u1;
    }
  )");
  vm::VM M(C->context(), C->hierarchy());
  const vm::Module &Mod = M.module();

  const FieldDecl *B1 = findField(*C, "B", "b1");
  const FieldDecl *B2 = findField(*C, "B", "b2");
  const FieldDecl *D1 = findField(*C, "D", "d1");
  ASSERT_TRUE(B1 && B2 && D1);

  // Every field referenced by the program has a module-wide color, and
  // co-located fields have distinct colors.
  ASSERT_TRUE(Mod.FieldColor.count(B1));
  ASSERT_TRUE(Mod.FieldColor.count(B2));
  ASSERT_TRUE(Mod.FieldColor.count(D1));
  uint32_t CB1 = Mod.FieldColor.at(B1);
  uint32_t CB2 = Mod.FieldColor.at(B2);
  uint32_t CD1 = Mod.FieldColor.at(D1);
  EXPECT_NE(CB1, CB2);
  EXPECT_NE(CB1, CD1);
  EXPECT_NE(CB2, CD1);

  // The derived class's plan covers the inherited fields under the SAME
  // colors the base's plan uses — a compiled access through a B* works
  // unchanged on a D receiver.
  const ClassDecl *BD = findClass(*C, "B");
  const ClassDecl *DD = findClass(*C, "D");
  ASSERT_TRUE(BD && DD);
  ASSERT_TRUE(Mod.ClassIdx.count(BD) && Mod.ClassIdx.count(DD));
  const vm::ClassPlan &BP = Mod.Classes[Mod.ClassIdx.at(BD)];
  const vm::ClassPlan &DP = Mod.Classes[Mod.ClassIdx.at(DD)];
  auto colorIn = [](const vm::ClassPlan &P, const FieldDecl *F,
                    uint32_t &Out) {
    for (size_t I = 0; I != P.SlotFields.size(); ++I)
      if (P.SlotFields[I] == F) {
        Out = P.SlotColors[I];
        return true;
      }
    return false;
  };
  uint32_t InB = 0, InD = 0;
  ASSERT_TRUE(colorIn(BP, B1, InB));
  ASSERT_TRUE(colorIn(DP, B1, InD));
  EXPECT_EQ(InB, CB1);
  EXPECT_EQ(InD, CB1);

  // Slot vectors are dense: NumSlots covers the maximum color in use.
  uint32_t MaxD = 0;
  for (uint32_t Col : DP.SlotColors)
    MaxD = std::max(MaxD, Col);
  EXPECT_EQ(DP.NumSlots, MaxD + 1);
  EXPECT_EQ(DP.SlotFields.size(), 3u) << "b1, b2, d1";
}

//===----------------------------------------------------------------------===//
// Differential tests: both engines on the same Compilation
//===----------------------------------------------------------------------===//

TEST(VmDifferential, ArithmeticAndBuiltins) {
  expectEnginesAgree(R"(
    int main() {
      int i = 7;
      double d = 3.5;
      char c = 'A';
      bool b = true;
      print_int(i * 6 - 2 / 2 + 9 % 4);
      print_double(d * 2.0 - 0.25);
      print_char(c);
      print_char('\n');
      print_bool(b && !false);
      print_int(i << 2);
      print_int(i >> 1);
      print_int(i & 5);
      print_int(i | 8);
      print_int(i ^ 3);
      print_int(~i);
      print_int(-i);
      i += 3; i -= 1; i *= 2; i /= 3; i %= 4;
      print_int(i);
      int pre = ++i;
      int post = i++;
      print_int(pre);
      print_int(post);
      print_int(i--);
      print_int(--i);
      return i;
    }
  )");
}

TEST(VmDifferential, ControlFlowAndShortCircuit) {
  expectEnginesAgree(R"(
    int side(int v) { print_int(v); return v; }
    int main() {
      int total = 0;
      for (int i = 0; i < 5; i = i + 1) {
        if (i == 2) { continue; }
        if (i == 4) { break; }
        total = total + i;
      }
      while (total > 0) { total = total - 2; }
      // Short-circuit evaluation order is observable via side().
      bool x = side(0) != 0 && side(1) != 0;
      bool y = side(2) != 0 || side(3) != 0;
      print_bool(x);
      print_bool(y);
      return total >= 0 ? total : -total;
    }
  )");
}

TEST(VmDifferential, ConstructionDestructionOrder) {
  expectEnginesAgree(R"(
    class Top { public: int t; Top() { print_int(0); } ~Top() { print_int(10); } };
    class L : public virtual Top { public: int l; L() { print_int(1); } ~L() { print_int(11); } };
    class R : public virtual Top { public: int r; R() { print_int(2); } ~R() { print_int(12); } };
    class B : public L, public R {
    public:
      int b;
      B() { print_int(3); }
      ~B() { print_int(13); }
    };
    int main() { B x; x.t = 5; return x.t; }
  )");
}

TEST(VmDifferential, VirtualDispatchAndInlineCache) {
  expectEnginesAgree(R"(
    class Shape { public: int pad; virtual int area() { return 0; } virtual ~Shape() {} };
    class Sq : public Shape { public: int s; Sq(int v) : s(v) {} virtual int area() { return s * s; } };
    class Tri : public Shape { public: int b; int h; Tri(int x, int y) : b(x), h(y) {} virtual int area() { return b * h / 2; } };
    int main() {
      Shape *shapes[4];
      shapes[0] = new Sq(3);
      shapes[1] = new Tri(4, 6);
      shapes[2] = new Sq(5);
      shapes[3] = new Tri(2, 2);
      int total = 0;
      // A polymorphic call site: the VM's inline cache must stay
      // transparent when the receiver class flips every iteration.
      for (int i = 0; i < 4; i = i + 1) {
        total = total + shapes[i]->area();
      }
      for (int i = 0; i < 4; i = i + 1) {
        delete shapes[i];
      }
      print_int(total);
      return 0;
    }
  )");
}

TEST(VmDifferential, DispatchDuringDestruction) {
  expectEnginesAgree(R"(
    class B {
    public:
      int x;
      virtual int tag() { return 1; }
      virtual ~B() { print_int(tag()); }
    };
    class D : public B {
    public:
      virtual int tag() { return 2; }
      ~D() { print_int(tag()); }
    };
    int main() {
      B *p = new D();
      delete p;
      return 0;
    }
  )");
}

TEST(VmDifferential, HeapArraysAndLeaks) {
  expectEnginesAgree(R"(
    class Cell { public: int v; Cell() { v = 1; } ~Cell() { print_int(v); } };
    int main() {
      Cell *cells = new Cell[3];
      cells[1].v = 7;
      int *nums = new int[4];
      nums[2] = 9;
      print_int(nums[2] + cells[1].v);
      delete[] cells;
      delete[] nums;
      int *scalar = new int(41);
      print_int(*scalar + 1);
      Cell *leaked = new Cell();   // Deliberate leak: profiler must agree
      leaked->v = 3;               // on leaked-object accounting.
      return 0;
    }
  )");
}

TEST(VmDifferential, PointerArithmeticAndStrings) {
  expectEnginesAgree(R"(
    int main() {
      int a[5];
      for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
      int *p = &a[1];
      int *q = p + 3;
      print_int(*q);
      print_int((int)(q - p));
      print_bool(p < q);
      q = q - 2;
      print_int(*q);
      print_str("hello vm\n");
      char buf[3];
      buf[0] = 'o'; buf[1] = 'k'; buf[2] = (char)0;
      print_str(buf);
      print_char('\n');
      return a[4];
    }
  )");
}

TEST(VmDifferential, MemberAndFunctionPointers) {
  expectEnginesAgree(R"(
    class P { public: int x; int y; };
    int one() { return 1; }
    int two() { return 2; }
    int main() {
      P p;
      p.x = 10;
      p.y = 20;
      int P::* pm = &P::x;
      print_int(p.*pm);
      pm = &P::y;
      p.*pm = 25;
      print_int(p.y);
      int (*f)() = &one;
      if (f == &one) { print_int(f()); }
      f = &two;
      print_int(f());
      return 0;
    }
  )");
}

TEST(VmDifferential, GlobalsLifetimeAndSharedState) {
  expectEnginesAgree(R"(
    class G {
    public:
      int v;
      G(int anId) : v(anId) { print_int(v); }
      ~G() { print_int(-v); }
    };
    G first(1);
    int counter = 100;
    G second(2);
    int bump() { counter = counter + 1; return counter; }
    int main() {
      print_int(bump());
      print_int(bump());
      print_int(first.v + second.v);
      return 0;
    }
  )");
}

TEST(VmDifferential, CopySemanticsAndByValueParams) {
  expectEnginesAgree(R"(
    class Pair { public: int a; int b; };
    int sum(Pair p) { return p.a + p.b; }
    int bySum(Pair &p) { p.a = p.a + 1; return p.a + p.b; }
    int main() {
      Pair x;
      x.a = 3; x.b = 4;
      Pair y = x;        // copy-init
      y.b = 40;
      Pair z;
      z = y;             // copy-assign
      print_int(sum(x));
      print_int(sum(y));
      print_int(sum(z));
      print_int(bySum(x));
      print_int(x.a);
      return 0;
    }
  )");
}

TEST(VmDifferential, RecursionDepthMatches) {
  expectEnginesAgree(R"(
    int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    int main() {
      print_int(fib(12));
      return 0;
    }
  )");
}

TEST(VmDifferential, DeallocationReadExemption) {
  // A member loaded only to be freed is exempt from read attribution
  // (paper footnote 3) — both engines must apply the exemption at the
  // same loads.
  expectEnginesAgree(R"(
    class Node { public: int *payload; int tag; };
    int main() {
      Node n;
      n.payload = new int(5);
      n.tag = 9;
      free(n.payload);   // exempt load of n.payload
      print_int(n.tag);  // attributed read of n.tag
      return 0;
    }
  )");
}

TEST(VmDifferential, UnionsAndCasts) {
  expectEnginesAgree(R"(
    union U { public: int a; double d; };
    int main() {
      U u;
      u.a = 7;
      u.d = 2.5;
      print_int(u.a);        // storage-graph model: no aliasing
      print_double(u.d);
      print_int((int)u.d);
      print_int((int)'A');
      print_char((char)66);
      print_char('\n');
      double d = (double)3;
      print_double(d / 2.0);
      return 0;
    }
  )");
}

//===----------------------------------------------------------------------===//
// Differential tests: runtime errors stop at the same event
//===----------------------------------------------------------------------===//

TEST(VmDifferentialError, NullDereference) {
  expectEnginesAgreeOnError(R"(
    int main() {
      print_int(1);
      int *p = 0;
      print_int(*p);
      return 0;
    }
  )",
                            "null pointer");
}

TEST(VmDifferentialError, DoubleDelete) {
  expectEnginesAgreeOnError(R"(
    class C { public: int v; };
    int main() {
      C *p = new C();
      print_int(2);
      delete p;
      delete p;
      return 0;
    }
  )",
                            "double destruction");
}

TEST(VmDifferentialError, UndefinedFunctionCall) {
  expectEnginesAgreeOnError(R"(
    int missing(int x);
    int main() {
      print_int(3);
      return missing(1);
    }
  )",
                            "undefined function");
}

TEST(VmDifferentialError, StackOverflow) {
  expectEnginesAgreeOnError(R"(
    int spin(int n) { return spin(n + 1); }
    int main() { return spin(0); }
  )",
                            "stack overflow");
}

TEST(VmDifferentialError, NullVirtualCall) {
  expectEnginesAgreeOnError(R"(
    class B { public: int x; virtual int f() { return 1; } };
    int main() {
      B *p = 0;
      print_int(4);
      return p->f();
    }
  )",
                            "null");
}

//===----------------------------------------------------------------------===//
// Corpus sweep: every tests/corpus/ program, both engines, --jobs 1 & 4
//===----------------------------------------------------------------------===//

struct CorpusFile {
  const char *Name;
  bool IsLibrary = false;
};

struct CorpusEntry {
  const char *Name;
  std::vector<CorpusFile> Files;
};

const CorpusEntry kCorpus[] = {
    {"basics", {{"basics.mcc"}}},
    {"inheritance", {{"inheritance.mcc"}}},
    {"unions", {{"unions.mcc"}}},
    {"casts", {{"casts.mcc"}}},
    {"sizeof", {{"sizeof.mcc"}}},
    {"ptrmember", {{"ptrmember.mcc"}}},
    {"dealloc", {{"dealloc.mcc"}}},
    {"volatile", {{"volatile.mcc"}}},
    {"deadcode", {{"deadcode.mcc"}}},
    {"overloads", {{"overloads.mcc"}}},
    {"multifile", {{"multifile_lib.mcc"}, {"multifile_app.mcc"}}},
    {"library", {{"library_vendor.mcc", /*IsLibrary=*/true},
                 {"library_app.mcc"}}},
};

std::string readCorpusFile(const char *Name) {
  std::filesystem::path Path = std::filesystem::path(DMM_CORPUS_DIR) / Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

class VmCorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(VmCorpusTest, EnginesAgreeAtEveryJobsLevel) {
  const CorpusEntry &Entry = GetParam();
  std::vector<SourceFile> Files;
  for (const CorpusFile &F : Entry.Files)
    Files.push_back({F.Name, readCorpusFile(F.Name), F.IsLibrary});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Entry.Name
                          << " does not compile: " << Diag.str();

  const unsigned SavedJobs = globalThreadPool().jobs();
  for (unsigned Jobs : {1u, 4u}) {
    SCOPED_TRACE("--jobs=" + std::to_string(Jobs));
    setGlobalJobs(Jobs);
    DeadMemberResult Dead = analyze(*C);
    EngineRun T = runEngine(*C, Engine::Tree, Dead.deadSet());
    EngineRun V = runEngine(*C, Engine::Vm, Dead.deadSet());
    // Some corpus programs abort at run time by design (casts exercises
    // an invalid downcast); the engines must still agree byte-for-byte
    // on everything up to and including the error.
    expectSameRun(T, V);
  }
  setGlobalJobs(SavedJobs);
}

INSTANTIATE_TEST_SUITE_P(Programs, VmCorpusTest, ::testing::ValuesIn(kCorpus),
                         [](const ::testing::TestParamInfo<CorpusEntry> &I) {
                           return std::string(I.param.Name);
                         });

} // namespace
