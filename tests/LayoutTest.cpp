//===-- tests/LayoutTest.cpp - Object layout tests ------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace dmm;
using namespace dmm::test;

namespace {

TEST(Layout, ScalarSizes) {
  auto C = compileOK("int main() { return 0; }");
  LayoutEngine L(C->hierarchy());
  EXPECT_EQ(L.sizeOf(C->context().boolType()), 1u);
  EXPECT_EQ(L.sizeOf(C->context().charType()), 1u);
  EXPECT_EQ(L.sizeOf(C->context().intType()), 4u);
  EXPECT_EQ(L.sizeOf(C->context().doubleType()), 8u);
  EXPECT_EQ(L.sizeOf(C->context().pointerType(C->context().intType())), 8u);
}

TEST(Layout, PlainStructPacksWithAlignment) {
  auto C = compileOK(R"(
    struct S { char c; int i; char d; };
    int main() { S s; s.c = 'a'; s.i = 1; s.d = 'b'; return 0; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &SL = L.layout(findClass(*C, "S"));
  // c at 0, pad, i at 4, d at 8 -> size 12 (align 4).
  EXPECT_EQ(SL.CompleteSize, 12u);
  EXPECT_EQ(SL.Align, 4u);
  EXPECT_FALSE(SL.HasOwnVPtr);
  ASSERT_EQ(SL.AllFields.size(), 3u);
  EXPECT_EQ(SL.AllFields[0].Offset, 0u);
  EXPECT_EQ(SL.AllFields[1].Offset, 4u);
  EXPECT_EQ(SL.AllFields[2].Offset, 8u);
}

TEST(Layout, EmptyClassHasSizeOne) {
  auto C = compileOK(R"(
    class Empty { public: int tag(); };
    int Empty::tag() { return 0; }
    int main() { Empty e; return e.tag(); }
  )");
  LayoutEngine L(C->hierarchy());
  EXPECT_EQ(L.layout(findClass(*C, "Empty")).CompleteSize, 1u);
}

TEST(Layout, VPtrAddedForVirtualMethods) {
  auto C = compileOK(R"(
    class A { public: int x; virtual int f() { return x; } };
    int main() { A a; return a.f(); }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &AL = L.layout(findClass(*C, "A"));
  EXPECT_TRUE(AL.HasOwnVPtr);
  EXPECT_EQ(AL.CompleteSize, 16u); // vptr 8 + int 4 + pad.
  EXPECT_EQ(AL.OverheadBytes, 8u);
  EXPECT_EQ(AL.AllFields[0].Offset, 8u);
}

TEST(Layout, DerivedSharesBaseVPtr) {
  auto C = compileOK(R"(
    class A { public: int x; virtual int f() { return x; } };
    class B : public A { public: int y; virtual int f() { return y; } };
    int main() { B b; return b.f(); }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &BL = L.layout(findClass(*C, "B"));
  EXPECT_FALSE(BL.HasOwnVPtr); // Reuses A's.
  EXPECT_EQ(BL.OverheadBytes, 8u);
  EXPECT_EQ(BL.CompleteSize, 16u); // vptr + x + y.
}

TEST(Layout, BaseSubobjectFieldsIncluded) {
  auto C = compileOK(R"(
    class A { public: int a1; int a2; };
    class B : public A { public: int b1; };
    int main() { B b; b.a1 = 1; b.a2 = 2; b.b1 = 3; return 0; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &BL = L.layout(findClass(*C, "B"));
  EXPECT_EQ(BL.AllFields.size(), 3u);
  EXPECT_EQ(BL.CompleteSize, 12u);
}

TEST(Layout, UnionMembersOverlap) {
  auto C = compileOK(R"(
    union U { public: int i; double d; char c; };
    int main() { U u; u.i = 1; return u.i; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &UL = L.layout(findClass(*C, "U"));
  EXPECT_EQ(UL.CompleteSize, 8u); // max(int, double, char).
  for (const FieldSlot &S : UL.AllFields)
    EXPECT_EQ(S.Offset, 0u);
}

TEST(Layout, VirtualBaseAppendedOnceWithVBasePointers) {
  auto C = compileOK(R"(
    class Top { public: int t; };
    class L : public virtual Top { public: int l; };
    class R : public virtual Top { public: int r; };
    class B : public L, public R { public: int b; };
    int main() { B x; x.t = 1; return x.t; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassLayout &BL = L.layout(findClass(*C, "B"));
  // L-part (vbptr 8 + l 4 -> 12), R-part (vbptr 8 + r 4 -> 12), b 4,
  // then one Top (t 4). Two vbase pointers of overhead.
  EXPECT_EQ(BL.OverheadBytes, 16u);
  // Top's field appears exactly once.
  unsigned TopFields = 0;
  for (const FieldSlot &S : BL.AllFields)
    if (S.Field->name() == "t")
      ++TopFields;
  EXPECT_EQ(TopFields, 1u);
  // Virtual inheritance costs space (the paper's observation).
  EXPECT_GT(BL.CompleteSize,
            L.layout(findClass(*C, "Top")).CompleteSize +
                3 * 4 /* l, r, b */);
}

TEST(Layout, NestedMemberObjectUsesCompleteSize) {
  auto C = compileOK(R"(
    class Inner { public: double d; int i; };
    class Outer { public: char c; Inner inner; };
    int main() { Outer o; o.c = 'x'; o.inner.i = 1; return 0; }
  )");
  LayoutEngine L(C->hierarchy());
  EXPECT_EQ(L.layout(findClass(*C, "Inner")).CompleteSize, 16u);
  // c at 0, pad to 8, inner 16 -> 24.
  EXPECT_EQ(L.layout(findClass(*C, "Outer")).CompleteSize, 24u);
}

TEST(Layout, ArrayFieldSize) {
  auto C = compileOK(R"(
    class A { public: int data[10]; char tail; };
    int main() { A a; a.tail = 'x'; return a.data[0]; }
  )");
  LayoutEngine L(C->hierarchy());
  EXPECT_EQ(L.layout(findClass(*C, "A")).CompleteSize, 44u);
}

//===----------------------------------------------------------------------===//
// Dead-byte accounting (Table 2 inputs)
//===----------------------------------------------------------------------===//

TEST(Layout, DeadBytesSumsDeadMemberSizes) {
  auto C = compileOK(R"(
    class A { public: int live1; double deadD; int deadI; };
    int main() { A a; return a.live1; }
  )");
  LayoutEngine L(C->hierarchy());
  FieldSet Dead{findField(*C, "A", "deadD"), findField(*C, "A", "deadI")};
  EXPECT_EQ(L.deadBytes(findClass(*C, "A"), Dead), 12u);
}

TEST(Layout, DeadBytesInsideNestedMembers) {
  auto C = compileOK(R"(
    class Inner { public: int keep; int drop; };
    class Outer { public: Inner one; Inner two; };
    int main() { Outer o; return o.one.keep; }
  )");
  LayoutEngine L(C->hierarchy());
  FieldSet Dead{findField(*C, "Inner", "drop")};
  // Both Inner subobjects contain the dead member.
  EXPECT_EQ(L.deadBytes(findClass(*C, "Outer"), Dead), 8u);
}

TEST(Layout, DeadClassTypedMemberCountsWholeObject) {
  auto C = compileOK(R"(
    class Inner { public: int a; int b; };
    class Outer { public: Inner whole; int keep; };
    int main() { Outer o; return o.keep; }
  )");
  LayoutEngine L(C->hierarchy());
  FieldSet Dead{findField(*C, "Outer", "whole")};
  EXPECT_EQ(L.deadBytes(findClass(*C, "Outer"), Dead), 8u);
}

TEST(Layout, SizeWithoutDeadRelayouts) {
  auto C = compileOK(R"(
    class A { public: char c; int dead1; double dead2; char c2; };
    int main() { A a; a.c = 'a'; a.c2 = 'b'; return 0; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassDecl *A = findClass(*C, "A");
  EXPECT_EQ(L.layout(A).CompleteSize, 24u);
  FieldSet Dead{findField(*C, "A", "dead1"), findField(*C, "A", "dead2")};
  // Only two chars remain: size 2.
  EXPECT_EQ(L.sizeWithoutDead(A, Dead), 2u);
}

TEST(Layout, SizeWithoutDeadNeverGrows) {
  auto C = compileOK(R"(
    class A { public: int x; int y; };
    int main() { A a; return a.x + a.y; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassDecl *A = findClass(*C, "A");
  FieldSet Empty;
  EXPECT_EQ(L.sizeWithoutDead(A, Empty), L.layout(A).CompleteSize);
}

TEST(Layout, UnionShrinksToLargestLiveMember) {
  auto C = compileOK(R"(
    union U { public: double big; int small; };
    int main() { U u; u.small = 1; return u.small; }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassDecl *U = findClass(*C, "U");
  FieldSet Dead{findField(*C, "U", "big")};
  EXPECT_EQ(L.sizeWithoutDead(U, Dead), 4u);
  EXPECT_EQ(L.deadBytes(U, Dead), 4u); // 8 -> 4: only 4 bytes reclaimed.
}

TEST(Layout, VPtrSurvivesDeadMemberRemoval) {
  auto C = compileOK(R"(
    class A { public: int dead; virtual int f() { return 1; } };
    int main() { A a; return a.f(); }
  )");
  LayoutEngine L(C->hierarchy());
  const ClassDecl *A = findClass(*C, "A");
  FieldSet Dead{findField(*C, "A", "dead")};
  EXPECT_EQ(L.sizeWithoutDead(A, Dead), 8u); // Just the vptr.
}

TEST(Layout, IncompleteClassHasZeroSize) {
  std::vector<SourceFile> Files;
  Files.push_back({"lib.mcc", "class Opaque;", true});
  Files.push_back({"app.mcc", R"(
    int main() { Opaque *p = nullptr; return p == nullptr ? 0 : 1; }
  )", false});
  std::ostringstream Diag;
  auto C = compileProgram(std::move(Files), &Diag);
  ASSERT_TRUE(C->Success) << Diag.str();
  LayoutEngine L(C->hierarchy());
  EXPECT_EQ(L.sizeOf(C->context().classType(findClass(*C, "Opaque"))), 0u);
}

} // namespace
