//===-- tests/ProfilerTest.cpp - Shadow-memory profiler tests -------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the shadow-memory profiler (profiler/ShadowProfiler.h): the
/// exact-agreement contract with the allocation-trace replay
/// (trace/DynamicMetrics.h), per-site dead-byte attribution, the
/// massif-style snapshot schedule, address-taken and deallocation-read
/// marking, and byte-identical numbers on every golden-corpus program
/// at several --jobs levels.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "profiler/ShadowProfiler.h"
#include "support/ThreadPool.h"
#include "telemetry/Stats.h"

#include <filesystem>
#include <fstream>

using namespace dmm;
using namespace dmm::test;

namespace {

/// One profiled execution: interprets \p C with the allocation trace
/// and the shadow profiler attached to the same run, then returns the
/// finalized profiler alongside the trace replay's metrics.
struct ProfiledRun {
  std::unique_ptr<ShadowProfiler> Prof;
  DynamicMetrics Replayed;
  ExecResult Exec;
};

ProfiledRun runProfiled(Compilation &C, const DeadMemberResult &R,
                        bool ExpectCompletion = true) {
  ProfiledRun Out;
  AllocationTrace Trace;
  Out.Prof = std::make_unique<ShadowProfiler>(C.hierarchy(), R.deadSet());
  InterpOptions IO;
  IO.Trace = &Trace;
  IO.Profiler = Out.Prof.get();
  Interpreter I(C.context(), C.hierarchy(), IO);
  Out.Exec = I.run(C.mainFunction());
  if (ExpectCompletion)
    EXPECT_TRUE(Out.Exec.Completed) << "runtime error: " << Out.Exec.Error;
  Out.Prof->finalize(&C.SM);
  LayoutEngine Layout(C.hierarchy());
  Out.Replayed = computeDynamicMetrics(Trace, Layout, R.deadSet());
  return Out;
}

const ProfileSiteRow *findSite(const ProfileSummary &P,
                               const std::string &Member) {
  for (const ProfileSiteRow &Row : P.Sites)
    if (Row.Member == Member)
      return &Row;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Exact agreement with the trace replay
//===----------------------------------------------------------------------===//

TEST(Profiler, AgreesWithTraceReplayOnHeapChurn) {
  auto C = compileOK("class Node {\n"
                     "public:\n"
                     "  int payload;\n"
                     "  int padding;\n"
                     "  Node() : payload(1), padding(2) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  Node *a = new Node();\n"
                     "  Node *b = new Node();\n"
                     "  print_int(a->payload);\n"
                     "  delete a;\n"
                     "  Node *c = new Node();\n"
                     "  print_int(c->payload);\n"
                     "  delete b;\n"
                     "  delete c;\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  EXPECT_EQ(P.AllocEvents, 3u);
  EXPECT_EQ(P.FreeEvents, 3u);
  EXPECT_EQ(P.LeakedObjects, 0u);
  EXPECT_EQ(P.Metrics.NumObjects, 3u);
  // Two nodes coexist at the peak.
  EXPECT_EQ(P.Metrics.HighWaterMark, 2 * (P.Metrics.ObjectSpace / 3));
}

TEST(Profiler, AgreesOnArraysAndLeaks) {
  auto C = compileOK("class Cell {\n"
                     "public:\n"
                     "  int v;\n"
                     "  int unused;\n"
                     "  Cell() : v(7), unused(0) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  Cell stackArr[3];\n"
                     "  Cell *heapArr = new Cell[4];\n"
                     "  print_int(stackArr[1].v);\n"
                     "  print_int(heapArr[2].v);\n"
                     "  return 0;\n" // heapArr leaks.
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  EXPECT_EQ(P.Metrics.NumObjects, 7u);
  EXPECT_EQ(P.AllocEvents, 2u); // One per array group.
  // The heap array is never deleted; the stack array dies with main.
  EXPECT_EQ(P.LeakedObjects, 4u);
}

TEST(Profiler, AgreesOnInheritanceAndMemberClasses) {
  auto C = compileOK("class Base {\n"
                     "public:\n"
                     "  int b;\n"
                     "  Base() : b(1) {}\n"
                     "};\n"
                     "class Inner {\n"
                     "public:\n"
                     "  int i1;\n"
                     "  int i2;\n"
                     "  Inner() : i1(2), i2(3) {}\n"
                     "};\n"
                     "class Outer : public Base {\n"
                     "public:\n"
                     "  Inner nested;\n"
                     "  int o;\n"
                     "  Outer() : o(4) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  Outer *p = new Outer();\n"
                     "  print_int(p->nested.i1);\n"
                     "  print_int(p->b);\n"
                     "  delete p;\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  // Leaf members of the nested class are attributed to the Outer
  // allocation site under their own qualified names.
  const ProfileSiteRow *I1 = findSite(P, "Inner::i1");
  const ProfileSiteRow *I2 = findSite(P, "Inner::i2");
  ASSERT_NE(I1, nullptr);
  ASSERT_NE(I2, nullptr);
  EXPECT_EQ(I1->Class, "Outer");
  EXPECT_GT(I1->ReadBytes, 0u);
  EXPECT_EQ(I2->ReadBytes, 0u);
  EXPECT_EQ(I2->NeverReadBytes, I2->AllocBytes);
}

//===----------------------------------------------------------------------===//
// Site attribution
//===----------------------------------------------------------------------===//

TEST(Profiler, AttributesNeverReadBytesPerSite) {
  auto C = compileOK("class P {\n"
                     "public:\n"
                     "  int used;\n"
                     "  int writeOnly;\n"
                     "  P() : used(1), writeOnly(2) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  P p;\n"
                     "  p.writeOnly = 9;\n"
                     "  print_int(p.used);\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();

  const ProfileSiteRow *Used = findSite(P, "P::used");
  ASSERT_NE(Used, nullptr);
  EXPECT_EQ(Used->Objects, 1u);
  EXPECT_EQ(Used->ReadBytes, Used->AllocBytes);
  EXPECT_EQ(Used->NeverReadBytes, 0u);
  EXPECT_FALSE(Used->StaticDead);

  const ProfileSiteRow *WO = findSite(P, "P::writeOnly");
  ASSERT_NE(WO, nullptr);
  EXPECT_EQ(WO->WrittenBytes, WO->AllocBytes);
  EXPECT_EQ(WO->ReadBytes, 0u);
  EXPECT_EQ(WO->NeverReadBytes, WO->AllocBytes);
  // Written but never read: dead under the paper's analysis, and the
  // shadow state agrees byte-for-byte.
  EXPECT_TRUE(WO->StaticDead);
  EXPECT_TRUE(R.isDead(findField(*C, "P", "writeOnly")));

  // Site rows carry the allocation location of the `P p;` declaration.
  EXPECT_NE(Used->File, "<unknown>");
  EXPECT_GT(Used->Line, 0u);
}

TEST(Profiler, MarksAddressTakenBytes) {
  auto C = compileOK("class V {\n"
                     "public:\n"
                     "  int x;\n"
                     "  int y;\n"
                     "  V() : x(1), y(2) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  V v;\n"
                     "  int *p = &v.x;\n"
                     "  print_int(*p);\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  const ProfileSiteRow *X = findSite(P, "V::x");
  const ProfileSiteRow *Y = findSite(P, "V::y");
  ASSERT_NE(X, nullptr);
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(X->AddrTakenBytes, X->AllocBytes);
  EXPECT_EQ(Y->AddrTakenBytes, 0u);
  EXPECT_EQ(P.AddrTakenBytes, X->AllocBytes);
}

TEST(Profiler, DeallocationReadsStayUnread) {
  // `owned` is loaded only to feed delete. The paper's footnote-3
  // exemption keeps it out of the read set, and the shadow profiler
  // mirrors that: its bytes stay never-read.
  auto C = compileOK("class Resource {\n"
                     "public:\n"
                     "  int id;\n"
                     "  Resource() : id(5) {}\n"
                     "};\n"
                     "class Holder {\n"
                     "public:\n"
                     "  Resource *owned;\n"
                     "  int uses;\n"
                     "  Holder() : owned(new Resource()), uses(1) {}\n"
                     "  ~Holder() { delete owned; }\n"
                     "};\n"
                     "int main() {\n"
                     "  Holder h;\n"
                     "  print_int(h.uses);\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  const ProfileSiteRow *Owned = findSite(P, "Holder::owned");
  ASSERT_NE(Owned, nullptr);
  EXPECT_EQ(Owned->ReadBytes, 0u);
  EXPECT_EQ(Owned->NeverReadBytes, Owned->AllocBytes);
  EXPECT_TRUE(Owned->StaticDead);
}

//===----------------------------------------------------------------------===//
// Snapshot schedule
//===----------------------------------------------------------------------===//

TEST(Profiler, SnapshotScheduleDoublesAndStaysMonotone) {
  // 600 allocation events overflow the 256-snapshot buffer twice, so
  // the stride must have doubled to 4 and every kept snapshot must sit
  // on the final schedule.
  auto C = compileOK("class N {\n"
                     "public:\n"
                     "  int v;\n"
                     "  N() : v(1) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  int i = 0;\n"
                     "  int sum = 0;\n"
                     "  while (i < 600) {\n"
                     "    N *n = new N();\n"
                     "    sum = sum + n->v;\n"
                     "    delete n;\n"
                     "    i = i + 1;\n"
                     "  }\n"
                     "  print_int(sum);\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  EXPECT_EQ(Run.Prof->metrics(), Run.Replayed);
  const ProfileSummary &P = Run.Prof->summary();
  EXPECT_EQ(P.AllocEvents, 600u);
  EXPECT_EQ(P.SnapshotStride, 4u);
  ASSERT_FALSE(P.Snapshots.empty());
  EXPECT_LE(P.Snapshots.size(), 256u);
  uint64_t Prev = 0;
  for (const ProfileSnapshot &S : P.Snapshots) {
    EXPECT_GT(S.AllocEvent, Prev);
    EXPECT_EQ(S.AllocEvent % P.SnapshotStride, 0u);
    EXPECT_LE(S.LiveBytes, P.Metrics.HighWaterMark);
    EXPECT_LE(S.LiveBytesNoDead, S.LiveBytes);
    Prev = S.AllocEvent;
  }
}

TEST(Profiler, FinalizeIsIdempotent) {
  auto C = compileOK("class A {\n"
                     "public:\n"
                     "  int x;\n"
                     "  A() : x(3) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  A *a = new A();\n" // Leaks.
                     "  print_int(a->x);\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  const ProfileSummary &First = Run.Prof->summary();
  EXPECT_EQ(First.LeakedObjects, 1u);
  const ProfileSummary &Second = Run.Prof->finalize(&C->SM);
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(Second.LeakedObjects, 1u);
  EXPECT_EQ(Second.Sites.size(), First.Sites.size());
}

//===----------------------------------------------------------------------===//
// Stats-section conversion
//===----------------------------------------------------------------------===//

TEST(Profiler, ConvertsToStatsSection) {
  auto C = compileOK("class P {\n"
                     "public:\n"
                     "  int x;\n"
                     "  int unused;\n"
                     "  P() : x(1), unused(2) {}\n"
                     "};\n"
                     "int main() {\n"
                     "  P *p = new P();\n"
                     "  print_int(p->x);\n"
                     "  delete p;\n"
                     "  return 0;\n"
                     "}\n");
  DeadMemberResult R = analyze(*C);
  ProfiledRun Run = runProfiled(*C, R);
  const ProfileSummary &P = Run.Prof->summary();
  stats::ProfilerSection S = toProfilerSection(P);
  EXPECT_TRUE(S.Present);
  EXPECT_EQ(S.ObjectSpace, P.Metrics.ObjectSpace);
  EXPECT_EQ(S.DeadMemberSpace, P.Metrics.DeadMemberSpace);
  EXPECT_EQ(S.HighWaterMark, P.Metrics.HighWaterMark);
  EXPECT_EQ(S.NumObjects, P.Metrics.NumObjects);
  ASSERT_EQ(S.Snapshots.size(), P.Snapshots.size());
  ASSERT_EQ(S.Sites.size(), P.Sites.size());
  for (size_t I = 0; I != S.Sites.size(); ++I) {
    EXPECT_EQ(S.Sites[I].Member, P.Sites[I].Member);
    EXPECT_EQ(S.Sites[I].NeverReadBytes, P.Sites[I].NeverReadBytes);
    EXPECT_EQ(S.Sites[I].StaticDead, P.Sites[I].StaticDead);
  }
}

//===----------------------------------------------------------------------===//
// Golden corpus: byte-identical agreement at several --jobs levels
//===----------------------------------------------------------------------===//

struct CorpusProgram {
  const char *Name;
  std::vector<std::pair<const char *, bool>> Files; ///< (name, library).
};

const CorpusProgram kCorpusPrograms[] = {
    {"basics", {{"basics.mcc", false}}},
    {"inheritance", {{"inheritance.mcc", false}}},
    {"unions", {{"unions.mcc", false}}},
    {"casts", {{"casts.mcc", false}}},
    {"sizeof", {{"sizeof.mcc", false}}},
    {"ptrmember", {{"ptrmember.mcc", false}}},
    {"dealloc", {{"dealloc.mcc", false}}},
    {"volatile", {{"volatile.mcc", false}}},
    {"deadcode", {{"deadcode.mcc", false}}},
    {"overloads", {{"overloads.mcc", false}}},
    {"multifile", {{"multifile_lib.mcc", false}, {"multifile_app.mcc", false}}},
    {"library", {{"library_vendor.mcc", true}, {"library_app.mcc", false}}},
};

std::string readCorpusFile(const char *Name) {
  std::ifstream In(std::filesystem::path(DMM_CORPUS_DIR) / Name,
                   std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read corpus file " << Name;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

TEST(ProfilerCorpus, MatchesTraceReplayOnEveryProgramAndJobsLevel) {
  for (const CorpusProgram &Entry : kCorpusPrograms) {
    std::vector<SourceFile> Files;
    for (const auto &[Name, IsLibrary] : Entry.Files)
      Files.push_back({Name, readCorpusFile(Name), IsLibrary});
    std::ostringstream Diag;
    auto C = compileProgram(std::move(Files), &Diag);
    ASSERT_TRUE(C->Success) << Entry.Name << ": " << Diag.str();
    DeadMemberResult R = analyze(*C);

    std::optional<DynamicMetrics> Reference;
    for (unsigned Jobs : {1u, 4u}) {
      const unsigned Prev = globalThreadPool().jobs();
      setGlobalJobs(Jobs);
      // Some corpus programs (casts) abort mid-run by design; the
      // trace and the profiler still saw the same event prefix, so
      // the agreement contract holds regardless.
      ProfiledRun Run = runProfiled(*C, R, /*ExpectCompletion=*/false);
      setGlobalJobs(Prev);
      EXPECT_EQ(Run.Prof->metrics(), Run.Replayed)
          << Entry.Name << " diverges at --jobs=" << Jobs;
      if (!Reference)
        Reference = Run.Prof->metrics();
      else
        EXPECT_EQ(*Reference, Run.Prof->metrics())
            << Entry.Name << ": metrics differ across jobs levels";
    }
  }
}

} // namespace
