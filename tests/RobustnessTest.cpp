//===-- tests/RobustnessTest.cpp - Frontend robustness --------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The frontend must never crash, hang, or walk off a buffer on malformed
// input: every mutation of a valid program either compiles or produces
// diagnostics. (Run under ASan/UBSan in the sanitizer build, this sweeps
// for memory errors on the error paths, which ordinary tests rarely
// reach.)
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchgen/Synthesizer.h"

using namespace dmm;
using namespace dmm::test;

namespace {

/// A base program touching most of the grammar.
const char *BaseProgram = R"(
class Top { public: int t; Top() : t(1) {} virtual ~Top() {} };
class Mid : public virtual Top { public: int m; };
union Bits { public: int i; double d; };
int helper(int *p, int n) { return (*p) + n; }
int main() {
  Mid x;
  x.t = 2;
  Bits b;
  b.i = 3;
  int arr[4];
  for (int i = 0; i < 4; i = i + 1) { arr[i] = i; }
  int Mid::* pm = &Mid::m;
  x.*pm = 9;
  Top *tp = &x;
  print_int(helper(&arr[1], b.i) + x.t + sizeof(Mid));
  return tp != nullptr ? 0 : 1;
}
)";

class MutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MutationRobustness, NeverCrashesOnMutatedSource) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 0x9E3779B9u + 7;
  auto Next = [&]() {
    Seed ^= Seed >> 12;
    Seed ^= Seed << 25;
    Seed ^= Seed >> 27;
    return Seed * 0x2545F4914F6CDD1DULL;
  };

  std::string Source = BaseProgram;
  // Apply a handful of random mutations: deletions, duplications, and
  // character substitutions.
  for (int M = 0; M != 6; ++M) {
    if (Source.empty())
      break;
    size_t Pos = Next() % Source.size();
    switch (Next() % 3) {
    case 0: { // Delete a span.
      size_t Len = 1 + Next() % 12;
      Source.erase(Pos, Len);
      break;
    }
    case 1: { // Duplicate a span.
      size_t Len = 1 + Next() % 8;
      Source.insert(Pos, Source.substr(Pos, Len));
      break;
    }
    case 2: { // Substitute a character with punctuation.
      const char Chars[] = "{}();,*&.<>::=+-!~%";
      Source[Pos] = Chars[Next() % (sizeof(Chars) - 1)];
      break;
    }
    }
  }

  // Must terminate without crashing; success or diagnostics both fine.
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    EXPECT_TRUE(C->Diags.hasErrors());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness,
                         ::testing::Range(1, 101));

/// The same mutation sweep over a large, feature-rich base (the
/// richards port) to reach deeper error paths.
class RichardsMutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(RichardsMutationRobustness, NeverCrashes) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 0x45d9f3b + 3;
  auto Next = [&]() {
    Seed ^= Seed >> 12;
    Seed ^= Seed << 25;
    Seed ^= Seed >> 27;
    return Seed * 0x2545F4914F6CDD1DULL;
  };
  std::string Source = richardsSource();
  for (int M = 0; M != 10; ++M) {
    if (Source.size() < 8)
      break;
    size_t Pos = Next() % Source.size();
    switch (Next() % 3) {
    case 0:
      Source.erase(Pos, 1 + Next() % 40);
      break;
    case 1:
      Source.insert(Pos, Source.substr(Next() % Source.size(), Next() % 20));
      break;
    case 2: {
      const char Chars[] = "{}();,*&.<>::=+-!~%\"'";
      Source[Pos] = Chars[Next() % (sizeof(Chars) - 1)];
      break;
    }
    }
  }
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    EXPECT_TRUE(C->Diags.hasErrors());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RichardsMutationRobustness,
                         ::testing::Range(1, 61));

TEST(Robustness, TruncationsOfValidProgramNeverCrash) {
  std::string Source = BaseProgram;
  for (size_t Len = 0; Len < Source.size(); Len += 17) {
    std::ostringstream Diag;
    auto C = compileString(Source.substr(0, Len), &Diag);
    (void)C;
  }
  SUCCEED();
}

TEST(Robustness, DeeplyNestedExpressionsDoNotOverflowTheParser) {
  std::string Expr = "1";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  std::ostringstream Diag;
  auto C = compileString("int main() { return " + Expr + "; }", &Diag);
  EXPECT_TRUE(C->Success) << Diag.str();
}

TEST(Robustness, DeepRecursionInGuestHitsStackGuard) {
  auto C = compileOK(R"(
    int down(int n) { return down(n + 1); }
    int main() { return down(0); }
  )");
  Interpreter I(C->context(), C->hierarchy(), {});
  ExecResult R = I.run(C->mainFunction());
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("recursion"), std::string::npos);
}

TEST(Robustness, EmptyAndWhitespaceOnlySources) {
  for (const char *Src : {"", "   \n\t\n", "// just a comment\n",
                          "/* block */"}) {
    std::ostringstream Diag;
    auto C = compileString(Src, &Diag);
    EXPECT_FALSE(C->Success); // No main.
  }
}

TEST(Robustness, HugeFlatProgramParsesQuickly) {
  // 2000 globals + main; exercises linear scanning paths.
  std::string Src;
  for (int I = 0; I != 2000; ++I)
    Src += "int g" + std::to_string(I) + " = " + std::to_string(I) + ";\n";
  Src += "int main() { return g1999 - 1999; }\n";
  auto C = compileOK(Src);
  ExecResult R = runOK(*C);
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Robustness, ManyClassesDeepHierarchy) {
  std::string Src = "class K0 { public: int f0; };\n";
  for (int I = 1; I != 120; ++I)
    Src += "class K" + std::to_string(I) + " : public K" +
           std::to_string(I - 1) + " { public: int f" +
           std::to_string(I) + "; };\n";
  Src += "int main() { K119 k; k.f0 = 7; return k.f0 - 7; }\n";
  auto C = compileOK(Src);
  ExecResult R = runOK(*C);
  EXPECT_EQ(R.ExitCode, 0);
  // The deep chain analyzes without blowing up.
  auto Res = analyze(*C);
  EXPECT_EQ(Res.classifiableMembers().size(), 120u);
}

} // namespace
