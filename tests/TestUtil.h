//===-- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef DMM_TESTS_TESTUTIL_H
#define DMM_TESTS_TESTUTIL_H

#include "analysis/DeadMemberAnalysis.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "trace/DynamicMetrics.h"
#include "vm/VM.h"

#include "gtest/gtest.h"

#include <set>
#include <sstream>
#include <string>

namespace dmm {
namespace test {

/// Compiles \p Source; fails the current test on frontend errors.
inline std::unique_ptr<Compilation> compileOK(const std::string &Source) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  EXPECT_TRUE(C->Success) << "frontend errors:\n" << Diag.str();
  return C;
}

/// Compiles \p Source expecting at least one error; returns the
/// diagnostic text.
inline std::string compileError(const std::string &Source) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  EXPECT_FALSE(C->Success) << "expected a frontend error";
  return Diag.str();
}

/// Runs the dead-member analysis with \p Options.
inline DeadMemberResult analyze(Compilation &C,
                                AnalysisOptions Options = {}) {
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Options);
  return A.run(C.mainFunction());
}

/// Returns the qualified names ("C::m") of all dead members.
inline std::set<std::string> deadNames(const DeadMemberResult &R) {
  std::set<std::string> Names;
  for (const FieldDecl *F : R.deadMembers())
    Names.insert(F->qualifiedName());
  return Names;
}

/// Returns the qualified names of all live classifiable members.
inline std::set<std::string> liveNames(const DeadMemberResult &R) {
  std::set<std::string> Names;
  for (const FieldDecl *F : R.classifiableMembers())
    if (R.isLive(F))
      Names.insert(F->qualifiedName());
  return Names;
}

/// Interprets the program; fails the test on runtime errors.
inline ExecResult runOK(Compilation &C, InterpOptions Options = {}) {
  Interpreter I(C.context(), C.hierarchy(), Options);
  ExecResult R = I.run(C.mainFunction());
  EXPECT_TRUE(R.Completed) << "runtime error: " << R.Error;
  return R;
}

/// Which execution engine a parameterized test drives (the tree-walking
/// Interpreter or the bytecode VM; both honor the same InterpOptions).
enum class EngineKind { Tree, Vm };

inline const char *engineName(EngineKind E) {
  return E == EngineKind::Vm ? "vm" : "tree";
}

/// Executes the program on the chosen engine.
inline ExecResult runWith(Compilation &C, EngineKind E,
                          InterpOptions Options = {}) {
  if (E == EngineKind::Vm) {
    vm::VM M(C.context(), C.hierarchy(), Options);
    return M.run(C.mainFunction());
  }
  Interpreter I(C.context(), C.hierarchy(), Options);
  return I.run(C.mainFunction());
}

/// Like runOK, on the chosen engine.
inline ExecResult runWithOK(Compilation &C, EngineKind E,
                            InterpOptions Options = {}) {
  ExecResult R = runWith(C, E, Options);
  EXPECT_TRUE(R.Completed) << engineName(E)
                           << " runtime error: " << R.Error;
  return R;
}

/// Finds a class by name; fails the test when absent.
inline const ClassDecl *findClass(Compilation &C, const std::string &Name) {
  for (const ClassDecl *CD : C.context().classes())
    if (CD->name() == Name)
      return CD;
  ADD_FAILURE() << "no class named " << Name;
  return nullptr;
}

/// Finds a member "Class::field"; fails the test when absent.
inline const FieldDecl *findField(Compilation &C,
                                  const std::string &ClassName,
                                  const std::string &FieldName) {
  const ClassDecl *CD = findClass(C, ClassName);
  if (!CD)
    return nullptr;
  FieldDecl *F = CD->findField(FieldName);
  EXPECT_NE(F, nullptr) << ClassName << " has no field " << FieldName;
  return F;
}

} // namespace test
} // namespace dmm

#endif // DMM_TESTS_TESTUTIL_H
