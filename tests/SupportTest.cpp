//===-- tests/SupportTest.cpp - Support library & AST walker tests --------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/ASTWalker.h"
#include "support/Arena.h"

using namespace dmm;
using namespace dmm::test;

namespace {

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, PresumedLocationsAcrossBuffers) {
  SourceManager SM;
  uint32_t A = SM.addBuffer("a.mcc", "one\ntwo\n");
  uint32_t B = SM.addBuffer("b.mcc", "alpha");
  EXPECT_EQ(SM.numBuffers(), 2u);

  PresumedLoc P1 = SM.presumedLoc(SourceLocation(A, 4)); // 't' of "two"
  EXPECT_EQ(P1.Filename, "a.mcc");
  EXPECT_EQ(P1.Line, 2u);
  EXPECT_EQ(P1.Column, 1u);

  PresumedLoc P2 = SM.presumedLoc(SourceLocation(B, 2));
  EXPECT_EQ(P2.Filename, "b.mcc");
  EXPECT_EQ(P2.Line, 1u);
  EXPECT_EQ(P2.Column, 3u);
}

TEST(SourceManager, InvalidLocationYieldsInvalidPresumed) {
  SourceManager SM;
  EXPECT_FALSE(SM.presumedLoc(SourceLocation()).isValid());
}

TEST(SourceManager, CodeLineCounting) {
  SourceManager SM;
  uint32_t ID = SM.addBuffer("x.mcc", "a\n\n  \nb\nc");
  EXPECT_EQ(SM.countCodeLines(ID), 3u);
  uint32_t Empty = SM.addBuffer("e.mcc", "");
  EXPECT_EQ(SM.countCodeLines(Empty), 0u);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsAndFormatting) {
  SourceManager SM;
  uint32_t ID = SM.addBuffer("d.mcc", "xyz\n");
  DiagnosticsEngine Diags(SM);
  Diags.error(SourceLocation(ID, 1), "something broke");
  Diags.warning(SourceLocation(ID, 0), "looks odd");
  Diags.note(SourceLocation(), "for context");

  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Diags.diagnostics().size(), 3u);

  EXPECT_EQ(Diags.format(Diags.diagnostics()[0]),
            "d.mcc:1:2: error: something broke");
  // Locationless diagnostics omit the position prefix.
  EXPECT_EQ(Diags.format(Diags.diagnostics()[2]), "note: for context");
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, RunsDestructorsInReverseOrder) {
  std::vector<int> Order;
  struct Tracker {
    std::vector<int> *Order;
    int ID;
    Tracker(std::vector<int> *Order, int ID) : Order(Order), ID(ID) {}
    ~Tracker() { Order->push_back(ID); }
  };
  {
    Arena A;
    A.create<Tracker>(&Order, 1);
    A.create<Tracker>(&Order, 2);
    A.create<Tracker>(&Order, 3);
  }
  EXPECT_EQ(Order, (std::vector<int>{3, 2, 1}));
}

TEST(Arena, LargeAllocationsGetTheirOwnSlabs) {
  Arena A;
  struct Big {
    char Data[256 * 1024];
  };
  Big *B = A.create<Big>();
  B->Data[0] = 'x';
  B->Data[sizeof(B->Data) - 1] = 'y';
  EXPECT_GE(A.bytesAllocated(), sizeof(Big));
}

//===----------------------------------------------------------------------===//
// AST walkers
//===----------------------------------------------------------------------===//

TEST(Walker, PreorderVisitsEveryExpression) {
  auto C = compileOK(R"(
    int main() {
      int a = 1 + 2 * 3;
      return a > 4 ? a : -a;
    }
  )");
  unsigned Count = 0;
  for (const FunctionDecl *FD : C->context().functions())
    if (FD->name() == "main")
      forEachExprInFunction(FD, [&](const Expr *) { ++Count; });
  // init: 1, 2, 3, 2*3, 1+... = 5 nodes;
  // return: cond, a, 4, a>4, a, -a, a = 7 nodes.
  EXPECT_EQ(Count, 12u);
}

TEST(Walker, CtorInitializerArgsAreVisited) {
  auto C = compileOK(R"(
    class A {
    public:
      int x;
      A(int v) : x(v + 1) {}
    };
    int main() { A a(5); return 0; }
  )");
  bool SawAdd = false;
  for (const FunctionDecl *FD : C->context().functions())
    if (isa<ConstructorDecl>(FD))
      forEachExprInFunction(FD, [&](const Expr *E) {
        if (const auto *BE = dyn_cast<BinaryExpr>(E))
          SawAdd |= BE->op() == BinaryOpKind::Add;
      });
  EXPECT_TRUE(SawAdd);
}

TEST(Walker, StmtPreorderReachesNestedStatements) {
  auto C = compileOK(R"(
    int main() {
      for (int i = 0; i < 3; i = i + 1) {
        if (i == 1) {
          while (false) { break; }
        } else {
          continue;
        }
      }
      return 0;
    }
  )");
  unsigned Fors = 0, Ifs = 0, Whiles = 0, Breaks = 0, Continues = 0;
  for (const FunctionDecl *FD : C->context().functions()) {
    if (!FD->body())
      continue;
    forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
      switch (S->kind()) {
      case Stmt::Kind::For: ++Fors; break;
      case Stmt::Kind::If: ++Ifs; break;
      case Stmt::Kind::While: ++Whiles; break;
      case Stmt::Kind::Break: ++Breaks; break;
      case Stmt::Kind::Continue: ++Continues; break;
      default: break;
      }
    });
  }
  EXPECT_EQ(Fors, 1u);
  EXPECT_EQ(Ifs, 1u);
  EXPECT_EQ(Whiles, 1u);
  EXPECT_EQ(Breaks, 1u);
  EXPECT_EQ(Continues, 1u);
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(Types, UniquingGivesPointerEquality) {
  auto C = compileOK("int main() { return 0; }");
  ASTContext &Ctx = C->context();
  EXPECT_EQ(Ctx.pointerType(Ctx.intType()), Ctx.pointerType(Ctx.intType()));
  EXPECT_EQ(Ctx.arrayType(Ctx.charType(), 8),
            Ctx.arrayType(Ctx.charType(), 8));
  EXPECT_NE(Ctx.arrayType(Ctx.charType(), 8),
            Ctx.arrayType(Ctx.charType(), 9));
  EXPECT_EQ(Ctx.functionType(Ctx.intType(), {Ctx.intType()}),
            Ctx.functionType(Ctx.intType(), {Ctx.intType()}));
  EXPECT_NE(Ctx.functionType(Ctx.intType(), {Ctx.intType()}),
            Ctx.functionType(Ctx.intType(), {}));
}

TEST(Types, Spellings) {
  auto C = compileOK(R"(
    class A { public: int m; };
    int main() { A a; return a.m; }
  )");
  ASTContext &Ctx = C->context();
  const ClassDecl *A = findClass(*C, "A");
  EXPECT_EQ(Ctx.pointerType(Ctx.classType(A))->str(), "A*");
  EXPECT_EQ(Ctx.referenceType(Ctx.intType())->str(), "int&");
  EXPECT_EQ(Ctx.memberPointerType(A, Ctx.intType())->str(), "int A::*");
  EXPECT_EQ(
      Ctx.functionType(Ctx.voidType(), {Ctx.intType(), Ctx.charType()})
          ->str(),
      "void(int, char)");
}

TEST(Types, Predicates) {
  auto C = compileOK("int main() { return 0; }");
  ASTContext &Ctx = C->context();
  EXPECT_TRUE(Ctx.intType()->isArithmetic());
  EXPECT_TRUE(Ctx.intType()->isInteger());
  EXPECT_FALSE(Ctx.doubleType()->isInteger());
  EXPECT_TRUE(Ctx.doubleType()->isArithmetic());
  EXPECT_TRUE(Ctx.pointerType(Ctx.voidType())->isScalar());
  EXPECT_FALSE(Ctx.voidType()->isScalar());
  EXPECT_EQ(Ctx.referenceType(Ctx.intType())->nonReferenceType(),
            Ctx.intType());
}

} // namespace
