//===-- tests/LogTest.cpp - Logging / flight-recorder / crash tests -------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the structured logger (level parsing, the human and JSONL
/// sink formats, per-level counters), the per-thread flight recorder
/// (ring wrap-around, span markers, the open-span stack), and the
/// crash-report writer validated through the tool's own strict JSON
/// parser.
///
//===----------------------------------------------------------------------===//

#include "telemetry/CrashHandler.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Json.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace dmm;

namespace {

/// RAII: captures the human sink into a string and restores the logger
/// defaults afterwards so tests do not leak configuration.
class CapturedLogger {
public:
  CapturedLogger(LogLevel Level = LogLevel::Trace) {
    Logger::instance().setLevel(Level);
    Logger::instance().setHumanSink(&OS);
  }
  ~CapturedLogger() { Logger::instance().resetForTest(); }
  std::string text() const { return OS.str(); }

private:
  std::ostringstream OS;
};

TEST(Log, ParsesLevelNamesAndAliases) {
  LogLevel L;
  EXPECT_TRUE(parseLogLevel("error", L));
  EXPECT_EQ(L, LogLevel::Error);
  EXPECT_TRUE(parseLogLevel("warn", L));
  EXPECT_EQ(L, LogLevel::Warn);
  EXPECT_TRUE(parseLogLevel("warning", L)); // Historical alias.
  EXPECT_EQ(L, LogLevel::Warn);
  EXPECT_TRUE(parseLogLevel("trace", L));
  EXPECT_EQ(L, LogLevel::Trace);
  EXPECT_FALSE(parseLogLevel("", L));
  EXPECT_FALSE(parseLogLevel("WARN", L)); // Case-sensitive.
  EXPECT_FALSE(parseLogLevel("verbose", L));

  // The human label preserves the historical "warning:" prefix; the
  // canonical name is the short spelling.
  EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
  EXPECT_STREQ(logLevelLabel(LogLevel::Warn), "warning");
  EXPECT_STREQ(logLevelLabel(LogLevel::Error), "error");
}

TEST(Log, HumanSinkFormatsFields) {
  CapturedLogger Cap;
  logError("cannot open input file", {kv("path", "missing.mcc")});
  logWarn("odd state", {kv("count", 3), kv("detail", "two words")});
  logInfo("plain message");

  const std::string Text = Cap.text();
  EXPECT_NE(Text.find("error: cannot open input file path=missing.mcc\n"),
            std::string::npos);
  // Values with spaces are quoted; bare values are not.
  EXPECT_NE(Text.find("warning: odd state count=3 detail=\"two words\"\n"),
            std::string::npos);
  EXPECT_NE(Text.find("info: plain message\n"), std::string::npos);
}

TEST(Log, LevelFilterSuppressesAndCounts) {
  const uint64_t InfoBefore = Logger::instance().count(LogLevel::Info);
  const uint64_t WarnBefore = Logger::instance().count(LogLevel::Warn);
  {
    CapturedLogger Cap(LogLevel::Warn);
    logInfo("below the filter");
    logWarn("at the filter");
    EXPECT_EQ(Cap.text().find("below the filter"), std::string::npos);
    EXPECT_NE(Cap.text().find("at the filter"), std::string::npos);
  }
  // Counters only see events that passed the filter.
  EXPECT_EQ(Logger::instance().count(LogLevel::Info), InfoBefore);
  EXPECT_EQ(Logger::instance().count(LogLevel::Warn), WarnBefore + 1);
}

TEST(Log, JsonSinkEmitsParseableLines) {
  const std::string Path = "log_test_sink.jsonl";
  {
    CapturedLogger Cap;
    std::string Error;
    ASSERT_TRUE(Logger::instance().openJsonSink(Path, Error)) << Error;
    logError("boom", {kv("path", "a \"b\"\n"), kv("n", -7)});
    logDebug("quiet");
    Logger::instance().closeJsonSink();
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.is_open());
  std::string Line;
  size_t Lines = 0;
  bool SawBoom = false;
  while (std::getline(In, Line)) {
    ++Lines;
    json::Value V;
    std::string Error;
    ASSERT_TRUE(json::parse(Line, V, Error)) << Line << ": " << Error;
    ASSERT_TRUE(V.isObject());
    EXPECT_TRUE(V.get("ts_ns") && V.get("ts_ns")->isNumber());
    if (V.getString("msg") == "boom") {
      SawBoom = true;
      EXPECT_EQ(V.getString("level"), "error");
      const json::Value *Fields = V.get("fields");
      ASSERT_NE(Fields, nullptr);
      // Escapes round-trip through the strict parser.
      EXPECT_EQ(Fields->getString("path"), "a \"b\"\n");
      EXPECT_EQ(Fields->getNumber("n"), -7.0);
    }
  }
  EXPECT_GE(Lines, 2u);
  EXPECT_TRUE(SawBoom);
  std::remove(Path.c_str());
}

TEST(Log, OpenJsonSinkFailsOnBadPath) {
  std::string Error;
  EXPECT_FALSE(Logger::instance().openJsonSink(
      "no_such_dir_xyz/log.jsonl", Error));
  EXPECT_NE(Error.find("no_such_dir_xyz"), std::string::npos);
  Logger::instance().resetForTest();
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

// The recorder is process-wide and installed once; every test below
// shares one instance and therefore reasons in deltas.

TEST(FlightRecorder, RecordsAndWrapsRings) {
  FlightRecorder::install();
  FlightRecorder *R = FlightRecorder::active();
  ASSERT_NE(R, nullptr);

  const uint64_t Before = R->eventsRecorded();
  // Overfill the calling thread's ring no matter what capacity the
  // first install picked (tests share the process-wide recorder).
  const size_t N = R->capacity() + 50;
  for (size_t I = 0; I != N; ++I)
    R->record(FlightEventKind::Log, 0, "wrap-test-event");
  EXPECT_EQ(R->eventsRecorded(), Before + N);
  EXPECT_GE(R->eventsDropped(), uint64_t(50));

  // The snapshot holds at most capacity entries per thread, sorted by
  // sequence number, and the newest event is retained.
  std::vector<FlightEvent> Events = R->snapshot();
  ASSERT_FALSE(Events.empty());
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LT(Events[I - 1].Seq, Events[I].Seq);
  EXPECT_EQ(std::string(Events.back().Text), "wrap-test-event");
  EXPECT_EQ(Events.back().Seq, Before + N);
}

TEST(FlightRecorder, TruncatesLongMessages) {
  FlightRecorder::install();
  FlightRecorder *R = FlightRecorder::active();
  const std::string Long(500, 'x');
  R->record(FlightEventKind::Log, 2, Long.c_str());
  std::vector<FlightEvent> Events = R->snapshot();
  ASSERT_FALSE(Events.empty());
  const FlightEvent &E = Events.back();
  EXPECT_EQ(std::string(E.Text), std::string(sizeof(E.Text) - 1, 'x'));
  EXPECT_EQ(E.Level, 2);
}

TEST(FlightRecorder, SpanMarkersAndStack) {
  FlightRecorder::install();
  FlightRecorder *R = FlightRecorder::active();

  const char *Names[FlightRecorder::kMaxSpanDepth];
  {
    // Spans hit the recorder even with no Telemetry registry active —
    // that is what makes crash reports useful on plain runs.
    Span Outer("unit.outer");
    Span Inner("unit.inner");
    size_t Depth = R->currentSpanStack(Names, FlightRecorder::kMaxSpanDepth);
    ASSERT_GE(Depth, 2u);
    EXPECT_STREQ(Names[Depth - 2], "unit.outer");
    EXPECT_STREQ(Names[Depth - 1], "unit.inner");
  }
  const size_t DepthAfter =
      R->currentSpanStack(Names, FlightRecorder::kMaxSpanDepth);

  std::vector<FlightEvent> Events = R->snapshot();
  bool SawBegin = false, SawEnd = false;
  for (const FlightEvent &E : Events) {
    if (std::string(E.Text) != "unit.inner")
      continue;
    SawBegin = SawBegin || E.Kind == FlightEventKind::SpanBegin;
    SawEnd = SawEnd || E.Kind == FlightEventKind::SpanEnd;
  }
  EXPECT_TRUE(SawBegin);
  EXPECT_TRUE(SawEnd);
  // Both spans popped again.
  for (size_t I = 0; I < DepthAfter; ++I) {
    EXPECT_STRNE(Names[I], "unit.outer");
    EXPECT_STRNE(Names[I], "unit.inner");
  }
}

TEST(FlightRecorder, LogEventsLandInRings) {
  FlightRecorder::install();
  CapturedLogger Cap;
  logWarn("recorder-visible warning");
  std::vector<FlightEvent> Events = FlightRecorder::active()->snapshot();
  bool Found = false;
  for (const FlightEvent &E : Events)
    Found = Found || (E.Kind == FlightEventKind::Log &&
                      std::string(E.Text) == "recorder-visible warning" &&
                      E.Level == static_cast<uint8_t>(LogLevel::Warn));
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Crash reports
//===----------------------------------------------------------------------===//

#ifndef _WIN32

TEST(CrashReport, WriteCrashReportEmitsValidJson) {
  FlightRecorder::install();
  {
    CapturedLogger Cap;
    logError("pre-crash breadcrumb");
  }

  const std::string Path = "crash_report_test.json";
  std::string Text;
  {
    Span Root("pipeline");
    Span Fault("inject.fault");
    int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(Fd, 0);
    writeCrashReport(Fd, "SIGSEGV");
    ::close(Fd);

    std::ifstream In(Path);
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }
  std::remove(Path.c_str());

  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Text, V, Error)) << Error;
  EXPECT_EQ(V.getString("schema"), kCrashSchemaName);
  EXPECT_EQ(V.getNumber("version"), kCrashSchemaVersion);
  EXPECT_EQ(V.getString("reason"), "SIGSEGV");

  // The open spans at write time, outermost first.
  const json::Value *SpanStack = V.get("span_stack");
  ASSERT_NE(SpanStack, nullptr);
  ASSERT_TRUE(SpanStack->isArray());
  ASSERT_GE(SpanStack->array().size(), 2u);
  const auto &Stack = SpanStack->array();
  EXPECT_EQ(Stack[Stack.size() - 2].str(), "pipeline");
  EXPECT_EQ(Stack[Stack.size() - 1].str(), "inject.fault");

  // At least one flight-recorder event, with the breadcrumb findable.
  const json::Value *Events = V.get("flight_recorder");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_FALSE(Events->array().empty());
  bool SawBreadcrumb = false;
  for (const json::Value &E : Events->array()) {
    EXPECT_TRUE(E.get("seq") && E.get("seq")->isNumber());
    EXPECT_TRUE(E.get("kind") && E.get("kind")->isString());
    SawBreadcrumb =
        SawBreadcrumb || E.getString("text") == "pre-crash breadcrumb";
  }
  EXPECT_TRUE(SawBreadcrumb);

  // Counter snapshot: all the async-signal-safe atomics.
  const json::Value *Counters = V.get("counters");
  ASSERT_NE(Counters, nullptr);
  for (const char *Key : {"log_error", "log_warn", "log_info", "log_debug",
                          "log_trace", "recorder_events",
                          "recorder_dropped"}) {
    const json::Value *C = Counters->get(Key);
    ASSERT_NE(C, nullptr) << Key;
    EXPECT_TRUE(C->isNumber()) << Key;
  }
  EXPECT_GE(Counters->getNumber("log_error"), 1.0);
  // No crash actually happened in this process.
  EXPECT_EQ(crashReportsWritten(), 0u);
}

#endif // !_WIN32

} // namespace
