//===-- bench/BenchUtil.h - Shared benchmark-harness helpers ----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full measurement pipeline (compile -> analyze -> execute ->
/// trace metrics) over the eleven-benchmark suite, for the table/figure
/// generators in this directory.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_BENCH_BENCHUTIL_H
#define DMM_BENCH_BENCHUTIL_H

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/ProgramStats.h"
#include "benchgen/Synthesizer.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"
#include "trace/DynamicMetrics.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace dmm {
namespace bench {

/// Everything measured for one benchmark program.
struct BenchmarkRun {
  BenchmarkSpec Spec;
  std::unique_ptr<Compilation> Comp;
  DeadMemberResult Analysis;
  ProgramStats Stats;
  DynamicMetrics Dynamic;
  bool ExecutedOK = false;
};

/// Compiles, analyzes, and executes every benchmark of the suite. The
/// eleven pipelines are independent, so they fan out across the global
/// ThreadPool; the result vector stays in suite order. Exits with an
/// error message if any program fails to compile or run (the harness
/// must never silently report partial results) — failures are collected
/// per benchmark and reported in suite order on the calling thread.
inline std::vector<BenchmarkRun> runSuite(double Scale = 1.0,
                                          AnalysisOptions Options = {}) {
  std::vector<GeneratedBenchmark> Programs = paperBenchmarkPrograms(Scale);

  struct Outcome {
    BenchmarkRun Run;
    std::string Error;
  };
  std::vector<Outcome> Outcomes =
      globalThreadPool().parallelMap<Outcome>(
          Programs.size(), [&](size_t I) {
            GeneratedBenchmark &G = Programs[I];
            Outcome Out;
            // Counters tallied inside the pipeline merge once at scope
            // exit instead of contending on the telemetry lock.
            TelemetryShard Shard(Telemetry::active());
            Out.Run.Spec = G.Spec;
            Out.Run.Comp = compileProgram(G.Files, nullptr);
            if (!Out.Run.Comp->Success) {
              Out.Error = "failed to compile";
              return Out;
            }
            DeadMemberAnalysis A(Out.Run.Comp->context(),
                                 Out.Run.Comp->hierarchy(), Options);
            Out.Run.Analysis = A.run(Out.Run.Comp->mainFunction());
            Out.Run.Stats = computeProgramStats(
                Out.Run.Comp->context(), Out.Run.Analysis, &Out.Run.Comp->SM,
                Out.Run.Comp->UserFileIDs);

            AllocationTrace Trace;
            InterpOptions IO;
            IO.Trace = &Trace;
            Interpreter Interp(Out.Run.Comp->context(),
                               Out.Run.Comp->hierarchy(), IO);
            ExecResult E = Interp.run(Out.Run.Comp->mainFunction());
            if (!E.Completed) {
              Out.Error = "failed to run: " + E.Error;
              return Out;
            }
            Out.Run.ExecutedOK = true;
            LayoutEngine Layout(Out.Run.Comp->hierarchy());
            Out.Run.Dynamic = computeDynamicMetrics(
                Trace, Layout, Out.Run.Analysis.deadSet());
            return Out;
          });

  std::vector<BenchmarkRun> Runs;
  bool Failed = false;
  for (Outcome &Out : Outcomes) {
    if (!Out.Error.empty()) {
      std::fprintf(stderr, "error: benchmark '%s' %s\n",
                   Out.Run.Spec.Name.c_str(), Out.Error.c_str());
      Failed = true;
      continue;
    }
    Runs.push_back(std::move(Out.Run));
  }
  if (Failed)
    std::exit(1);
  return Runs;
}

inline void printRule(unsigned Width) {
  for (unsigned I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace dmm

#endif // DMM_BENCH_BENCHUTIL_H
