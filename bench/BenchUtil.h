//===-- bench/BenchUtil.h - Shared benchmark-harness helpers ----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full measurement pipeline (compile -> analyze -> execute ->
/// trace metrics) over the eleven-benchmark suite, for the table/figure
/// generators in this directory.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_BENCH_BENCHUTIL_H
#define DMM_BENCH_BENCHUTIL_H

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/ProgramStats.h"
#include "benchgen/Synthesizer.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "trace/DynamicMetrics.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace dmm {
namespace bench {

/// Everything measured for one benchmark program.
struct BenchmarkRun {
  BenchmarkSpec Spec;
  std::unique_ptr<Compilation> Comp;
  DeadMemberResult Analysis;
  ProgramStats Stats;
  DynamicMetrics Dynamic;
  bool ExecutedOK = false;
};

/// Compiles, analyzes, and executes every benchmark of the suite.
/// Exits with an error message if any program fails to compile or run
/// (the harness must never silently report partial results).
inline std::vector<BenchmarkRun> runSuite(double Scale = 1.0,
                                          AnalysisOptions Options = {}) {
  std::vector<BenchmarkRun> Runs;
  for (GeneratedBenchmark &G : paperBenchmarkPrograms(Scale)) {
    BenchmarkRun Run;
    Run.Spec = G.Spec;
    Run.Comp = compileProgram(G.Files, nullptr);
    if (!Run.Comp->Success) {
      std::fprintf(stderr, "error: benchmark '%s' failed to compile\n",
                   G.Spec.Name.c_str());
      std::exit(1);
    }
    DeadMemberAnalysis A(Run.Comp->context(), Run.Comp->hierarchy(),
                         Options);
    Run.Analysis = A.run(Run.Comp->mainFunction());
    Run.Stats = computeProgramStats(Run.Comp->context(), Run.Analysis,
                                    &Run.Comp->SM, Run.Comp->UserFileIDs);

    AllocationTrace Trace;
    InterpOptions IO;
    IO.Trace = &Trace;
    Interpreter I(Run.Comp->context(), Run.Comp->hierarchy(), IO);
    ExecResult E = I.run(Run.Comp->mainFunction());
    if (!E.Completed) {
      std::fprintf(stderr, "error: benchmark '%s' failed to run: %s\n",
                   G.Spec.Name.c_str(), E.Error.c_str());
      std::exit(1);
    }
    Run.ExecutedOK = true;
    LayoutEngine Layout(Run.Comp->hierarchy());
    Run.Dynamic =
        computeDynamicMetrics(Trace, Layout, Run.Analysis.deadSet());
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

inline void printRule(unsigned Width) {
  for (unsigned I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace dmm

#endif // DMM_BENCH_BENCHUTIL_H
