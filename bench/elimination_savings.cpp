//===-- bench/elimination_savings.cpp - Realized space savings ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Goes one step beyond the paper's measurement: it *applies* the space
/// optimization the paper proposes (via the source-to-source
/// DeadMemberEliminator, in the spirit of the class-hierarchy-slicing
/// line of work the paper references) and re-executes each benchmark,
/// comparing predicted savings (Figure 4) with savings actually realized
/// after removal and re-layout. Behavioural equality of the transformed
/// programs is asserted, not assumed.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "transform/DeadMemberEliminator.h"

using namespace dmm;
using namespace dmm::bench;

int main() {
  std::printf("Realized savings after dead-member elimination "
              "(scale 0.3)\n");
  printRule(96);
  std::printf("%-10s %8s %6s %14s %14s %9s %10s %9s\n", "benchmark",
              "removed", "kept", "space before", "space after",
              "saved%", "predicted%", "output");
  printRule(96);

  auto Runs = runSuite(/*Scale=*/0.3);
  for (BenchmarkRun &Run : Runs) {
    DeadMemberAnalysis Analysis(Run.Comp->context(),
                                Run.Comp->hierarchy(), {});
    DeadMemberResult Result = Analysis.run(Run.Comp->mainFunction());
    EliminationResult Elim = eliminateDeadMembers(
        Run.Comp->context(), Result, Analysis.callGraph());

    auto After = compileProgram(
        {{Run.Spec.Name + ".elim.mcc", Elim.Source, false}}, nullptr);
    if (!After->Success) {
      std::fprintf(stderr, "error: transformed '%s' failed to compile\n",
                   Run.Spec.Name.c_str());
      return 1;
    }

    AllocationTrace T1, T2;
    InterpOptions IO1, IO2;
    IO1.Trace = &T1;
    IO2.Trace = &T2;
    Interpreter I1(Run.Comp->context(), Run.Comp->hierarchy(), IO1);
    Interpreter I2(After->context(), After->hierarchy(), IO2);
    ExecResult E1 = I1.run(Run.Comp->mainFunction());
    ExecResult E2 = I2.run(After->mainFunction());
    if (!E1.Completed || !E2.Completed) {
      std::fprintf(stderr, "error: '%s' failed to run\n",
                    Run.Spec.Name.c_str());
      return 1;
    }
    bool SameOutput =
        E1.Output == E2.Output && E1.ExitCode == E2.ExitCode;

    LayoutEngine L1(Run.Comp->hierarchy());
    LayoutEngine L2(After->hierarchy());
    DynamicMetrics M1 = computeDynamicMetrics(T1, L1, {});
    DynamicMetrics M2 = computeDynamicMetrics(T2, L2, {});
    DynamicMetrics Predicted =
        computeDynamicMetrics(T1, L1, Result.deadSet());

    double Saved =
        M1.ObjectSpace
            ? 100.0 * (double)(M1.ObjectSpace - M2.ObjectSpace) /
                  (double)M1.ObjectSpace
            : 0.0;
    std::printf("%-10s %8zu %6zu %14llu %14llu %8.2f%% %9.2f%% %9s\n",
                Run.Spec.Name.c_str(), Elim.Removed.size(),
                Elim.Kept.size(), (unsigned long long)M1.ObjectSpace,
                (unsigned long long)M2.ObjectSpace, Saved,
                Predicted.deadSpacePercent(),
                SameOutput ? "identical" : "DIFFERS!");
    if (!SameOutput)
      return 1;
  }
  printRule(96);
  std::printf("'saved%%' is measured on the re-laid-out transformed "
              "program; 'predicted%%' is the\nFigure 4 dead-space share "
              "of the original. Realized savings can exceed the\n"
              "prediction when removal also eliminates padding, and fall "
              "short when dead members\nhide in alignment holes.\n");
  return 0;
}
