//===-- bench/figure4_object_space.cpp - Paper Figure 4 -------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4: "Percentage of object space occupied by dead
/// data members". Light bars: dead-member bytes as a percentage of all
/// object bytes. Dark bars: reduction of the high-water mark after
/// removing dead members. Checked shape: up to ~11.6% (sched), average
/// ~4.4%, zero for richards/deltablue, and *no strong correlation* with
/// the static percentages of Figure 3 (paper sec. 4.3).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cmath>

using namespace dmm;
using namespace dmm::bench;

int main() {
  std::printf("Figure 4: object space occupied by dead data members\n");
  printRule(84);
  std::printf("%-10s | %7s %7s | %7s %7s | %s\n", "benchmark",
              "paper%", "ours%", "paperR%", "oursR%",
              "bars: dead-space% (#) / HWM-reduction% (=)");
  printRule(84);

  auto Runs = runSuite(/*Scale=*/1.0);
  double SumDead = 0, SumRed = 0, SumStatic = 0;
  unsigned N = 0;
  double MaxDead = 0;
  for (const BenchmarkRun &R : Runs) {
    double Dead = R.Dynamic.deadSpacePercent();
    double Red = R.Dynamic.highWaterMarkReductionPercent();
    std::string DeadBar(static_cast<size_t>(Dead * 2 + 0.5), '#');
    std::string RedBar(static_cast<size_t>(Red * 2 + 0.5), '=');
    std::printf("%-10s | %7.2f %7.2f | %7.2f %7.2f | %s\n", "",
                R.Spec.targetDynamicDeadPct(), Dead,
                R.Spec.targetHWMReductionPct(), Red, DeadBar.c_str());
    std::printf("%-10s | %7s %7s | %7s %7s | %s\n", R.Spec.Name.c_str(),
                "", "", "", "", RedBar.c_str());
    if (!R.Spec.HandWritten) {
      SumDead += Dead;
      SumRed += Red;
      SumStatic += R.Stats.percentDead();
      ++N;
      MaxDead = std::max(MaxDead, Dead);
    }
  }
  printRule(84);
  std::printf("averages over %u non-trivial benchmarks: dead space "
              "%.1f%% (paper 4.4%%),\nHWM reduction %.1f%% (paper "
              "4.9%%); maximum dead space %.1f%% (paper 11.6%%)\n",
              N, SumDead / N, SumRed / N, MaxDead);

  // "There is no strong correlation between a high percentage of dead
  // data members in Figure 3 and a high percentage of object space
  // occupied by those data members in Figure 4" — report the sample
  // correlation coefficient.
  double MeanS = 0, MeanD = 0;
  std::vector<std::pair<double, double>> Points;
  for (const BenchmarkRun &R : Runs) {
    if (R.Spec.HandWritten)
      continue;
    Points.push_back({R.Stats.percentDead(),
                      R.Dynamic.deadSpacePercent()});
    MeanS += Points.back().first;
    MeanD += Points.back().second;
  }
  MeanS /= Points.size();
  MeanD /= Points.size();
  double Cov = 0, VarS = 0, VarD = 0;
  for (auto [S, D] : Points) {
    Cov += (S - MeanS) * (D - MeanD);
    VarS += (S - MeanS) * (S - MeanS);
    VarD += (D - MeanD) * (D - MeanD);
  }
  double Corr = (VarS > 0 && VarD > 0) ? Cov / std::sqrt(VarS * VarD) : 0;
  std::printf("static%% vs dynamic%% correlation: r = %.2f (paper: no "
              "strong correlation)\n",
              Corr);
  return 0;
}
