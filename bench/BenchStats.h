//===-- bench/BenchStats.h - Whole-run stats for gbench mains ---*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `--stats-json=FILE` support for the google-benchmark harnesses: a
/// whole-run telemetry registry that each benchmark folds its local
/// registry into, written as a dmm-stats document (telemetry/Stats.h)
/// after the run. scripts/run_bench.sh composes `BENCH_<label>.json`
/// from this file plus google-benchmark's own JSON output.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_BENCH_BENCHSTATS_H
#define DMM_BENCH_BENCHSTATS_H

#include "support/ThreadPool.h"
#include "telemetry/Stats.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace dmm {
namespace bench {

/// The whole-run registry `--stats-json` accumulates into. Stays empty
/// unless stripStatsJsonArg() saw the flag.
inline Telemetry &benchStatsRegistry() {
  static Telemetry Tel;
  return Tel;
}

inline bool &benchStatsEnabledFlag() {
  static bool Enabled = false;
  return Enabled;
}

/// Removes `--stats-json=FILE` from argv before benchmark::Initialize
/// sees (and rejects) it. Returns the file name, empty when absent.
inline std::string stripStatsJsonArg(int &Argc, char **Argv) {
  static const char Prefix[] = "--stats-json=";
  const size_t PrefixLen = sizeof(Prefix) - 1;
  std::string File;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], Prefix, PrefixLen) == 0)
      File = Argv[I] + PrefixLen;
    else
      Argv[Out++] = Argv[I];
  }
  Argv[Out] = nullptr;
  Argc = Out;
  if (!File.empty()) {
    benchStatsEnabledFlag() = true;
    // Benchmarks repeat each span thousands of times; bound the record
    // buffer so the stats file stays a committable size. Phase/counter
    // aggregates keep accumulating past the limit (the drop is
    // reported in the telemetry.spans_dropped counter).
    benchStatsRegistry().setSpanLimit(512);
  }
  return File;
}

/// Folds one benchmark's local registry into the whole-run registry.
/// No-op unless `--stats-json` was given.
inline void foldBenchStats(const Telemetry &Tel) {
  if (benchStatsEnabledFlag())
    benchStatsRegistry().merge(Tel);
}

/// Writes the accumulated dmm-stats document to \p File. Returns false
/// (after printing an error) when the file cannot be written; true when
/// it was written or \p File is empty.
inline bool writeBenchStats(const std::string &File, const char *Suite) {
  if (File.empty())
    return true;
  stats::StatsDocument D = stats::buildStats(benchStatsRegistry(), Suite,
                                             globalThreadPool().jobs());
  std::ofstream OS(File, std::ios::binary | std::ios::trunc);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write stats file '%s'\n",
                 File.c_str());
    return false;
  }
  stats::printStats(D, OS);
  OS.flush();
  if (!OS) {
    std::fprintf(stderr, "error: failed writing stats file '%s'\n",
                 File.c_str());
    return false;
  }
  return true;
}

} // namespace bench
} // namespace dmm

#endif // DMM_BENCH_BENCHSTATS_H
