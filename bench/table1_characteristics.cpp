//===-- bench/table1_characteristics.cpp - Paper Table 1 ------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: "Benchmark programs used to evaluate the dead
/// data member detection algorithm" — name, description, lines of code,
/// classes (used classes), and data members in used classes. Paper
/// values are printed beside the measured values of our reproduction
/// corpus (synthesized equivalents + hand-written richards/deltablue
/// ports; see DESIGN.md section 2).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dmm;
using namespace dmm::bench;

int main() {
  std::printf("Table 1: benchmark characteristics "
              "(paper value / measured value)\n");
  printRule(78);
  std::printf("%-10s %9s %15s %13s  %s\n", "benchmark", "LoC",
              "classes(used)", "data members", "description");
  printRule(78);

  auto Runs = runSuite(/*Scale=*/1.0);
  for (const BenchmarkRun &R : Runs) {
    char LoC[32], Classes[40], Members[32];
    std::snprintf(LoC, sizeof(LoC), "%u/%u", R.Spec.TargetLoC,
                  R.Stats.LinesOfCode);
    std::snprintf(Classes, sizeof(Classes), "%u(%u)/%u(%u)",
                  R.Spec.NumClasses, R.Spec.NumUsedClasses,
                  R.Stats.NumClasses, R.Stats.NumUsedClasses);
    std::snprintf(Members, sizeof(Members), "%u/%u", R.Spec.NumMembers,
                  R.Stats.NumMembersInUsedClasses);
    std::printf("%-10s %13s %19s %11s  %.44s\n", R.Spec.Name.c_str(), LoC,
                Classes, Members, R.Spec.Description.c_str());
  }
  printRule(78);
  std::printf("Programs range from 606 to 58,296 LoC with 10..268 "
              "classes and 23..1052\ndata members, matching the paper's "
              "reported ranges.\n");
  return 0;
}
