//===-- bench/ablation_scaling.cpp - Complexity scaling (paper 3.4) -------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the paper's complexity claim (section 3.4): the analysis cost is
/// O(N + C x M) — expressions plus classes-times-member-names — i.e.
/// effectively linear in program size in practice. google-benchmark
/// sweeps synthesized programs of growing class counts and reports the
/// per-class time; near-constant per-class time means linear scaling.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "benchmark/benchmark.h"

using namespace dmm;
using namespace dmm::bench;

namespace {

BenchmarkSpec scaledSpec(unsigned Classes) {
  BenchmarkSpec Spec = benchmarkByName("lcom");
  Spec.Name = "scaling";
  Spec.NumClasses = Classes;
  Spec.NumUsedClasses = Classes * 7 / 10;
  Spec.NumMembers = Classes * 5;
  Spec.TargetLoC = 0;        // No filler: measure real constructs only.
  Spec.TargetObjects = 100;  // Execution is not measured here.
  return Spec;
}

std::unique_ptr<Compilation> compileScaled(unsigned Classes) {
  GeneratedBenchmark G = synthesizeBenchmark(scaledSpec(Classes));
  auto C = compileProgram(G.Files, nullptr);
  if (!C->Success)
    std::abort();
  return C;
}

void BM_AnalysisScaling(benchmark::State &State) {
  unsigned Classes = static_cast<unsigned>(State.range(0));
  auto C = compileScaled(Classes);
  for (auto _ : State) {
    DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
    DeadMemberResult R = A.run(C->mainFunction());
    benchmark::DoNotOptimize(R.deadMembers().size());
  }
  State.SetItemsProcessed(State.iterations() * Classes);
  State.counters["classes"] = Classes;
}
BENCHMARK(BM_AnalysisScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_CallGraphScaling(benchmark::State &State) {
  unsigned Classes = static_cast<unsigned>(State.range(0));
  auto C = compileScaled(Classes);
  for (auto _ : State) {
    CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                                 C->mainFunction(), CallGraphKind::RTA);
    benchmark::DoNotOptimize(G.numEdges());
  }
  State.SetItemsProcessed(State.iterations() * Classes);
}
BENCHMARK(BM_CallGraphScaling)->Arg(25)->Arg(100)->Arg(400);

void BM_FrontendScaling(benchmark::State &State) {
  unsigned Classes = static_cast<unsigned>(State.range(0));
  GeneratedBenchmark G = synthesizeBenchmark(scaledSpec(Classes));
  for (auto _ : State) {
    auto C = compileProgram(G.Files, nullptr);
    benchmark::DoNotOptimize(C->Success);
  }
  State.SetItemsProcessed(State.iterations() * Classes);
}
BENCHMARK(BM_FrontendScaling)->Arg(25)->Arg(100)->Arg(400);

/// Member lookup cost over a deep hierarchy (the Lookup operation the
/// algorithm relies on; paper cites Ramalingam & Srinivasan).
void BM_MemberLookupDeepHierarchy(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::string Src;
  Src += "class K0 { public: int f0; };\n";
  for (unsigned I = 1; I != Depth; ++I)
    Src += "class K" + std::to_string(I) + " : public K" +
           std::to_string(I - 1) + " { public: int f" +
           std::to_string(I) + "; };\n";
  Src += "int main() { K" + std::to_string(Depth - 1) +
         " o; return o.f0; }\n";
  auto C = compileProgram({{"deep.mcc", Src, false}}, nullptr);
  if (!C->Success)
    std::abort();
  const ClassDecl *Leaf = nullptr;
  for (const ClassDecl *CD : C->context().classes())
    if (CD->name() == "K" + std::to_string(Depth - 1))
      Leaf = CD;
  for (auto _ : State) {
    FieldDecl *F = C->hierarchy().lookupField(Leaf, "f0");
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_MemberLookupDeepHierarchy)->Arg(4)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
