//===-- bench/perf_pipeline.cpp - Pipeline throughput ---------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for each pipeline stage over representative
/// suite programs: frontend (lex+parse+sema), call-graph construction
/// per algorithm, the dead-member analysis itself, and instrumented
/// execution. Demonstrates the paper's "simple and efficient" claim: the
/// analysis is a small fraction of frontend time.
///
//===----------------------------------------------------------------------===//

#include "BenchStats.h"
#include "BenchUtil.h"
#include "profiler/ShadowProfiler.h"
#include "telemetry/Telemetry.h"
#include "vm/VM.h"

#include "benchmark/benchmark.h"

using namespace dmm;
using namespace dmm::bench;

namespace {

/// Export accumulated phase times as per-iteration counters so the
/// benchmark output decomposes by stage (e.g. lex_ms, parse_ms).
void exportPhaseCounters(benchmark::State &State, const Telemetry &Tel) {
  for (const PhaseStat &P : Tel.phases())
    State.counters[P.Name + "_ms"] =
        benchmark::Counter(P.Nanos / 1e6 / State.iterations());
}

void exportCounter(benchmark::State &State, const Telemetry &Tel,
                   const char *Name, const char *Label) {
  State.counters[Label] =
      benchmark::Counter(double(Tel.counter(Name)) / State.iterations());
}

GeneratedBenchmark &programFor(const std::string &Name) {
  static std::vector<GeneratedBenchmark> Cache =
      paperBenchmarkPrograms(/*Scale=*/0.3);
  for (GeneratedBenchmark &G : Cache)
    if (G.Spec.Name == Name)
      return G;
  std::fprintf(stderr, "error: unknown benchmark program '%s'; known:",
               Name.c_str());
  for (const GeneratedBenchmark &G : Cache)
    std::fprintf(stderr, " %s", G.Spec.Name.c_str());
  std::fprintf(stderr, "\n");
  std::abort();
}

/// Compute-bound kernel: tight integer loops over a handful of members,
/// no allocation inside the hot region. The interpret/kernel vs
/// interpret_vm/kernel ratio isolates dispatch cost, which the
/// allocation-heavy suite programs dilute behind the (shared,
/// semantics-mandated) object-lifecycle and attribution hooks.
constexpr const char *KernelSource = R"(
class Acc {
 public:
  int lo;
  int hi;
  int fold(int x) {
    lo = lo + x;
    if (lo > 1000000) { hi = hi + 1; lo = lo - 1000000; }
    return lo;
  }
};
int main() {
  Acc a;
  a.lo = 0;
  a.hi = 0;
  int checksum = 0;
  for (int outer = 0; outer < 200; outer = outer + 1) {
    int x = outer;
    for (int i = 0; i < 2000; i = i + 1) {
      x = x * 1103515245 + 12345;
      int v = x;
      if (v < 0) { v = 0 - v; }
      checksum = checksum + a.fold(v % 9973);
    }
  }
  print_int(checksum % 100000);
  print_int(a.hi);
  return 0;
}
)";

std::unique_ptr<Compilation> &compiledKernel() {
  static std::unique_ptr<Compilation> C = [] {
    std::vector<SourceFile> Files;
    Files.push_back({"kernel.mcc", KernelSource, /*IsLibrary=*/false});
    auto R = compileProgram(std::move(Files), nullptr);
    if (!R->Success)
      std::abort();
    return R;
  }();
  return C;
}

std::unique_ptr<Compilation> &compiledFor(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<Compilation>> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    auto C = compileProgram(programFor(Name).Files, nullptr);
    if (!C->Success)
      std::abort();
    It = Cache.emplace(Name, std::move(C)).first;
  }
  return It->second;
}

void BM_Frontend(benchmark::State &State, const std::string &Name) {
  GeneratedBenchmark &G = programFor(Name);
  size_t Bytes = 0;
  for (const SourceFile &F : G.Files)
    Bytes += F.Text.size();
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    auto C = compileProgram(G.Files, nullptr);
    benchmark::DoNotOptimize(C->Success);
  }
  State.SetBytesProcessed(State.iterations() * Bytes);
  exportPhaseCounters(State, Tel);
  exportCounter(State, Tel, "lex.tokens", "tokens");
  foldBenchStats(Tel);
}

void BM_CallGraph(benchmark::State &State, const std::string &Name,
                  CallGraphKind Kind) {
  auto &C = compiledFor(Name);
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                                 C->mainFunction(), Kind);
    benchmark::DoNotOptimize(G.numEdges());
  }
  exportPhaseCounters(State, Tel);
  std::string Prefix = std::string("callgraph.") + callGraphKindName(Kind);
  exportCounter(State, Tel, (Prefix + ".edges").c_str(), "edges");
  exportCounter(State, Tel, (Prefix + ".reachable").c_str(), "reachable");
  foldBenchStats(Tel);
}

void BM_Analysis(benchmark::State &State, const std::string &Name) {
  auto &C = compiledFor(Name);
  // Share one call graph: measure the Fig. 2 walk itself.
  CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                               C->mainFunction(), CallGraphKind::RTA);
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
    A.setCallGraph(&G);
    DeadMemberResult R = A.run(C->mainFunction());
    benchmark::DoNotOptimize(R.classifiableMembers().size());
  }
  exportPhaseCounters(State, Tel);
  exportCounter(State, Tel, "analysis.exprs_visited", "exprs");
  foldBenchStats(Tel);
}

void BM_Interpret(benchmark::State &State, Compilation &C) {
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    Interpreter I(C.context(), C.hierarchy(), {});
    ExecResult E = I.run(C.mainFunction());
    if (!E.Completed)
      std::abort();
    benchmark::DoNotOptimize(E.ExitCode);
  }
  exportPhaseCounters(State, Tel);
  exportCounter(State, Tel, "interp.steps", "steps");
  foldBenchStats(Tel);
}

/// The same programs through the bytecode VM (vm/VM.h): the
/// interpret/ vs interpret_vm/ ratio is the engine speedup the VM PR
/// claims (>=10x). Bytecode compilation happens inside the timed
/// region, as every driver --run pays it too.
void BM_InterpretVm(benchmark::State &State, Compilation &C) {
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    vm::VM M(C.context(), C.hierarchy(), {});
    ExecResult E = M.run(C.mainFunction());
    if (!E.Completed)
      std::abort();
    benchmark::DoNotOptimize(E.ExitCode);
  }
  exportPhaseCounters(State, Tel);
  exportCounter(State, Tel, "interp.steps", "steps");
  foldBenchStats(Tel);
}

/// The same execution as BM_Interpret with the shadow profiler
/// attached: the interpret/ vs interp_profile/ delta is the profiler's
/// allocation-proportional overhead (finalize included — site folding
/// is part of the cost a --profile user pays).
void BM_InterpretProfiled(benchmark::State &State, const std::string &Name) {
  auto &C = compiledFor(Name);
  CallGraph G = buildCallGraph(C->context(), C->hierarchy(),
                               C->mainFunction(), CallGraphKind::RTA);
  DeadMemberAnalysis A(C->context(), C->hierarchy(), {});
  A.setCallGraph(&G);
  DeadMemberResult R = A.run(C->mainFunction());
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    ShadowProfiler Prof(C->hierarchy(), R.deadSet());
    InterpOptions IO;
    IO.Profiler = &Prof;
    Interpreter I(C->context(), C->hierarchy(), IO);
    ExecResult E = I.run(C->mainFunction());
    if (!E.Completed)
      std::abort();
    const ProfileSummary &P = Prof.finalize(nullptr);
    Prof.emitCounters(); // profiler.* counters land in the stats doc.
    benchmark::DoNotOptimize(P.Metrics.HighWaterMark);
  }
  exportPhaseCounters(State, Tel);
  exportCounter(State, Tel, "interp.steps", "steps");
  exportCounter(State, Tel, "profiler.allocs", "allocs");
  exportCounter(State, Tel, "profiler.never_read_bytes", "never_read_bytes");
  foldBenchStats(Tel);
}

void registerAll() {
  for (const char *Name : {"richards", "deltablue", "sched", "lcom",
                           "jikes"}) {
    std::string N = Name;
    benchmark::RegisterBenchmark(("frontend/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Frontend(S, N);
                                 });
    benchmark::RegisterBenchmark(("callgraph_rta/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_CallGraph(S, N, CallGraphKind::RTA);
                                 });
    benchmark::RegisterBenchmark(("callgraph_cha/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_CallGraph(S, N, CallGraphKind::CHA);
                                 });
    benchmark::RegisterBenchmark(("callgraph_pta/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_CallGraph(S, N, CallGraphKind::PTA);
                                 });
    benchmark::RegisterBenchmark(("analysis/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Analysis(S, N);
                                 });
    benchmark::RegisterBenchmark(("interpret/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Interpret(S, *compiledFor(N));
                                 });
    benchmark::RegisterBenchmark(("interpret_vm/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_InterpretVm(S, *compiledFor(N));
                                 });
    benchmark::RegisterBenchmark(("interp_profile/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_InterpretProfiled(S, N);
                                 });
  }
  benchmark::RegisterBenchmark("interpret/kernel",
                               [](benchmark::State &S) {
                                 BM_Interpret(S, *compiledKernel());
                               });
  benchmark::RegisterBenchmark("interpret_vm/kernel",
                               [](benchmark::State &S) {
                                 BM_InterpretVm(S, *compiledKernel());
                               });
}

} // namespace

int main(int argc, char **argv) {
  std::string StatsFile = stripStatsJsonArg(argc, argv);
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return writeBenchStats(StatsFile, "perf_pipeline") ? 0 : 1;
}
