//===-- bench/perf_incremental.cpp - Incremental re-analysis cost ---------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the summary-based incremental pipeline
/// (docs/CACHING.md) over representative suite programs:
///
///   monolithic    the classic whole-program DeadMemberAnalysis::run
///   summary       per-file extraction + link, no cache
///   summary_cold  extraction + store into an empty on-disk cache
///   summary_warm  every file replayed from the cache
///   warm_1dirty   one file re-extracted, the rest replayed — the
///                 edit-compile-analyze loop this subsystem exists for
///
/// The headline claim: warm_1dirty is several times faster than
/// summary_cold, because only the dirtied file pays the scan.
///
//===----------------------------------------------------------------------===//

#include "BenchStats.h"
#include "BenchUtil.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "telemetry/Telemetry.h"

#include "benchmark/benchmark.h"

#include <filesystem>
#include <set>

using namespace dmm;
using namespace dmm::bench;

namespace fs = std::filesystem;

namespace {

/// Original and one-file-dirtied compilations of a suite program. The
/// dirty edit is a trailing comment: the content hash of that file
/// changes, the program structure hash does not, so every other file's
/// cached summary stays valid.
struct IncrementalSetup {
  std::unique_ptr<Compilation> Orig;
  std::unique_ptr<Compilation> Dirty;
  size_t NumFiles = 0;
};

IncrementalSetup &setupFor(const std::string &Name) {
  static std::map<std::string, IncrementalSetup> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;

  static std::vector<GeneratedBenchmark> Programs =
      paperBenchmarkPrograms(/*Scale=*/0.3);
  const GeneratedBenchmark *G = nullptr;
  for (const GeneratedBenchmark &P : Programs)
    if (P.Spec.Name == Name)
      G = &P;
  if (!G) {
    std::fprintf(stderr, "error: unknown benchmark program '%s'\n",
                 Name.c_str());
    std::abort();
  }

  IncrementalSetup S;
  S.NumFiles = G->Files.size();
  S.Orig = compileProgram(G->Files, nullptr);
  std::vector<SourceFile> DirtyFiles = G->Files;
  DirtyFiles.back().Text += "\n// touched\n";
  S.Dirty = compileProgram(std::move(DirtyFiles), nullptr);
  if (!S.Orig->Success || !S.Dirty->Success)
    std::abort();
  return Cache.emplace(Name, std::move(S)).first->second;
}

fs::path cacheDirFor(const std::string &Bench, const std::string &Name) {
  return fs::temp_directory_path() /
         ("dmm-perf-incremental-" + Bench + "-" + Name);
}

DeadMemberResult runSummaries(Compilation &C, SummaryCache *Cache) {
  DeadMemberAnalysis A(C.context(), C.hierarchy(), {});
  std::string Error;
  std::optional<DeadMemberResult> R = runSummaryAnalysis(
      C.context(), C.SM, A, C.mainFunction(), {}, Cache, &Error);
  if (!R) {
    std::fprintf(stderr, "error: summary link failed: %s\n", Error.c_str());
    std::abort();
  }
  return std::move(*R);
}

void BM_Monolithic(benchmark::State &State, const std::string &Name) {
  IncrementalSetup &S = setupFor(Name);
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    DeadMemberAnalysis A(S.Orig->context(), S.Orig->hierarchy(), {});
    DeadMemberResult R = A.run(S.Orig->mainFunction());
    benchmark::DoNotOptimize(R.classifiableMembers().size());
  }
  foldBenchStats(Tel);
}

void BM_Summary(benchmark::State &State, const std::string &Name) {
  IncrementalSetup &S = setupFor(Name);
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    DeadMemberResult R = runSummaries(*S.Orig, nullptr);
    benchmark::DoNotOptimize(R.classifiableMembers().size());
  }
  for (const PhaseStat &P : Tel.phases())
    State.counters[P.Name + "_ms"] =
        benchmark::Counter(P.Nanos / 1e6 / State.iterations());
  foldBenchStats(Tel);
}

void BM_SummaryCold(benchmark::State &State, const std::string &Name) {
  IncrementalSetup &S = setupFor(Name);
  const fs::path Dir = cacheDirFor("cold", Name);
  for (auto _ : State) {
    State.PauseTiming();
    fs::remove_all(Dir);
    State.ResumeTiming();
    SummaryCache Cache(SummaryCache::Config{Dir.string()});
    DeadMemberResult R = runSummaries(*S.Orig, &Cache);
    benchmark::DoNotOptimize(R.classifiableMembers().size());
  }
  fs::remove_all(Dir);
}

void BM_SummaryWarm(benchmark::State &State, const std::string &Name) {
  IncrementalSetup &S = setupFor(Name);
  const fs::path Dir = cacheDirFor("warm", Name);
  fs::remove_all(Dir);
  {
    SummaryCache Prime(SummaryCache::Config{Dir.string()});
    runSummaries(*S.Orig, &Prime);
  }
  uint64_t Hits = 0, Misses = 0;
  Telemetry Tel;
  for (auto _ : State) {
    TelemetryScope Scope(Tel);
    SummaryCache Cache(SummaryCache::Config{Dir.string()});
    DeadMemberResult R = runSummaries(*S.Orig, &Cache);
    benchmark::DoNotOptimize(R.classifiableMembers().size());
    Hits += Cache.stats().Hits;
    Misses += Cache.stats().Misses;
  }
  State.counters["hits"] =
      benchmark::Counter(double(Hits) / State.iterations());
  State.counters["misses"] =
      benchmark::Counter(double(Misses) / State.iterations());
  for (const PhaseStat &P : Tel.phases())
    State.counters[P.Name + "_ms"] =
        benchmark::Counter(P.Nanos / 1e6 / State.iterations());
  foldBenchStats(Tel);
  fs::remove_all(Dir);
}

void BM_Warm1Dirty(benchmark::State &State, const std::string &Name) {
  IncrementalSetup &S = setupFor(Name);
  const fs::path Dir = cacheDirFor("dirty", Name);
  fs::remove_all(Dir);
  {
    SummaryCache Prime(SummaryCache::Config{Dir.string()});
    runSummaries(*S.Orig, &Prime);
  }
  // Entries for the pristine program; anything else (the dirty file's
  // entry, stored during a timed iteration) is swept between runs so
  // every iteration re-extracts exactly one file.
  std::set<std::string> Pristine;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    Pristine.insert(E.path().filename().string());

  uint64_t Hits = 0, Misses = 0;
  Telemetry Tel;
  for (auto _ : State) {
    State.PauseTiming();
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (!Pristine.count(E.path().filename().string()))
        fs::remove(E.path());
    State.ResumeTiming();
    TelemetryScope Scope(Tel);
    SummaryCache Cache(SummaryCache::Config{Dir.string()});
    DeadMemberResult R = runSummaries(*S.Dirty, &Cache);
    benchmark::DoNotOptimize(R.classifiableMembers().size());
    Hits += Cache.stats().Hits;
    Misses += Cache.stats().Misses;
  }
  State.counters["hits"] =
      benchmark::Counter(double(Hits) / State.iterations());
  State.counters["misses"] =
      benchmark::Counter(double(Misses) / State.iterations());
  for (const PhaseStat &P : Tel.phases())
    State.counters[P.Name + "_ms"] =
        benchmark::Counter(P.Nanos / 1e6 / State.iterations());
  foldBenchStats(Tel);
  fs::remove_all(Dir);
}

void registerAll() {
  for (const char *Name : {"richards", "deltablue", "sched", "lcom",
                           "jikes"}) {
    std::string N = Name;
    benchmark::RegisterBenchmark(("monolithic/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Monolithic(S, N);
                                 });
    benchmark::RegisterBenchmark(("summary/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Summary(S, N);
                                 });
    benchmark::RegisterBenchmark(("summary_cold/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_SummaryCold(S, N);
                                 });
    benchmark::RegisterBenchmark(("summary_warm/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_SummaryWarm(S, N);
                                 });
    benchmark::RegisterBenchmark(("warm_1dirty/" + N).c_str(),
                                 [N](benchmark::State &S) {
                                   BM_Warm1Dirty(S, N);
                                 });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string StatsFile = stripStatsJsonArg(argc, argv);
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return writeBenchStats(StatsFile, "perf_incremental") ? 0 : 1;
}
