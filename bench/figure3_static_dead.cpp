//===-- bench/figure3_static_dead.cpp - Paper Figure 3 --------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3: "Percentage of dead data members detected in
/// the benchmark programs" — the paper's headline static result. The
/// checked properties: richards and deltablue report zero; the other
/// nine range from 3.0% to 27.3% and average 12.5%; the class-library
/// users (taldict, simulate, hotwire) have the highest percentages.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dmm;
using namespace dmm::bench;

int main() {
  std::printf("Figure 3: percentage of dead data members in used classes\n");
  printRule(72);
  std::printf("%-10s %8s %10s  %-6s %s\n", "benchmark", "paper%",
              "measured%", "lib?", "bar (measured)");
  printRule(72);

  auto Runs = runSuite(/*Scale=*/1.0);
  double PaperSum = 0, MeasuredSum = 0;
  unsigned NonTrivial = 0;
  for (const BenchmarkRun &R : Runs) {
    double Measured = R.Stats.percentDead();
    std::string Bar(static_cast<size_t>(Measured + 0.5), '#');
    std::printf("%-10s %8.1f %10.1f  %-6s %s\n", R.Spec.Name.c_str(),
                R.Spec.TargetStaticDeadPct, Measured,
                R.Spec.UsesClassLibrary ? "yes" : "", Bar.c_str());
    if (!R.Spec.HandWritten) {
      PaperSum += R.Spec.TargetStaticDeadPct;
      MeasuredSum += Measured;
      ++NonTrivial;
    }
  }
  printRule(72);
  std::printf("average over the %u non-trivial benchmarks: paper %.1f%%, "
              "measured %.1f%%\n",
              NonTrivial, PaperSum / NonTrivial, MeasuredSum / NonTrivial);
  std::printf("(paper reports an average of 12.5%%, a range of "
              "3.0%%..27.3%%, and zero dead\nmembers in richards and "
              "deltablue)\n");
  return 0;
}
