//===-- bench/ablation_callgraph.cpp - Precision ablations ----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation over the design choices DESIGN.md section 5 calls out:
///
///  1. call-graph precision (paper section 3.1: "if a more accurate call
///     graph is used, we can achieve better results") — dead percentages
///     under Trivial vs CHA vs RTA;
///  2. the write-access exemption — the paper algorithm vs the
///     "accessed = live" linter baseline;
///  3. the delete/free exemption and the sizeof/down-cast policies.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dmm;
using namespace dmm::bench;

namespace {

double deadPctWith(const BenchmarkRun &Run, AnalysisOptions Options) {
  DeadMemberAnalysis A(Run.Comp->context(), Run.Comp->hierarchy(),
                       Options);
  DeadMemberResult R = A.run(Run.Comp->mainFunction());
  ProgramStats St = computeProgramStats(Run.Comp->context(), R);
  return St.percentDead();
}

} // namespace

int main() {
  std::printf("Ablation: dead-member percentage by configuration\n");
  printRule(86);
  std::printf("%-10s %9s %9s %9s %9s %9s %11s %9s %10s\n", "benchmark",
              "baseline", "trivial", "CHA", "RTA", "PTA", "no-dealloc",
              "sizeof=c", "downcast=c");
  printRule(96);

  auto Runs = runSuite(/*Scale=*/0.3);
  double Sums[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (const BenchmarkRun &Run : Runs) {
    AnalysisOptions Baseline;
    Baseline.TreatWritesAsLive = true;

    AnalysisOptions Trivial;
    Trivial.CallGraph = CallGraphKind::Trivial;
    AnalysisOptions CHA;
    CHA.CallGraph = CallGraphKind::CHA;
    AnalysisOptions RTA; // Default.
    AnalysisOptions PTA;
    PTA.CallGraph = CallGraphKind::PTA;

    AnalysisOptions NoDealloc;
    NoDealloc.ExemptDeallocationArgs = false;
    AnalysisOptions SizeofCons;
    SizeofCons.Sizeof = SizeofPolicy::Conservative;
    AnalysisOptions DowncastCons;
    DowncastCons.AssumeDowncastsSafe = false;

    double V[8] = {
        deadPctWith(Run, Baseline),   deadPctWith(Run, Trivial),
        deadPctWith(Run, CHA),        deadPctWith(Run, RTA),
        deadPctWith(Run, PTA),        deadPctWith(Run, NoDealloc),
        deadPctWith(Run, SizeofCons), deadPctWith(Run, DowncastCons)};
    for (int I = 0; I != 8; ++I)
      Sums[I] += V[I];

    std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %10.1f%% "
                "%8.1f%% %9.1f%%\n",
                Run.Spec.Name.c_str(), V[0], V[1], V[2], V[3], V[4], V[5],
                V[6], V[7]);
  }
  printRule(96);
  size_t N = Runs.size();
  std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %10.1f%% "
              "%8.1f%% %9.1f%%\n",
              "average", Sums[0] / N, Sums[1] / N, Sums[2] / N,
              Sums[3] / N, Sums[4] / N, Sums[5] / N, Sums[6] / N,
              Sums[7] / N);
  std::printf("\nExpected ordering: baseline <= trivial <= CHA <= RTA <= "
              "PTA (precision increases\nthe dead set; paper sec. 3.1); "
              "disabling the deallocation exemption can only\nlower "
              "RTA's numbers.\n");
  return 0;
}
