//===-- bench/table2_dynamic.cpp - Paper Table 2 --------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: "Execution characteristics of the benchmark
/// programs" — object space, dead-data-member space, high water mark,
/// and high water mark without dead members, all in bytes.
///
/// Absolute byte counts differ from the paper's (our corpus reproduces
/// percentages and shapes, not the authors' exact heaps), so each cell
/// prints the paper's value above our measured value. The shape checks:
/// sched, hotwire, and richards have HWM == total object space
/// (allocate-and-hold), and the dead-space ratios track Figure 4.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace dmm;
using namespace dmm::bench;

int main() {
  std::printf("Table 2: execution characteristics (bytes)\n");
  printRule(92);
  std::printf("%-10s %-6s %14s %16s %16s %18s\n", "benchmark", "",
              "object space", "dead member sp.", "high water mark",
              "HWM w/o dead");
  printRule(92);

  auto Runs = runSuite(/*Scale=*/1.0);
  for (const BenchmarkRun &R : Runs) {
    std::printf("%-10s %-6s %14llu %16llu %16llu %18llu\n",
                R.Spec.Name.c_str(), "paper",
                (unsigned long long)R.Spec.PaperObjectSpace,
                (unsigned long long)R.Spec.PaperDeadSpace,
                (unsigned long long)R.Spec.PaperHighWaterMark,
                (unsigned long long)R.Spec.PaperHighWaterMarkNoDead);
    std::printf("%-10s %-6s %14llu %16llu %16llu %18llu\n", "", "ours",
                (unsigned long long)R.Dynamic.ObjectSpace,
                (unsigned long long)R.Dynamic.DeadMemberSpace,
                (unsigned long long)R.Dynamic.HighWaterMark,
                (unsigned long long)R.Dynamic.HighWaterMarkNoDead);
  }
  printRule(92);

  // Shape check: allocate-and-hold benchmarks.
  std::printf("allocate-and-hold check (HWM == object space, paper "
              "sec. 4.3):\n");
  for (const BenchmarkRun &R : Runs) {
    bool PaperHolds = R.Spec.PaperHighWaterMark == R.Spec.PaperObjectSpace;
    double OursRatio =
        R.Dynamic.ObjectSpace
            ? 100.0 * R.Dynamic.HighWaterMark / R.Dynamic.ObjectSpace
            : 0.0;
    if (PaperHolds)
      std::printf("  %-10s paper: HWM==total; ours: HWM = %.1f%% of "
                  "total\n",
                  R.Spec.Name.c_str(), OursRatio);
  }
  return 0;
}
