file(REMOVE_RECURSE
  "CMakeFiles/elimination_savings.dir/elimination_savings.cpp.o"
  "CMakeFiles/elimination_savings.dir/elimination_savings.cpp.o.d"
  "elimination_savings"
  "elimination_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elimination_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
