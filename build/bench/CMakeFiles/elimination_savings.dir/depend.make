# Empty dependencies file for elimination_savings.
# This may be replaced when dependencies are built.
