file(REMOVE_RECURSE
  "CMakeFiles/ablation_callgraph.dir/ablation_callgraph.cpp.o"
  "CMakeFiles/ablation_callgraph.dir/ablation_callgraph.cpp.o.d"
  "ablation_callgraph"
  "ablation_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
