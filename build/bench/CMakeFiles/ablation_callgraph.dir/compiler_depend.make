# Empty compiler generated dependencies file for ablation_callgraph.
# This may be replaced when dependencies are built.
