# Empty dependencies file for table2_dynamic.
# This may be replaced when dependencies are built.
