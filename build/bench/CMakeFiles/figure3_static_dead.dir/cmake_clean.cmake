file(REMOVE_RECURSE
  "CMakeFiles/figure3_static_dead.dir/figure3_static_dead.cpp.o"
  "CMakeFiles/figure3_static_dead.dir/figure3_static_dead.cpp.o.d"
  "figure3_static_dead"
  "figure3_static_dead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_static_dead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
