# Empty compiler generated dependencies file for figure3_static_dead.
# This may be replaced when dependencies are built.
