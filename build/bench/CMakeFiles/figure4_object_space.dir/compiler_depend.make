# Empty compiler generated dependencies file for figure4_object_space.
# This may be replaced when dependencies are built.
