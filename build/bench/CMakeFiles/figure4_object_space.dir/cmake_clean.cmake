file(REMOVE_RECURSE
  "CMakeFiles/figure4_object_space.dir/figure4_object_space.cpp.o"
  "CMakeFiles/figure4_object_space.dir/figure4_object_space.cpp.o.d"
  "figure4_object_space"
  "figure4_object_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_object_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
