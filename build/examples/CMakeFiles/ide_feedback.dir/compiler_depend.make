# Empty compiler generated dependencies file for ide_feedback.
# This may be replaced when dependencies are built.
