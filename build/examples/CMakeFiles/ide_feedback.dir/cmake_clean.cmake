file(REMOVE_RECURSE
  "CMakeFiles/ide_feedback.dir/ide_feedback.cpp.o"
  "CMakeFiles/ide_feedback.dir/ide_feedback.cpp.o.d"
  "ide_feedback"
  "ide_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ide_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
