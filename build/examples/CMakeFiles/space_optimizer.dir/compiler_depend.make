# Empty compiler generated dependencies file for space_optimizer.
# This may be replaced when dependencies are built.
