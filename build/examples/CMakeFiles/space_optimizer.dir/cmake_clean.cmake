file(REMOVE_RECURSE
  "CMakeFiles/space_optimizer.dir/space_optimizer.cpp.o"
  "CMakeFiles/space_optimizer.dir/space_optimizer.cpp.o.d"
  "space_optimizer"
  "space_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
