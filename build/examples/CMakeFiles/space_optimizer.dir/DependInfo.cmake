
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/space_optimizer.cpp" "examples/CMakeFiles/space_optimizer.dir/space_optimizer.cpp.o" "gcc" "examples/CMakeFiles/space_optimizer.dir/space_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/dmm_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dmm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dmm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/dmm_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/dmm_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/dmm_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/dmm_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/dmm_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/callgraph/CMakeFiles/dmm_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/dmm_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dmm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/dmm_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
