file(REMOVE_RECURSE
  "CMakeFiles/library_pruning.dir/library_pruning.cpp.o"
  "CMakeFiles/library_pruning.dir/library_pruning.cpp.o.d"
  "library_pruning"
  "library_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
