# Empty dependencies file for library_pruning.
# This may be replaced when dependencies are built.
