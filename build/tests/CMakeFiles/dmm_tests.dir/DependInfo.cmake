
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisEdgeTest.cpp" "tests/CMakeFiles/dmm_tests.dir/AnalysisEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/AnalysisEdgeTest.cpp.o.d"
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/dmm_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/BenchgenTest.cpp" "tests/CMakeFiles/dmm_tests.dir/BenchgenTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/BenchgenTest.cpp.o.d"
  "/root/repo/tests/CallGraphTest.cpp" "tests/CMakeFiles/dmm_tests.dir/CallGraphTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/CallGraphTest.cpp.o.d"
  "/root/repo/tests/EliminatorTest.cpp" "tests/CMakeFiles/dmm_tests.dir/EliminatorTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/EliminatorTest.cpp.o.d"
  "/root/repo/tests/HierarchyTest.cpp" "tests/CMakeFiles/dmm_tests.dir/HierarchyTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/HierarchyTest.cpp.o.d"
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/dmm_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/InterpSemanticsTest.cpp" "tests/CMakeFiles/dmm_tests.dir/InterpSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/InterpSemanticsTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/dmm_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/LayoutTest.cpp" "tests/CMakeFiles/dmm_tests.dir/LayoutTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/LayoutTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/dmm_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/MetricsTest.cpp" "tests/CMakeFiles/dmm_tests.dir/MetricsTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/MetricsTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/dmm_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PointsToTest.cpp" "tests/CMakeFiles/dmm_tests.dir/PointsToTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/PointsToTest.cpp.o.d"
  "/root/repo/tests/PrinterTest.cpp" "tests/CMakeFiles/dmm_tests.dir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/PrinterTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/dmm_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RobustnessTest.cpp" "tests/CMakeFiles/dmm_tests.dir/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/RobustnessTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/dmm_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/StatsTest.cpp" "tests/CMakeFiles/dmm_tests.dir/StatsTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/StatsTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/dmm_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TelemetryTest.cpp" "tests/CMakeFiles/dmm_tests.dir/TelemetryTest.cpp.o" "gcc" "tests/CMakeFiles/dmm_tests.dir/TelemetryTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/dmm_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dmm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dmm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/dmm_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/dmm_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dmm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/dmm_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/dmm_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/dmm_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/callgraph/CMakeFiles/dmm_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/dmm_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/dmm_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
