# Empty compiler generated dependencies file for dmm_tests.
# This may be replaced when dependencies are built.
