file(REMOVE_RECURSE
  "CMakeFiles/dmm_benchgen.dir/BenchmarkSpec.cpp.o"
  "CMakeFiles/dmm_benchgen.dir/BenchmarkSpec.cpp.o.d"
  "CMakeFiles/dmm_benchgen.dir/Programs_deltablue.cpp.o"
  "CMakeFiles/dmm_benchgen.dir/Programs_deltablue.cpp.o.d"
  "CMakeFiles/dmm_benchgen.dir/Programs_richards.cpp.o"
  "CMakeFiles/dmm_benchgen.dir/Programs_richards.cpp.o.d"
  "CMakeFiles/dmm_benchgen.dir/Synthesizer.cpp.o"
  "CMakeFiles/dmm_benchgen.dir/Synthesizer.cpp.o.d"
  "libdmm_benchgen.a"
  "libdmm_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
