
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchgen/BenchmarkSpec.cpp" "src/benchgen/CMakeFiles/dmm_benchgen.dir/BenchmarkSpec.cpp.o" "gcc" "src/benchgen/CMakeFiles/dmm_benchgen.dir/BenchmarkSpec.cpp.o.d"
  "/root/repo/src/benchgen/Programs_deltablue.cpp" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Programs_deltablue.cpp.o" "gcc" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Programs_deltablue.cpp.o.d"
  "/root/repo/src/benchgen/Programs_richards.cpp" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Programs_richards.cpp.o" "gcc" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Programs_richards.cpp.o.d"
  "/root/repo/src/benchgen/Synthesizer.cpp" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Synthesizer.cpp.o" "gcc" "src/benchgen/CMakeFiles/dmm_benchgen.dir/Synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
