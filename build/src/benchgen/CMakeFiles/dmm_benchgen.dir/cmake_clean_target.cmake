file(REMOVE_RECURSE
  "libdmm_benchgen.a"
)
