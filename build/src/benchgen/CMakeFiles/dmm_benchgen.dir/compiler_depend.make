# Empty compiler generated dependencies file for dmm_benchgen.
# This may be replaced when dependencies are built.
