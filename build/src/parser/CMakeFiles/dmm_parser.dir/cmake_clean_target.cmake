file(REMOVE_RECURSE
  "libdmm_parser.a"
)
