# Empty compiler generated dependencies file for dmm_parser.
# This may be replaced when dependencies are built.
