file(REMOVE_RECURSE
  "CMakeFiles/dmm_parser.dir/Parser.cpp.o"
  "CMakeFiles/dmm_parser.dir/Parser.cpp.o.d"
  "libdmm_parser.a"
  "libdmm_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
