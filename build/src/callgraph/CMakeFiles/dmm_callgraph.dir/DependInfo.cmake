
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/callgraph/CallGraph.cpp" "src/callgraph/CMakeFiles/dmm_callgraph.dir/CallGraph.cpp.o" "gcc" "src/callgraph/CMakeFiles/dmm_callgraph.dir/CallGraph.cpp.o.d"
  "/root/repo/src/callgraph/PointsTo.cpp" "src/callgraph/CMakeFiles/dmm_callgraph.dir/PointsTo.cpp.o" "gcc" "src/callgraph/CMakeFiles/dmm_callgraph.dir/PointsTo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/dmm_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/dmm_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dmm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
