file(REMOVE_RECURSE
  "libdmm_callgraph.a"
)
