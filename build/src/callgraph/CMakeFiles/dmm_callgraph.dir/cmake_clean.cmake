file(REMOVE_RECURSE
  "CMakeFiles/dmm_callgraph.dir/CallGraph.cpp.o"
  "CMakeFiles/dmm_callgraph.dir/CallGraph.cpp.o.d"
  "CMakeFiles/dmm_callgraph.dir/PointsTo.cpp.o"
  "CMakeFiles/dmm_callgraph.dir/PointsTo.cpp.o.d"
  "libdmm_callgraph.a"
  "libdmm_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
