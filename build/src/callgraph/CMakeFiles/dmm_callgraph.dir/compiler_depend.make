# Empty compiler generated dependencies file for dmm_callgraph.
# This may be replaced when dependencies are built.
