file(REMOVE_RECURSE
  "CMakeFiles/dmm_sema.dir/Sema.cpp.o"
  "CMakeFiles/dmm_sema.dir/Sema.cpp.o.d"
  "libdmm_sema.a"
  "libdmm_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
