# Empty dependencies file for dmm_sema.
# This may be replaced when dependencies are built.
