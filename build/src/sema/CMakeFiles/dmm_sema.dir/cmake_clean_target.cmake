file(REMOVE_RECURSE
  "libdmm_sema.a"
)
