file(REMOVE_RECURSE
  "libdmm_interp.a"
)
