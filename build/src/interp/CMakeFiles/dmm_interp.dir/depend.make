# Empty dependencies file for dmm_interp.
# This may be replaced when dependencies are built.
