file(REMOVE_RECURSE
  "CMakeFiles/dmm_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/dmm_interp.dir/Interpreter.cpp.o.d"
  "libdmm_interp.a"
  "libdmm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
