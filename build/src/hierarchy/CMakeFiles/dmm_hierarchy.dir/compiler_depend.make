# Empty compiler generated dependencies file for dmm_hierarchy.
# This may be replaced when dependencies are built.
