file(REMOVE_RECURSE
  "libdmm_hierarchy.a"
)
