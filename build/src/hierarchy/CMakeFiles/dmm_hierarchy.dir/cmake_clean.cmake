file(REMOVE_RECURSE
  "CMakeFiles/dmm_hierarchy.dir/ClassHierarchy.cpp.o"
  "CMakeFiles/dmm_hierarchy.dir/ClassHierarchy.cpp.o.d"
  "CMakeFiles/dmm_hierarchy.dir/ObjectLayout.cpp.o"
  "CMakeFiles/dmm_hierarchy.dir/ObjectLayout.cpp.o.d"
  "libdmm_hierarchy.a"
  "libdmm_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
