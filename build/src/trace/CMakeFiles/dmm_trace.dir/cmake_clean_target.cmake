file(REMOVE_RECURSE
  "libdmm_trace.a"
)
