# Empty dependencies file for dmm_trace.
# This may be replaced when dependencies are built.
