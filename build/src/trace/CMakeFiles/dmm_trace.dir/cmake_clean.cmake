file(REMOVE_RECURSE
  "CMakeFiles/dmm_trace.dir/DynamicMetrics.cpp.o"
  "CMakeFiles/dmm_trace.dir/DynamicMetrics.cpp.o.d"
  "libdmm_trace.a"
  "libdmm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
