# Empty compiler generated dependencies file for deadmember.
# This may be replaced when dependencies are built.
