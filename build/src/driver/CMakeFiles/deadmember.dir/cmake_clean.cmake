file(REMOVE_RECURSE
  "CMakeFiles/deadmember.dir/Main.cpp.o"
  "CMakeFiles/deadmember.dir/Main.cpp.o.d"
  "deadmember"
  "deadmember.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadmember.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
