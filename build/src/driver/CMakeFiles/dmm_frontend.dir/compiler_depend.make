# Empty compiler generated dependencies file for dmm_frontend.
# This may be replaced when dependencies are built.
