file(REMOVE_RECURSE
  "libdmm_frontend.a"
)
