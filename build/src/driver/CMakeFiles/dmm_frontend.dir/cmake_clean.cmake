file(REMOVE_RECURSE
  "CMakeFiles/dmm_frontend.dir/Frontend.cpp.o"
  "CMakeFiles/dmm_frontend.dir/Frontend.cpp.o.d"
  "libdmm_frontend.a"
  "libdmm_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
