file(REMOVE_RECURSE
  "libdmm_telemetry.a"
)
