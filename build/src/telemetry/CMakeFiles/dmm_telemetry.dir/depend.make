# Empty dependencies file for dmm_telemetry.
# This may be replaced when dependencies are built.
