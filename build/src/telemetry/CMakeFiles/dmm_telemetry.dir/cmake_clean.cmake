file(REMOVE_RECURSE
  "CMakeFiles/dmm_telemetry.dir/Telemetry.cpp.o"
  "CMakeFiles/dmm_telemetry.dir/Telemetry.cpp.o.d"
  "libdmm_telemetry.a"
  "libdmm_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
