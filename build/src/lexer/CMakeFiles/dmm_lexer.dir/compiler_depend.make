# Empty compiler generated dependencies file for dmm_lexer.
# This may be replaced when dependencies are built.
