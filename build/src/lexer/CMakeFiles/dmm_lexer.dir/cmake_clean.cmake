file(REMOVE_RECURSE
  "CMakeFiles/dmm_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/dmm_lexer.dir/Lexer.cpp.o.d"
  "libdmm_lexer.a"
  "libdmm_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
