file(REMOVE_RECURSE
  "libdmm_lexer.a"
)
