file(REMOVE_RECURSE
  "libdmm_ast.a"
)
