# Empty dependencies file for dmm_ast.
# This may be replaced when dependencies are built.
