
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ASTContext.cpp" "src/ast/CMakeFiles/dmm_ast.dir/ASTContext.cpp.o" "gcc" "src/ast/CMakeFiles/dmm_ast.dir/ASTContext.cpp.o.d"
  "/root/repo/src/ast/Decl.cpp" "src/ast/CMakeFiles/dmm_ast.dir/Decl.cpp.o" "gcc" "src/ast/CMakeFiles/dmm_ast.dir/Decl.cpp.o.d"
  "/root/repo/src/ast/SourcePrinter.cpp" "src/ast/CMakeFiles/dmm_ast.dir/SourcePrinter.cpp.o" "gcc" "src/ast/CMakeFiles/dmm_ast.dir/SourcePrinter.cpp.o.d"
  "/root/repo/src/ast/Type.cpp" "src/ast/CMakeFiles/dmm_ast.dir/Type.cpp.o" "gcc" "src/ast/CMakeFiles/dmm_ast.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
