file(REMOVE_RECURSE
  "CMakeFiles/dmm_ast.dir/ASTContext.cpp.o"
  "CMakeFiles/dmm_ast.dir/ASTContext.cpp.o.d"
  "CMakeFiles/dmm_ast.dir/Decl.cpp.o"
  "CMakeFiles/dmm_ast.dir/Decl.cpp.o.d"
  "CMakeFiles/dmm_ast.dir/SourcePrinter.cpp.o"
  "CMakeFiles/dmm_ast.dir/SourcePrinter.cpp.o.d"
  "CMakeFiles/dmm_ast.dir/Type.cpp.o"
  "CMakeFiles/dmm_ast.dir/Type.cpp.o.d"
  "libdmm_ast.a"
  "libdmm_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
