# Empty dependencies file for dmm_support.
# This may be replaced when dependencies are built.
