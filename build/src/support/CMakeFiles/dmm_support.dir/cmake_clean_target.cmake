file(REMOVE_RECURSE
  "libdmm_support.a"
)
