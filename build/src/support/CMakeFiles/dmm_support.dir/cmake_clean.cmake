file(REMOVE_RECURSE
  "CMakeFiles/dmm_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/dmm_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/dmm_support.dir/SourceManager.cpp.o"
  "CMakeFiles/dmm_support.dir/SourceManager.cpp.o.d"
  "libdmm_support.a"
  "libdmm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
