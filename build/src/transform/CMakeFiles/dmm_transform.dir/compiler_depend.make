# Empty compiler generated dependencies file for dmm_transform.
# This may be replaced when dependencies are built.
