file(REMOVE_RECURSE
  "libdmm_transform.a"
)
