file(REMOVE_RECURSE
  "CMakeFiles/dmm_transform.dir/DeadMemberEliminator.cpp.o"
  "CMakeFiles/dmm_transform.dir/DeadMemberEliminator.cpp.o.d"
  "libdmm_transform.a"
  "libdmm_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
