# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("telemetry")
subdirs("lexer")
subdirs("ast")
subdirs("parser")
subdirs("sema")
subdirs("hierarchy")
subdirs("callgraph")
subdirs("analysis")
subdirs("transform")
subdirs("interp")
subdirs("trace")
subdirs("benchgen")
subdirs("driver")
