file(REMOVE_RECURSE
  "libdmm_analysis.a"
)
