# Empty dependencies file for dmm_analysis.
# This may be replaced when dependencies are built.
