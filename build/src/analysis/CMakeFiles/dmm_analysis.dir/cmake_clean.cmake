file(REMOVE_RECURSE
  "CMakeFiles/dmm_analysis.dir/DeadMemberAnalysis.cpp.o"
  "CMakeFiles/dmm_analysis.dir/DeadMemberAnalysis.cpp.o.d"
  "CMakeFiles/dmm_analysis.dir/ProgramStats.cpp.o"
  "CMakeFiles/dmm_analysis.dir/ProgramStats.cpp.o.d"
  "CMakeFiles/dmm_analysis.dir/Report.cpp.o"
  "CMakeFiles/dmm_analysis.dir/Report.cpp.o.d"
  "libdmm_analysis.a"
  "libdmm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
